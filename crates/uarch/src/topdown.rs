//! The Top-Down slot-accounting model (Section V-B of the paper).
//!
//! Intel's Top-Down methodology classifies each pipeline *slot* (issue
//! width × cycles) as front-end bound, back-end bound, bad speculation, or
//! retiring. This module rebuilds that classification analytically from a
//! [`Profile`]:
//!
//! * the sampled branch stream is replayed through a [`BranchPredictor`]
//!   to estimate the misprediction rate → **bad speculation**;
//! * the sampled address stream is replayed through a [`MemoryHierarchy`]
//!   to estimate per-level miss rates → **back-end bound** stalls;
//! * the sampled call stream is replayed through an instruction cache over
//!   a synthetic code layout → **front-end bound** stalls;
//! * exact retired-op totals anchor the **retiring** component.
//!
//! Sampled rates are rescaled by the exact event totals, so sparser
//! sampling trades estimator variance for speed without biasing the
//! totals — the ablation benchmark `sampling` quantifies this.

use crate::cache::{Cache, CacheConfig, MemoryHierarchy, MemoryOutcome};
use crate::predictor::PredictorKind;
use alberta_profile::{Event, Profile};
use alberta_stats::variation::TopDownRatios;

/// Latencies and widths of the modelled machine.
///
/// Defaults approximate the Intel Core i7-2600 the paper measured on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Micro-ops issued per cycle.
    pub issue_width: f64,
    /// Cycles lost per branch misprediction.
    pub mispredict_penalty: f64,
    /// Load-to-use latency of an L2 hit, beyond the pipelined L1 latency.
    pub l2_latency: f64,
    /// Latency of a memory access (L2 miss), in cycles.
    pub memory_latency: f64,
    /// Cycles lost per D-TLB miss (page-walk cost).
    pub tlb_penalty: f64,
    /// Cycles lost per instruction-cache miss.
    pub icache_penalty: f64,
    /// Memory-level parallelism: how many outstanding misses overlap.
    pub memory_parallelism: f64,
    /// Micro-ops per abstract retired work unit. Instrumented
    /// mini-benchmarks report coarse work units (one per semantic
    /// operation); real code retires several µops per such operation, and
    /// this factor restores that ratio so category shares land in
    /// realistic ranges.
    pub uops_per_unit: f64,
    /// Front-end fetch-bubble cycles per taken branch (a taken branch
    /// redirects fetch even when predicted correctly).
    pub taken_branch_bubble: f64,
    /// Steady-state front-end inefficiency as a fraction of base cycles
    /// (decode gaps, fetch alignment): keeps the category mean off the
    /// measurement floor like real PMU data.
    pub baseline_frontend: f64,
    /// Steady-state bad-speculation floor (flushes from memory-order or
    /// exception speculation, present even in branch-free code).
    pub baseline_badspec: f64,
    /// Steady-state back-end floor (execution-port contention).
    pub baseline_backend: f64,
    /// Instruction-cache geometry.
    pub icache: CacheConfig,
    /// L1D geometry.
    pub l1d: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// D-TLB entries.
    pub dtlb_entries: u64,
    /// How many bytes of a callee's entry region a call fetches through
    /// the I-cache model.
    pub fetch_probe_bytes: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            issue_width: 4.0,
            mispredict_penalty: 14.0,
            l2_latency: 10.0,
            memory_latency: 180.0,
            tlb_penalty: 30.0,
            icache_penalty: 12.0,
            memory_parallelism: 4.0,
            uops_per_unit: 3.0,
            taken_branch_bubble: 0.35,
            baseline_frontend: 0.05,
            baseline_badspec: 0.012,
            baseline_backend: 0.06,
            icache: CacheConfig::l1i(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            dtlb_entries: 64,
            fetch_probe_bytes: 256,
        }
    }
}

/// Output of one Top-Down analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TopDownReport {
    /// The four slot fractions (sums to 1).
    pub ratios: TopDownRatios,
    /// Modelled execution cycles.
    pub cycles: f64,
    /// Exact retired micro-ops from the profile.
    pub retired_ops: u64,
    /// Modelled instructions per cycle.
    pub ipc: f64,
    /// Estimated branch misprediction rate in `[0, 1]`.
    pub mispredict_rate: f64,
    /// Estimated mispredictions per kilo-op.
    pub mispredicts_per_kops: f64,
    /// Replayed L1D miss ratio.
    pub l1d_miss_ratio: f64,
    /// Replayed L2 miss ratio (of L2 accesses).
    pub l2_miss_ratio: f64,
    /// Replayed D-TLB miss ratio.
    pub dtlb_miss_ratio: f64,
    /// Replayed I-cache miss ratio (of fetch probes).
    pub icache_miss_ratio: f64,
    /// Name of the predictor used.
    pub predictor: &'static str,
}

/// Analytical Top-Down analyzer; create once, reuse across runs.
#[derive(Debug, Clone)]
pub struct TopDownModel {
    config: MachineConfig,
    predictor: PredictorKind,
}

impl TopDownModel {
    /// Creates a model with the given machine and predictor.
    pub fn new(config: MachineConfig, predictor: PredictorKind) -> Self {
        TopDownModel { config, predictor }
    }

    /// The reference model used for the paper-reproduction experiments.
    pub fn reference() -> Self {
        TopDownModel::new(MachineConfig::default(), PredictorKind::reference())
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Analyzes one profile into a Top-Down report.
    pub fn analyze(&self, profile: &Profile) -> TopDownReport {
        let cfg = &self.config;
        let mut predictor = self.predictor.build();
        let mut hierarchy = MemoryHierarchy::with_configs(cfg.l1d, cfg.l2, cfg.dtlb_entries);
        let mut icache = Cache::new(cfg.icache);

        // Synthetic code layout: functions placed back to back, line-aligned,
        // in registration order. Registration order is deterministic per
        // benchmark, so layout is stable across workloads.
        let line = cfg.icache.line_bytes;
        let mut fn_base = Vec::with_capacity(profile.functions.len());
        let mut cursor = 0u64;
        for meta in &profile.functions {
            fn_base.push(cursor);
            let len = (meta.code_bytes as u64).max(1);
            cursor += len.div_ceil(line) * line;
        }

        // Replay the sampled event stream.
        let mut sampled_branches = 0u64;
        let mut sampled_mispredicts = 0u64;
        let mut sampled_mem = 0u64;
        let mut sampled_l2_hits = 0u64;
        let mut sampled_mem_hits = 0u64;
        let mut sampled_tlb_misses = 0u64;
        let mut fetch_probes = 0u64;
        let mut icache_misses = 0u64;
        let mut sampled_calls = 0u64;
        for event in &profile.trace {
            match *event {
                Event::Branch { site, taken } => {
                    sampled_branches += 1;
                    if !predictor.observe(site, taken) {
                        sampled_mispredicts += 1;
                    }
                }
                Event::Load { addr } | Event::Store { addr } => {
                    sampled_mem += 1;
                    let (outcome, tlb_miss) = hierarchy.access(addr);
                    match outcome {
                        MemoryOutcome::L1 => {}
                        MemoryOutcome::L2 => sampled_l2_hits += 1,
                        MemoryOutcome::Memory => sampled_mem_hits += 1,
                    }
                    sampled_tlb_misses += tlb_miss as u64;
                }
                Event::Call { callee } => {
                    sampled_calls += 1;
                    let base = fn_base[callee.0 as usize];
                    let len = (profile.functions[callee.0 as usize].code_bytes as u64)
                        .min(cfg.fetch_probe_bytes)
                        .max(1);
                    let mut offset = 0;
                    while offset < len {
                        fetch_probes += 1;
                        if !icache.access(base + offset) {
                            icache_misses += 1;
                        }
                        offset += line;
                    }
                }
                Event::Return => {}
            }
        }

        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        let mispredict_rate = ratio(sampled_mispredicts, sampled_branches);
        let l2_hit_rate = ratio(sampled_l2_hits, sampled_mem);
        let mem_rate = ratio(sampled_mem_hits, sampled_mem);
        let tlb_rate = ratio(sampled_tlb_misses, sampled_mem);
        let icache_miss_ratio = ratio(icache_misses, fetch_probes);
        let probes_per_call = ratio(fetch_probes, sampled_calls);

        // Rescale sampled rates by the exact totals.
        let totals = &profile.totals;
        let mem_total = (totals.loads + totals.stores) as f64;
        let mispredicts = mispredict_rate * totals.branches as f64;
        let l2_hits = l2_hit_rate * mem_total;
        let mem_accesses = mem_rate * mem_total;
        let tlb_misses = tlb_rate * mem_total;
        let icache_miss_total = icache_miss_ratio * probes_per_call * totals.calls as f64;

        let retired = totals.retired_ops as f64 * cfg.uops_per_unit;
        let base_cycles = retired / cfg.issue_width;
        let bad_spec_cycles =
            mispredicts * cfg.mispredict_penalty + base_cycles * cfg.baseline_badspec;
        let front_end_cycles = icache_miss_total * cfg.icache_penalty
            + totals.taken_branches as f64 * cfg.taken_branch_bubble
            + base_cycles * cfg.baseline_frontend;
        let back_end_cycles = (l2_hits * cfg.l2_latency
            + mem_accesses * cfg.memory_latency
            + tlb_misses * cfg.tlb_penalty)
            / cfg.memory_parallelism
            + base_cycles * cfg.baseline_backend;
        let cycles = (base_cycles + bad_spec_cycles + front_end_cycles + back_end_cycles).max(1.0);

        let retiring = base_cycles / cycles;
        let bad_speculation = bad_spec_cycles / cycles;
        let front_end = front_end_cycles / cycles;
        let back_end = back_end_cycles / cycles;
        // Renormalize against accumulated rounding before constructing the
        // validated ratio type.
        let sum = retiring + bad_speculation + front_end + back_end;
        let ratios = if sum <= 0.0 {
            TopDownRatios::new(0.0, 0.0, 0.0, 1.0).expect("degenerate run retires everything")
        } else {
            TopDownRatios::new(
                front_end / sum,
                back_end / sum,
                bad_speculation / sum,
                retiring / sum,
            )
            .expect("normalized components sum to one")
        };

        TopDownReport {
            ratios,
            cycles,
            retired_ops: totals.retired_ops,
            ipc: retired / cycles,
            mispredict_rate,
            mispredicts_per_kops: if retired == 0.0 {
                0.0
            } else {
                mispredicts / retired * 1000.0
            },
            l1d_miss_ratio: l2_hit_rate + mem_rate,
            l2_miss_ratio: if sampled_l2_hits + sampled_mem_hits == 0 {
                0.0
            } else {
                sampled_mem_hits as f64 / (sampled_l2_hits + sampled_mem_hits) as f64
            },
            dtlb_miss_ratio: tlb_rate,
            icache_miss_ratio,
            predictor: self.predictor.build().name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_profile::{Profiler, SampleConfig};

    fn model() -> TopDownModel {
        TopDownModel::reference()
    }

    /// A compute-only kernel: no branches, no memory, pure retired work.
    #[test]
    fn pure_compute_is_mostly_retiring() {
        let mut p = Profiler::default();
        let f = p.register_function("fma_kernel", 128);
        p.enter(f);
        p.retire(1_000_000);
        p.exit();
        let report = model().analyze(&p.finish());
        // Baseline stall fractions cap retiring just below 0.9 even for
        // pure compute — matching how real PMU data never shows 100%.
        assert!(report.ratios.retiring > 0.85, "{:?}", report.ratios);
        // IPC in µops: the 4-wide issue shaved by the baseline stalls
        // (4 / 1.122 ≈ 3.56).
        assert!(report.ipc > 3.0 && report.ipc < 4.0, "{}", report.ipc);
    }

    #[test]
    fn streaming_loads_are_backend_bound() {
        let mut p = Profiler::default();
        let f = p.register_function("stream", 128);
        p.enter(f);
        for i in 0..100_000u64 {
            p.load(i * 64);
            p.retire(2);
        }
        p.exit();
        let report = model().analyze(&p.finish());
        assert!(report.ratios.back_end > 0.6, "backend {:?}", report.ratios);
        assert!(report.l1d_miss_ratio > 0.9);
    }

    #[test]
    fn random_branches_are_bad_speculation_bound() {
        let mut p = Profiler::default();
        let f = p.register_function("branchy", 128);
        p.enter(f);
        let rand_bit = crate::predictor::tests::rand_bit;
        for i in 0..100_000u64 {
            p.branch(3, rand_bit(i));
            p.retire(2);
        }
        p.exit();
        let report = model().analyze(&p.finish());
        assert!(
            report.ratios.bad_speculation > 0.4,
            "badspec {:?}",
            report.ratios
        );
        assert!(report.mispredict_rate > 0.35);
    }

    #[test]
    fn call_churn_over_large_code_is_frontend_bound() {
        let mut p = Profiler::default();
        // 512 functions × 4 KiB of code ≫ 32 KiB L1I.
        let fns: Vec<_> = (0..512)
            .map(|i| p.register_function(&format!("f{i}"), 4096))
            .collect();
        for round in 0..20u64 {
            for (i, &f) in fns.iter().enumerate() {
                p.enter(f);
                p.retire(10 + (round + i as u64) % 3);
                p.exit();
            }
        }
        let report = model().analyze(&p.finish());
        assert!(
            report.ratios.front_end > 0.3,
            "frontend {:?}",
            report.ratios
        );
        assert!(report.icache_miss_ratio > 0.5);
    }

    #[test]
    fn hot_loop_in_one_small_function_has_warm_icache() {
        let mut p = Profiler::default();
        let f = p.register_function("hot", 256);
        for _ in 0..10_000 {
            p.enter(f);
            p.retire(20);
            p.exit();
        }
        let report = model().analyze(&p.finish());
        assert!(report.icache_miss_ratio < 0.01);
        assert!(report.ratios.front_end < 0.05);
    }

    #[test]
    fn ratios_always_sum_to_one() {
        let mut p = Profiler::default();
        let f = p.register_function("mixed", 1024);
        p.enter(f);
        for i in 0..50_000u64 {
            p.branch((i % 13) as u32, i % 3 != 0);
            p.load(i * 24 % (1 << 22));
            if i % 5 == 0 {
                p.store(i * 48 % (1 << 20));
            }
            p.retire(3);
        }
        p.exit();
        let report = model().analyze(&p.finish());
        let sum: f64 = report.ratios.as_array().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(report.cycles > 0.0);
        assert!(report.ipc > 0.0);
    }

    #[test]
    fn empty_profile_degenerates_to_retiring() {
        let p = Profiler::default();
        let report = model().analyze(&p.finish());
        assert_eq!(report.ratios.retiring, 1.0);
        assert_eq!(report.retired_ops, 0);
    }

    #[test]
    fn sparse_sampling_approximates_dense_ratios() {
        let run = |sampling: SampleConfig| {
            let mut p = Profiler::new(sampling);
            let f = p.register_function("mix", 512);
            p.enter(f);
            for i in 0..200_000u64 {
                p.branch((i % 31) as u32, (i / 7) % 4 != 0);
                p.load((i * 4064) % (1 << 24));
                p.retire(3);
            }
            p.exit();
            model().analyze(&p.finish())
        };
        let dense = run(SampleConfig::default());
        let sparse = run(SampleConfig::sparse());
        let d = dense.ratios.as_array();
        let s = sparse.ratios.as_array();
        for (a, b) in d.iter().zip(s.iter()) {
            assert!((a - b).abs() < 0.1, "dense {d:?} sparse {s:?}");
        }
    }

    #[test]
    fn predictor_choice_changes_bad_speculation() {
        let profile = {
            let mut p = Profiler::default();
            let f = p.register_function("alt", 128);
            p.enter(f);
            for i in 0..50_000u64 {
                p.branch(9, i % 2 == 0); // alternating: gshare-friendly
                p.retire(2);
            }
            p.exit();
            p.finish()
        };
        let weak = TopDownModel::new(
            MachineConfig::default(),
            PredictorKind::Bimodal { bits: 12 },
        )
        .analyze(&profile);
        let strong =
            TopDownModel::new(MachineConfig::default(), PredictorKind::Gshare { bits: 12 })
                .analyze(&profile);
        assert!(weak.ratios.bad_speculation > strong.ratios.bad_speculation * 2.0);
    }

    #[test]
    fn locality_difference_shows_in_backend_share() {
        let run = |stride: u64, region: u64| {
            let mut p = Profiler::default();
            let f = p.register_function("walk", 128);
            p.enter(f);
            for i in 0..100_000u64 {
                p.load((i * stride) % region);
                p.retire(4);
            }
            p.exit();
            model().analyze(&p.finish())
        };
        let friendly = run(8, 1 << 17); // L2-resident sequential walk
        let hostile = run(4096 + 64, 1 << 26); // page-hostile stride
        assert!(hostile.ratios.back_end > friendly.ratios.back_end + 0.2);
        assert!(hostile.dtlb_miss_ratio > friendly.dtlb_miss_ratio);
    }
}
