//! The Top-Down slot-accounting model (Section V-B of the paper).
//!
//! Intel's Top-Down methodology classifies each pipeline *slot* (issue
//! width × cycles) as front-end bound, back-end bound, bad speculation, or
//! retiring. This module rebuilds that classification analytically from a
//! [`Profile`]:
//!
//! * the sampled branch stream is replayed through a [`BranchPredictor`]
//!   to estimate the misprediction rate → **bad speculation**;
//! * the sampled address stream is replayed through a [`MemoryHierarchy`]
//!   to estimate per-level miss rates → **back-end bound** stalls;
//! * the sampled call stream is replayed through an instruction cache over
//!   a synthetic code layout → **front-end bound** stalls;
//! * exact retired-op totals anchor the **retiring** component.
//!
//! Sampled rates are rescaled by the exact event totals, so sparser
//! sampling trades estimator variance for speed without biasing the
//! totals — the ablation benchmark `sampling` quantifies this.

use crate::cache::{
    Cache, CacheConfig, DramConfig, GeometryError, GeometryErrorKind, MemoryHierarchy,
    MemoryOutcome, Tlb,
};
use crate::predictor::{BranchPredictor, PredictorKind};
use alberta_profile::{Event, EventChunks, Footprint, Profile, Totals};
use alberta_stats::variation::TopDownRatios;

/// Latencies and widths of the modelled machine.
///
/// Defaults approximate the Intel Core i7-2600 the paper measured on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Micro-ops issued per cycle.
    pub issue_width: f64,
    /// Cycles lost per branch misprediction.
    pub mispredict_penalty: f64,
    /// Load-to-use latency of an L2 hit, beyond the pipelined L1 latency.
    pub l2_latency: f64,
    /// Load-to-use latency of a shared-L3 hit, in cycles.
    pub l3_latency: f64,
    /// Latency of a DRAM access (L3 miss), in cycles.
    pub memory_latency: f64,
    /// Cycles lost per D-TLB miss (page-walk cost).
    pub tlb_penalty: f64,
    /// Cycles lost per instruction-cache miss.
    pub icache_penalty: f64,
    /// Memory-level parallelism: how many outstanding misses overlap.
    pub memory_parallelism: f64,
    /// Micro-ops per abstract retired work unit. Instrumented
    /// mini-benchmarks report coarse work units (one per semantic
    /// operation); real code retires several µops per such operation, and
    /// this factor restores that ratio so category shares land in
    /// realistic ranges.
    pub uops_per_unit: f64,
    /// Front-end fetch-bubble cycles per taken branch (a taken branch
    /// redirects fetch even when predicted correctly).
    pub taken_branch_bubble: f64,
    /// Steady-state front-end inefficiency as a fraction of base cycles
    /// (decode gaps, fetch alignment): keeps the category mean off the
    /// measurement floor like real PMU data.
    pub baseline_frontend: f64,
    /// Steady-state bad-speculation floor (flushes from memory-order or
    /// exception speculation, present even in branch-free code).
    pub baseline_badspec: f64,
    /// Steady-state back-end floor (execution-port contention).
    pub baseline_backend: f64,
    /// Instruction-cache geometry.
    pub icache: CacheConfig,
    /// L1D geometry.
    pub l1d: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Shared-L3 geometry.
    pub l3: CacheConfig,
    /// D-TLB entries.
    pub dtlb_entries: u64,
    /// DRAM row-buffer geometry.
    pub dram: DramConfig,
    /// How many bytes of a callee's entry region a call fetches through
    /// the I-cache model.
    pub fetch_probe_bytes: u64,
}

impl MachineConfig {
    /// Checks every modelled structure's geometry, reporting the first
    /// offender by name with its offending values — so sweep bins can
    /// diagnose a bad grid point instead of panicking mid-sweep.
    pub fn validate(&self) -> Result<(), GeometryError> {
        for (structure, config) in [
            ("I-cache", self.icache),
            ("L1D", self.l1d),
            ("L2", self.l2),
            ("L3", self.l3),
        ] {
            config.check().map_err(|problem| GeometryError {
                structure,
                kind: GeometryErrorKind::Cache { config, problem },
            })?;
        }
        Tlb::try_new(self.dtlb_entries)?;
        self.dram.check().map_err(|problem| GeometryError {
            structure: "DRAM",
            kind: GeometryErrorKind::Dram {
                config: self.dram,
                problem,
            },
        })?;
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            issue_width: 4.0,
            mispredict_penalty: 14.0,
            l2_latency: 10.0,
            l3_latency: 35.0,
            memory_latency: 180.0,
            tlb_penalty: 30.0,
            icache_penalty: 12.0,
            memory_parallelism: 4.0,
            uops_per_unit: 3.0,
            taken_branch_bubble: 0.35,
            baseline_frontend: 0.05,
            baseline_badspec: 0.012,
            baseline_backend: 0.06,
            icache: CacheConfig::l1i(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            l3: CacheConfig::l3(),
            dtlb_entries: 64,
            dram: DramConfig::ddr3(),
            fetch_probe_bytes: 256,
        }
    }
}

/// Output of one Top-Down analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TopDownReport {
    /// The four slot fractions (sums to 1).
    pub ratios: TopDownRatios,
    /// Modelled execution cycles.
    pub cycles: f64,
    /// Exact retired micro-ops from the profile.
    pub retired_ops: u64,
    /// Modelled instructions per cycle.
    pub ipc: f64,
    /// Estimated branch misprediction rate in `[0, 1]`.
    pub mispredict_rate: f64,
    /// Estimated mispredictions per kilo-op.
    pub mispredicts_per_kops: f64,
    /// Replayed L1D miss ratio.
    pub l1d_miss_ratio: f64,
    /// Replayed L2 miss ratio (of L2 accesses).
    pub l2_miss_ratio: f64,
    /// Replayed L3 miss ratio (of L3 accesses).
    pub l3_miss_ratio: f64,
    /// Replayed D-TLB miss ratio.
    pub dtlb_miss_ratio: f64,
    /// Replayed I-cache miss ratio (of fetch probes).
    pub icache_miss_ratio: f64,
    /// Name of the predictor used.
    pub predictor: &'static str,
    /// Memory-centric characterization of the run.
    pub memory: MemoryProfile,
}

/// Cache sizes swept for the per-workload MPKI-vs-size curve: 16 KiB to
/// 8 MiB doubling, each 8-way with 64-byte lines. The sweep caches ride
/// the same batched address columns one replay pass already walks, so
/// the curve costs one extra lookup loop per size — not N re-runs.
pub const MPKI_SWEEP_SIZES: [u64; 10] = [
    16 * 1024,
    32 * 1024,
    64 * 1024,
    128 * 1024,
    256 * 1024,
    512 * 1024,
    1024 * 1024,
    2 * 1024 * 1024,
    4 * 1024 * 1024,
    8 * 1024 * 1024,
];

/// The geometry of one MPKI-sweep point.
pub fn mpki_sweep_config(size_bytes: u64) -> CacheConfig {
    CacheConfig {
        size_bytes,
        line_bytes: 64,
        ways: 8,
    }
}

/// One point of the MPKI-vs-cache-size curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpkiPoint {
    /// Swept cache capacity in bytes.
    pub size_bytes: u64,
    /// Misses per kilo retired µop at that capacity.
    pub mpki: f64,
}

/// Memory-centric characterization of one run: per-level MPKI, the
/// working-set footprint, DRAM row-buffer behaviour and read traffic,
/// and the MPKI-vs-cache-size curve. MPKI denominators are kilo retired
/// µops (`retired_ops × uops_per_unit / 1000`), matching the
/// memory-centric CPU2017 study this layer reproduces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MemoryProfile {
    /// L1D misses per kilo µop.
    pub l1_mpki: f64,
    /// L2 misses per kilo µop.
    pub l2_mpki: f64,
    /// L3 misses per kilo µop.
    pub l3_mpki: f64,
    /// Fraction of DRAM fills that hit an open row, in `[0, 1]`.
    pub row_hit_rate: f64,
    /// Bytes read from DRAM (one line fill per L3 miss).
    pub dram_bytes: f64,
    /// Distinct cache lines the run touched (exact, from instrumentation).
    pub footprint_lines: u64,
    /// Distinct 4 KiB pages the run touched (exact, from instrumentation).
    pub footprint_pages: u64,
    /// Data MPKI at each swept cache size, ordered by capacity.
    pub mpki_curve: Vec<MpkiPoint>,
}

/// One representative execution window for phase-sampled estimation: a
/// cluster medoid's captured trace slice plus the exact counter deltas of
/// *every* interval the cluster contains.
///
/// The pilot pass measures exact per-interval counter deltas for the whole
/// run, so only the replay-derived rates (mispredictions, cache misses,
/// I-cache pressure) are extrapolated from the medoid to its cluster; all
/// event counts stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MedoidWindow {
    /// Summed exact counter deltas over all member intervals of the
    /// cluster this medoid represents.
    pub cluster_totals: Totals,
    /// Half-open trace-index range of the medoid's events in the detail
    /// run's (non-decimated) trace. Trace entries *between* consecutive
    /// windows' ranges are treated as a warming stream: replayed for
    /// state, never counted.
    pub trace_range: (usize, usize),
}

/// Sampled event counts from replaying one event slice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCounts {
    /// Branch events replayed.
    pub branches: u64,
    /// Branches the predictor got wrong.
    pub mispredicts: u64,
    /// Load/store events replayed.
    pub mem: u64,
    /// Data accesses that missed L1 and hit L2.
    pub l2_hits: u64,
    /// Data accesses that missed L1 and L2 and hit the shared L3.
    pub l3_hits: u64,
    /// Data accesses that missed every cache level and filled from DRAM.
    pub dram_accesses: u64,
    /// DRAM fills that hit the bank's open row (subset of
    /// `dram_accesses`).
    pub row_hits: u64,
    /// Data accesses whose translation missed the D-TLB.
    pub tlb_misses: u64,
    /// I-cache fetch probes issued by call events.
    pub fetch_probes: u64,
    /// Fetch probes that missed the I-cache.
    pub icache_misses: u64,
    /// Call events replayed.
    pub calls: u64,
}

impl ReplayCounts {
    /// Total events that drove microarchitectural state (branches,
    /// loads/stores, calls — `Return`s carry none).
    pub fn events(&self) -> u64 {
        self.branches + self.mem + self.calls
    }
}

/// Absolute (rescaled) event estimates feeding the cycle composition.
#[derive(Debug, Clone, Copy, Default)]
struct AbsoluteEstimates {
    mispredicts: f64,
    l2_hits: f64,
    l3_hits: f64,
    dram_accesses: f64,
    row_hits: f64,
    tlb_misses: f64,
    fetch_probes: f64,
    icache_misses: f64,
}

/// The microarchitectural structures a replay drives. One state is
/// shared across every window of an [`TopDownModel::estimate`] call so
/// later windows start warm, the way a full-trace replay would reach
/// them.
///
/// Two replay engines produce identical [`ReplayCounts`] and identical
/// state evolution:
///
/// * [`ReplayState::replay`] — the scalar reference engine, one
///   enum-dispatch per event. Kept as the shadow model the property
///   tests and the replay microbenchmark compare against.
/// * [`ReplayState::replay_batched`] — the production engine: per-kind
///   kernel loops over [`EventChunks`] arrays. Equivalence is exact, not
///   approximate, because the three state machines are disjoint — the
///   predictor sees only branches, the data hierarchy only loads/stores,
///   the I-cache only call fetch probes — so per-kind sub-streams in
///   trace order replay each machine through the very same transitions
///   the interleaved walk would.
pub struct ReplayState {
    predictor: Box<dyn BranchPredictor>,
    hierarchy: MemoryHierarchy,
    icache: Cache,
}

impl ReplayState {
    /// Fresh (cold) state for the given machine and predictor.
    pub fn new(cfg: &MachineConfig, predictor: PredictorKind) -> Self {
        ReplayState {
            predictor: predictor.build(),
            hierarchy: MemoryHierarchy::with_configs(
                cfg.l1d,
                cfg.l2,
                cfg.l3,
                cfg.dtlb_entries,
                cfg.dram,
            ),
            icache: Cache::new(cfg.icache),
        }
    }

    /// Replays one event slice through the scalar reference engine,
    /// mutating the shared state, and returns the slice's outcome
    /// counts.
    pub fn replay(
        &mut self,
        cfg: &MachineConfig,
        profile: &Profile,
        events: &[Event],
        fn_base: &[u64],
    ) -> ReplayCounts {
        let line = cfg.icache.line_bytes;
        let mut counts = ReplayCounts::default();
        for event in events {
            match *event {
                Event::Branch { site, taken } => {
                    counts.branches += 1;
                    if !self.predictor.observe(site, taken) {
                        counts.mispredicts += 1;
                    }
                }
                Event::Load { addr } | Event::Store { addr } => {
                    counts.mem += 1;
                    let (outcome, tlb_miss) = self.hierarchy.access(addr);
                    match outcome {
                        MemoryOutcome::L1 => {}
                        MemoryOutcome::L2 => counts.l2_hits += 1,
                        MemoryOutcome::L3 => counts.l3_hits += 1,
                        MemoryOutcome::Dram { row_hit } => {
                            counts.dram_accesses += 1;
                            counts.row_hits += u64::from(row_hit);
                        }
                    }
                    counts.tlb_misses += tlb_miss as u64;
                }
                Event::Call { callee } => {
                    counts.calls += 1;
                    let base = fn_base[callee.0 as usize];
                    let len = (profile.functions[callee.0 as usize].code_bytes as u64)
                        .min(cfg.fetch_probe_bytes)
                        .max(1);
                    let mut offset = 0;
                    while offset < len {
                        counts.fetch_probes += 1;
                        if !self.icache.access(base + offset) {
                            counts.icache_misses += 1;
                        }
                        offset += line;
                    }
                }
                Event::Return => {}
            }
        }
        counts
    }

    /// Replays the trace range `[start, end)` through the batched kernel
    /// engine: one predictor batch over the range's branch arrays, one
    /// hierarchy batch over its address array, and a probe-count table
    /// lookup plus tight line-stride loop per call. Outcome counts and
    /// post-replay state are identical to [`ReplayState::replay`] over
    /// the same range of the source event stream.
    ///
    /// `probe_counts` is the per-function fetch-probe table from
    /// [`TopDownModel::probe_table`]; `fn_base` the layout from
    /// [`TopDownModel::code_layout`].
    pub fn replay_batched(
        &mut self,
        chunks: &EventChunks,
        range: (usize, usize),
        probe_counts: &[u64],
        fn_base: &[u64],
    ) -> ReplayCounts {
        let slices = chunks.kind_ranges(range.0, range.1);
        let mut counts = ReplayCounts {
            branches: slices.branch_sites.len() as u64,
            mem: slices.mem_addrs.len() as u64,
            calls: slices.call_callees.len() as u64,
            ..ReplayCounts::default()
        };
        counts.mispredicts = self
            .predictor
            .observe_batch(slices.branch_sites, slices.branch_takens);
        let mem = self.hierarchy.access_many(slices.mem_addrs);
        counts.l2_hits = mem.l2_hits;
        counts.l3_hits = mem.l3_hits;
        counts.dram_accesses = mem.dram_accesses;
        counts.row_hits = mem.row_hits;
        counts.tlb_misses = mem.tlb_misses;
        // Same-callee memo: a call's probe span covers consecutive
        // lines, which land in distinct sets whenever the span is no
        // longer than the set count; a back-to-back repeat of the same
        // callee therefore probes lines that the previous call left
        // most-recent in their sets, and — since only this loop touches
        // the I-cache — every probe is a front-way hit that true LRU
        // leaves unmoved. Those calls are all-hit without any lookups,
        // bit-identical to the scalar walk.
        let icache_sets = self.icache.config().size_bytes
            / (self.icache.config().line_bytes * self.icache.config().ways);
        let mut last_callee = u32::MAX;
        let mut hit_probes = 0u64;
        for &callee in slices.call_callees {
            let idx = callee.0 as usize;
            let probes = probe_counts[idx];
            counts.fetch_probes += probes;
            if callee.0 == last_callee && probes <= icache_sets {
                hit_probes += probes;
                continue;
            }
            last_callee = callee.0;
            counts.icache_misses += self.icache.probe_span(fn_base[idx], probes);
        }
        self.icache.credit_hits(hit_probes);
        counts
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Analytical Top-Down analyzer; create once, reuse across runs.
#[derive(Debug, Clone)]
pub struct TopDownModel {
    config: MachineConfig,
    predictor: PredictorKind,
}

impl TopDownModel {
    /// Creates a model with the given machine and predictor.
    pub fn new(config: MachineConfig, predictor: PredictorKind) -> Self {
        TopDownModel { config, predictor }
    }

    /// The reference model used for the paper-reproduction experiments.
    pub fn reference() -> Self {
        TopDownModel::new(MachineConfig::default(), PredictorKind::reference())
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The branch-predictor kind.
    pub fn predictor(&self) -> PredictorKind {
        self.predictor
    }

    /// Analyzes one profile into a Top-Down report.
    ///
    /// Equivalent to [`TopDownModel::estimate`] over a single window
    /// spanning the whole trace with the run's exact totals.
    pub fn analyze(&self, profile: &Profile) -> TopDownReport {
        let window = MedoidWindow {
            cluster_totals: profile.totals,
            trace_range: (0, profile.trace.len()),
        };
        self.estimate(profile, &[window])
    }

    /// Estimates a whole-run Top-Down report from representative windows.
    ///
    /// Each [`MedoidWindow`] pairs a captured trace slice (the medoid
    /// interval of one phase cluster) with the exact counter deltas summed
    /// over *all* intervals of that cluster. The slice is replayed through
    /// fresh predictor/cache state to obtain per-window event *rates*,
    /// which are rescaled by the cluster's exact counts — so the only
    /// estimated quantities are the microarchitectural rates; event totals
    /// stay exact when the windows' cluster totals partition the run.
    pub fn estimate(&self, profile: &Profile, windows: &[MedoidWindow]) -> TopDownReport {
        let fn_base = self.code_layout(profile);
        let probe_counts = self.probe_table(profile);
        // The capture layer transposed the trace into per-kind chunk
        // arrays at `Profiler::finish`; every window (and warming gap)
        // replays as three dispatch-free kernel loops over contiguous
        // sub-ranges of them.
        let chunks = &profile.chunks;
        let trace_len = profile.trace.len();
        let mut abs = AbsoluteEstimates::default();
        let mut totals = Totals::default();
        // The MPKI-vs-size sweep caches ride the very address columns
        // the hierarchy replay walks — one pass over the recorded trace
        // yields the whole curve alongside the absolute estimates.
        let mut sweep: Vec<Cache> = MPKI_SWEEP_SIZES
            .iter()
            .map(|&size| Cache::new(mpki_sweep_config(size)))
            .collect();
        let mut sweep_raw = vec![0u64; sweep.len()];
        // One replay state shared across windows: the windows are
        // time-ordered slices of the same run, so carrying predictor and
        // cache contents forward approximates the warm state a full
        // replay would have — resetting per window would charge every
        // window a cold-start miss storm and bias the rates upward.
        let mut state = ReplayState::new(&self.config, self.predictor);
        // Memory-hierarchy outcomes are *counted*, never extrapolated:
        // the inter-window warming stream keeps loads/stores at the full
        // in-window stride (`WARM_MEMORY_DILUTION`), so gaps + windows +
        // tail together replay exactly the decimated memory stream a
        // full run's analyze would — and outcome counts over the whole
        // stream are the full replay's counts. Extrapolating them from
        // window rates instead reads cold (compulsory) DRAM fills as a
        // rate and multiplies them by the cluster weight, overestimating
        // bytes-from-DRAM severalfold on L3-resident working sets whose
        // DRAM traffic is almost entirely first-touch.
        let mut mem_counts = ReplayCounts::default();
        let count_memory = |c: &ReplayCounts, m: &mut ReplayCounts| {
            m.mem += c.mem;
            m.l2_hits += c.l2_hits;
            m.l3_hits += c.l3_hits;
            m.dram_accesses += c.dram_accesses;
            m.row_hits += c.row_hits;
            m.tlb_misses += c.tlb_misses;
        };
        let mut cursor = 0usize;
        for window in windows {
            let (start, end) = window.trace_range;
            let end = end.min(trace_len);
            let start = start.min(end);
            // The trace between windows holds the profiler's warming
            // stream. Feed it through the shared state — counting the
            // memory outcomes, discarding the diluted control ones: a
            // full replay reaching this window would have trained on
            // everything in the gap, and skipping the gap entirely
            // leaves predictor and caches stale enough to read
            // mispredict and miss rates high.
            let gap_addrs = chunks.kind_ranges(cursor.min(start), start).mem_addrs;
            for (raw, cache) in sweep_raw.iter_mut().zip(sweep.iter_mut()) {
                *raw += cache.access_many(gap_addrs);
            }
            let gap =
                state.replay_batched(chunks, (cursor.min(start), start), &probe_counts, &fn_base);
            count_memory(&gap, &mut mem_counts);
            let counts = state.replay_batched(chunks, (start, end), &probe_counts, &fn_base);
            count_memory(&counts, &mut mem_counts);
            cursor = end;
            let t = &window.cluster_totals;
            totals.retired_ops += t.retired_ops;
            totals.branches += t.branches;
            totals.taken_branches += t.taken_branches;
            totals.loads += t.loads;
            totals.stores += t.stores;
            totals.calls += t.calls;
            abs.mispredicts += ratio(counts.mispredicts, counts.branches) * t.branches as f64;
            let probes = ratio(counts.fetch_probes, counts.calls) * t.calls as f64;
            abs.fetch_probes += probes;
            abs.icache_misses += ratio(counts.icache_misses, counts.fetch_probes) * probes;
            let window_addrs = chunks.kind_ranges(start, end).mem_addrs;
            for (raw, cache) in sweep_raw.iter_mut().zip(sweep.iter_mut()) {
                *raw += cache.access_many(window_addrs);
            }
        }
        // The stream past the last window is part of the full replay
        // too; count its memory outcomes like any gap.
        let tail_addrs = chunks
            .kind_ranges(cursor.min(trace_len), trace_len)
            .mem_addrs;
        for (raw, cache) in sweep_raw.iter_mut().zip(sweep.iter_mut()) {
            *raw += cache.access_many(tail_addrs);
        }
        let tail = state.replay_batched(
            chunks,
            (cursor.min(trace_len), trace_len),
            &probe_counts,
            &fn_base,
        );
        count_memory(&tail, &mut mem_counts);
        // Rescale the exact decimated-stream counts to the run's exact
        // access totals — the same conversion analyze applies to a
        // whole-trace window.
        let mem_total = (totals.loads + totals.stores) as f64;
        abs.l2_hits = ratio(mem_counts.l2_hits, mem_counts.mem) * mem_total;
        abs.l3_hits = ratio(mem_counts.l3_hits, mem_counts.mem) * mem_total;
        abs.dram_accesses = ratio(mem_counts.dram_accesses, mem_counts.mem) * mem_total;
        abs.row_hits = ratio(mem_counts.row_hits, mem_counts.mem) * mem_total;
        abs.tlb_misses = ratio(mem_counts.tlb_misses, mem_counts.mem) * mem_total;
        let sweep_misses: Vec<f64> = sweep_raw
            .iter()
            .map(|&raw| ratio(raw, mem_counts.mem) * mem_total)
            .collect();
        self.compose(&abs, &totals, profile.footprint, &sweep_misses)
    }

    /// Cheap per-interval phase signature for clustering: approximate
    /// Top-Down category *pressures* derived from exact counter deltas
    /// alone — no trace replay — so the pilot pass can compute one per
    /// interval at negligible cost.
    ///
    /// Components are per-retired-op event rates scaled by the machine's
    /// penalty weights (mispredict penalty for the branch mix, fetch
    /// bubbles for taken branches, memory latency for the access mix,
    /// I-cache penalty for the call mix), normalized by the issue width so
    /// magnitudes are comparable across components. Intervals with similar
    /// signatures stress the machine similarly even before replay.
    pub fn phase_signature(&self, totals: &Totals) -> [f64; 4] {
        let cfg = &self.config;
        let ops = (totals.retired_ops.max(1)) as f64;
        let scale = cfg.issue_width.max(1.0);
        [
            totals.branches as f64 / ops * cfg.mispredict_penalty / scale,
            totals.taken_branches as f64 / ops * cfg.taken_branch_bubble,
            (totals.loads + totals.stores) as f64 / ops * cfg.memory_latency
                / (cfg.memory_parallelism * scale),
            totals.calls as f64 / ops * cfg.icache_penalty / scale,
        ]
    }

    /// Synthetic code layout: functions placed back to back, line-aligned,
    /// in registration order. Registration order is deterministic per
    /// benchmark, so layout is stable across workloads.
    pub fn code_layout(&self, profile: &Profile) -> Vec<u64> {
        let line = self.config.icache.line_bytes;
        let mut fn_base = Vec::with_capacity(profile.functions.len());
        let mut cursor = 0u64;
        for meta in &profile.functions {
            fn_base.push(cursor);
            let len = (meta.code_bytes as u64).max(1);
            cursor += len.div_ceil(line) * line;
        }
        fn_base
    }

    /// Per-function I-cache fetch-probe counts: how many line-strided
    /// probes one call into each function issues (the entry region up to
    /// [`MachineConfig::fetch_probe_bytes`], at least one line). The
    /// batched call kernel turns the scalar engine's per-call
    /// probe-length computation into a table lookup.
    pub fn probe_table(&self, profile: &Profile) -> Vec<u64> {
        let line = self.config.icache.line_bytes;
        profile
            .functions
            .iter()
            .map(|meta| {
                let len = (meta.code_bytes as u64)
                    .min(self.config.fetch_probe_bytes)
                    .max(1);
                len.div_ceil(line)
            })
            .collect()
    }

    /// Composes the cycle accounting from absolute event estimates,
    /// (exact or estimated) run totals, the exact instrumented
    /// footprint, and the swept MPKI-curve miss estimates.
    fn compose(
        &self,
        abs: &AbsoluteEstimates,
        totals: &Totals,
        footprint: Footprint,
        sweep_misses: &[f64],
    ) -> TopDownReport {
        let cfg = &self.config;
        let mem_total = (totals.loads + totals.stores) as f64;
        let fratio = |num: f64, den: f64| if den == 0.0 { 0.0 } else { num / den };

        let retired = totals.retired_ops as f64 * cfg.uops_per_unit;
        let base_cycles = retired / cfg.issue_width;
        let bad_spec_cycles =
            abs.mispredicts * cfg.mispredict_penalty + base_cycles * cfg.baseline_badspec;
        let front_end_cycles = abs.icache_misses * cfg.icache_penalty
            + totals.taken_branches as f64 * cfg.taken_branch_bubble
            + base_cycles * cfg.baseline_frontend;
        let back_end_cycles = (abs.l2_hits * cfg.l2_latency
            + abs.l3_hits * cfg.l3_latency
            + abs.dram_accesses * cfg.memory_latency
            + abs.tlb_misses * cfg.tlb_penalty)
            / cfg.memory_parallelism
            + base_cycles * cfg.baseline_backend;
        let cycles = (base_cycles + bad_spec_cycles + front_end_cycles + back_end_cycles).max(1.0);

        let retiring = base_cycles / cycles;
        let bad_speculation = bad_spec_cycles / cycles;
        let front_end = front_end_cycles / cycles;
        let back_end = back_end_cycles / cycles;
        // Renormalize against accumulated rounding before constructing the
        // validated ratio type.
        let sum = retiring + bad_speculation + front_end + back_end;
        let ratios = if sum <= 0.0 {
            TopDownRatios::new(0.0, 0.0, 0.0, 1.0).expect("degenerate run retires everything")
        } else {
            TopDownRatios::new(
                front_end / sum,
                back_end / sum,
                bad_speculation / sum,
                retiring / sum,
            )
            .expect("normalized components sum to one")
        };

        // MPKI denominators are kilo retired µops; a zero-work run
        // reports zero across the board.
        let kops = retired / 1000.0;
        let mpki = |misses: f64| fratio(misses, kops);
        let l1_misses = abs.l2_hits + abs.l3_hits + abs.dram_accesses;
        let l2_misses = abs.l3_hits + abs.dram_accesses;
        let memory = MemoryProfile {
            l1_mpki: mpki(l1_misses),
            l2_mpki: mpki(l2_misses),
            l3_mpki: mpki(abs.dram_accesses),
            row_hit_rate: fratio(abs.row_hits, abs.dram_accesses),
            dram_bytes: abs.dram_accesses * cfg.dram.line_bytes as f64,
            footprint_lines: footprint.lines,
            footprint_pages: footprint.pages,
            mpki_curve: MPKI_SWEEP_SIZES
                .iter()
                .zip(sweep_misses)
                .map(|(&size_bytes, &misses)| MpkiPoint {
                    size_bytes,
                    mpki: mpki(misses),
                })
                .collect(),
        };

        TopDownReport {
            ratios,
            cycles,
            retired_ops: totals.retired_ops,
            ipc: retired / cycles,
            mispredict_rate: fratio(abs.mispredicts, totals.branches as f64),
            mispredicts_per_kops: if retired == 0.0 {
                0.0
            } else {
                abs.mispredicts / retired * 1000.0
            },
            l1d_miss_ratio: fratio(l1_misses, mem_total),
            l2_miss_ratio: fratio(l2_misses, l1_misses),
            l3_miss_ratio: fratio(abs.dram_accesses, l2_misses),
            dtlb_miss_ratio: fratio(abs.tlb_misses, mem_total),
            icache_miss_ratio: fratio(abs.icache_misses, abs.fetch_probes),
            predictor: self.predictor.build().name(),
            memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_profile::{Profiler, SampleConfig};

    fn model() -> TopDownModel {
        TopDownModel::reference()
    }

    /// A compute-only kernel: no branches, no memory, pure retired work.
    #[test]
    fn pure_compute_is_mostly_retiring() {
        let mut p = Profiler::default();
        let f = p.register_function("fma_kernel", 128);
        p.enter(f);
        p.retire(1_000_000);
        p.exit();
        let report = model().analyze(&p.finish());
        // Baseline stall fractions cap retiring just below 0.9 even for
        // pure compute — matching how real PMU data never shows 100%.
        assert!(report.ratios.retiring > 0.85, "{:?}", report.ratios);
        // IPC in µops: the 4-wide issue shaved by the baseline stalls
        // (4 / 1.122 ≈ 3.56).
        assert!(report.ipc > 3.0 && report.ipc < 4.0, "{}", report.ipc);
    }

    #[test]
    fn streaming_loads_are_backend_bound() {
        let mut p = Profiler::default();
        let f = p.register_function("stream", 128);
        p.enter(f);
        for i in 0..100_000u64 {
            p.load(i * 64);
            p.retire(2);
        }
        p.exit();
        let report = model().analyze(&p.finish());
        assert!(report.ratios.back_end > 0.6, "backend {:?}", report.ratios);
        assert!(report.l1d_miss_ratio > 0.9);
    }

    #[test]
    fn random_branches_are_bad_speculation_bound() {
        let mut p = Profiler::default();
        let f = p.register_function("branchy", 128);
        p.enter(f);
        let rand_bit = crate::predictor::tests::rand_bit;
        for i in 0..100_000u64 {
            p.branch(3, rand_bit(i));
            p.retire(2);
        }
        p.exit();
        let report = model().analyze(&p.finish());
        assert!(
            report.ratios.bad_speculation > 0.4,
            "badspec {:?}",
            report.ratios
        );
        assert!(report.mispredict_rate > 0.35);
    }

    #[test]
    fn call_churn_over_large_code_is_frontend_bound() {
        let mut p = Profiler::default();
        // 512 functions × 4 KiB of code ≫ 32 KiB L1I.
        let fns: Vec<_> = (0..512)
            .map(|i| p.register_function(&format!("f{i}"), 4096))
            .collect();
        for round in 0..20u64 {
            for (i, &f) in fns.iter().enumerate() {
                p.enter(f);
                p.retire(10 + (round + i as u64) % 3);
                p.exit();
            }
        }
        let report = model().analyze(&p.finish());
        assert!(
            report.ratios.front_end > 0.3,
            "frontend {:?}",
            report.ratios
        );
        assert!(report.icache_miss_ratio > 0.5);
    }

    #[test]
    fn hot_loop_in_one_small_function_has_warm_icache() {
        let mut p = Profiler::default();
        let f = p.register_function("hot", 256);
        for _ in 0..10_000 {
            p.enter(f);
            p.retire(20);
            p.exit();
        }
        let report = model().analyze(&p.finish());
        assert!(report.icache_miss_ratio < 0.01);
        assert!(report.ratios.front_end < 0.05);
    }

    #[test]
    fn ratios_always_sum_to_one() {
        let mut p = Profiler::default();
        let f = p.register_function("mixed", 1024);
        p.enter(f);
        for i in 0..50_000u64 {
            p.branch((i % 13) as u32, i % 3 != 0);
            p.load(i * 24 % (1 << 22));
            if i % 5 == 0 {
                p.store(i * 48 % (1 << 20));
            }
            p.retire(3);
        }
        p.exit();
        let report = model().analyze(&p.finish());
        let sum: f64 = report.ratios.as_array().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(report.cycles > 0.0);
        assert!(report.ipc > 0.0);
    }

    #[test]
    fn empty_profile_degenerates_to_retiring() {
        let p = Profiler::default();
        let report = model().analyze(&p.finish());
        assert_eq!(report.ratios.retiring, 1.0);
        assert_eq!(report.retired_ops, 0);
    }

    #[test]
    fn sparse_sampling_approximates_dense_ratios() {
        let run = |sampling: SampleConfig| {
            let mut p = Profiler::new(sampling);
            let f = p.register_function("mix", 512);
            p.enter(f);
            for i in 0..200_000u64 {
                p.branch((i % 31) as u32, (i / 7) % 4 != 0);
                p.load((i * 4064) % (1 << 24));
                p.retire(3);
            }
            p.exit();
            model().analyze(&p.finish())
        };
        let dense = run(SampleConfig::default());
        let sparse = run(SampleConfig::sparse());
        let d = dense.ratios.as_array();
        let s = sparse.ratios.as_array();
        // Cache miss rates are nonlinear in stream density, so dilution
        // shifts the L3-vs-DRAM split of a memory-bound stream; 0.15
        // bounds that distortion where a flat post-L2 latency used to
        // stay under 0.1.
        for (a, b) in d.iter().zip(s.iter()) {
            assert!((a - b).abs() < 0.15, "dense {d:?} sparse {s:?}");
        }
    }

    #[test]
    fn estimate_over_full_window_matches_analyze() {
        let mut p = Profiler::default();
        let f = p.register_function("mix", 512);
        p.enter(f);
        for i in 0..50_000u64 {
            p.branch((i % 17) as u32, (i / 5) % 3 != 0);
            p.load((i * 712) % (1 << 22));
            p.retire(3);
        }
        p.exit();
        let profile = p.finish();
        let m = model();
        let full = m.analyze(&profile);
        let windowed = m.estimate(
            &profile,
            &[MedoidWindow {
                cluster_totals: profile.totals,
                trace_range: (0, profile.trace.len()),
            }],
        );
        assert_eq!(full, windowed);
    }

    #[test]
    fn estimate_from_representative_windows_approximates_full_run() {
        // A homogeneous run: any contiguous slice is representative, so
        // replaying one quarter of the trace with the whole run's exact
        // totals should land near the full analysis.
        let mut p = Profiler::default();
        let f = p.register_function("steady", 512);
        p.enter(f);
        for i in 0..80_000u64 {
            p.branch((i % 7) as u32, i % 3 == 0);
            p.load((i * 328) % (1 << 20));
            p.retire(2);
        }
        p.exit();
        let profile = p.finish();
        let m = model();
        let full = m.analyze(&profile);
        let quarter = profile.trace.len() / 4;
        let est = m.estimate(
            &profile,
            &[MedoidWindow {
                cluster_totals: profile.totals,
                trace_range: (quarter, 2 * quarter),
            }],
        );
        assert_eq!(est.retired_ops, full.retired_ops, "counts stay exact");
        for (a, b) in full
            .ratios
            .as_array()
            .iter()
            .zip(est.ratios.as_array().iter())
        {
            assert!((a - b).abs() < 0.05, "full {full:?} est {est:?}");
        }
    }

    #[test]
    fn estimate_with_no_windows_degenerates() {
        let mut p = Profiler::default();
        let f = p.register_function("f", 64);
        p.enter(f);
        p.retire(100);
        p.exit();
        let profile = p.finish();
        let est = model().estimate(&profile, &[]);
        assert_eq!(est.retired_ops, 0);
        assert_eq!(est.ratios.retiring, 1.0);
    }

    #[test]
    fn phase_signature_separates_different_mixes() {
        let m = model();
        let compute = Totals {
            retired_ops: 1000,
            ..Totals::default()
        };
        let memory = Totals {
            retired_ops: 1000,
            loads: 400,
            stores: 100,
            ..Totals::default()
        };
        let branchy = Totals {
            retired_ops: 1000,
            branches: 500,
            taken_branches: 250,
            ..Totals::default()
        };
        let sig = |t: &Totals| m.phase_signature(t);
        let dist =
            |a: [f64; 4], b: [f64; 4]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        assert!(dist(sig(&compute), sig(&memory)) > 0.1);
        assert!(dist(sig(&compute), sig(&branchy)) > 0.1);
        assert!(dist(sig(&memory), sig(&branchy)) > 0.1);
        // Signatures are pure functions of the deltas.
        assert_eq!(sig(&memory), sig(&memory));
    }

    #[test]
    fn predictor_choice_changes_bad_speculation() {
        let profile = {
            let mut p = Profiler::default();
            let f = p.register_function("alt", 128);
            p.enter(f);
            for i in 0..50_000u64 {
                p.branch(9, i % 2 == 0); // alternating: gshare-friendly
                p.retire(2);
            }
            p.exit();
            p.finish()
        };
        let weak = TopDownModel::new(
            MachineConfig::default(),
            PredictorKind::Bimodal { bits: 12 },
        )
        .analyze(&profile);
        let strong =
            TopDownModel::new(MachineConfig::default(), PredictorKind::Gshare { bits: 12 })
                .analyze(&profile);
        assert!(weak.ratios.bad_speculation > strong.ratios.bad_speculation * 2.0);
    }

    #[test]
    fn locality_difference_shows_in_backend_share() {
        let run = |stride: u64, region: u64| {
            let mut p = Profiler::default();
            let f = p.register_function("walk", 128);
            p.enter(f);
            for i in 0..100_000u64 {
                p.load((i * stride) % region);
                p.retire(4);
            }
            p.exit();
            model().analyze(&p.finish())
        };
        let friendly = run(8, 1 << 17); // L2-resident sequential walk
        let hostile = run(4096 + 64, 1 << 26); // page-hostile stride
        assert!(hostile.ratios.back_end > friendly.ratios.back_end + 0.2);
        assert!(hostile.dtlb_miss_ratio > friendly.dtlb_miss_ratio);
    }
}
