//! Branch predictors.
//!
//! Conditional-branch behaviour is the main driver of the *bad speculation*
//! Top-Down category. Three classic predictors are provided so the harness
//! can run the paper's characterization under different front ends (an
//! ablation the paper's "different compilers" appendix gestures at):
//!
//! * [`Bimodal`] — per-site 2-bit saturating counters;
//! * [`Gshare`] — global-history XOR indexing into 2-bit counters;
//! * [`Tournament`] — a chooser table arbitrating between the two;
//! * [`StaticTaken`] — the degenerate baseline.

/// A branch predictor that observes one resolved branch at a time.
///
/// Implementations are deterministic. The single method both predicts and
/// trains, returning whether the prediction was correct, which is all the
/// Top-Down model needs.
pub trait BranchPredictor {
    /// Predicts the branch at static `site`, trains on the actual `taken`
    /// outcome, and reports whether the prediction was correct.
    fn observe(&mut self, site: u32, taken: bool) -> bool;

    /// Observes a batch of resolved branches and returns the
    /// misprediction count. Exactly equivalent to calling
    /// [`observe`](BranchPredictor::observe) once per element in order —
    /// table predictors override this with a single tight loop over
    /// their flat counter tables so the per-branch virtual dispatch and
    /// table-pointer reloads are paid once per batch instead of once per
    /// branch.
    ///
    /// # Panics
    ///
    /// Panics if `sites` and `takens` differ in length.
    fn observe_batch(&mut self, sites: &[u32], takens: &[bool]) -> u64 {
        assert_eq!(sites.len(), takens.len(), "parallel batch arrays");
        let mut mispredicts = 0u64;
        for (&site, &taken) in sites.iter().zip(takens) {
            mispredicts += u64::from(!self.observe(site, taken));
        }
        mispredicts
    }

    /// Human-readable predictor name for reports.
    fn name(&self) -> &'static str;
}

/// Always predicts taken.
#[derive(Debug, Clone, Default)]
pub struct StaticTaken;

impl BranchPredictor for StaticTaken {
    fn observe(&mut self, _site: u32, taken: bool) -> bool {
        taken
    }

    fn observe_batch(&mut self, sites: &[u32], takens: &[bool]) -> u64 {
        assert_eq!(sites.len(), takens.len(), "parallel batch arrays");
        takens.iter().map(|&taken| u64::from(!taken)).sum()
    }

    fn name(&self) -> &'static str {
        "static-taken"
    }
}

/// Two-bit saturating counter, the building block of all table predictors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    const WEAK_TAKEN: Counter2 = Counter2(2);

    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Per-site 2-bit saturating-counter predictor.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
    mask: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 24.
    pub fn new(bits: u32) -> Self {
        assert!((1..=24).contains(&bits), "bimodal bits must be in 1..=24");
        Bimodal {
            table: vec![Counter2::WEAK_TAKEN; 1 << bits],
            mask: (1 << bits) - 1,
        }
    }
}

impl BranchPredictor for Bimodal {
    #[inline]
    fn observe(&mut self, site: u32, taken: bool) -> bool {
        let idx = (site & self.mask) as usize;
        let predicted = self.table[idx].predict();
        self.table[idx].train(taken);
        predicted == taken
    }

    fn observe_batch(&mut self, sites: &[u32], takens: &[bool]) -> u64 {
        assert_eq!(sites.len(), takens.len(), "parallel batch arrays");
        let table = self.table.as_mut_slice();
        // Deriving the mask from the slice length (a power of two) lets
        // the compiler prove the index in range and drop the bounds check.
        let mask = u32::try_from(table.len() - 1).expect("tables hold at most 2^24 counters");
        let mut mispredicts = 0u64;
        for (&site, &taken) in sites.iter().zip(takens) {
            let counter = &mut table[(site & mask) as usize];
            let predicted = counter.predict();
            counter.train(taken);
            mispredicts += u64::from(predicted != taken);
        }
        mispredicts
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

/// Gshare: global branch history XORed with the site selects the counter.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter2>,
    mask: u32,
    history: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `2^bits` counters and a matching
    /// history length.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 24.
    pub fn new(bits: u32) -> Self {
        assert!((1..=24).contains(&bits), "gshare bits must be in 1..=24");
        Gshare {
            table: vec![Counter2::WEAK_TAKEN; 1 << bits],
            mask: (1 << bits) - 1,
            history: 0,
        }
    }

    fn index(&self, site: u32) -> usize {
        ((site ^ self.history) & self.mask) as usize
    }
}

impl BranchPredictor for Gshare {
    #[inline]
    fn observe(&mut self, site: u32, taken: bool) -> bool {
        let idx = self.index(site);
        let predicted = self.table[idx].predict();
        self.table[idx].train(taken);
        self.history = ((self.history << 1) | taken as u32) & self.mask;
        predicted == taken
    }

    fn observe_batch(&mut self, sites: &[u32], takens: &[bool]) -> u64 {
        assert_eq!(sites.len(), takens.len(), "parallel batch arrays");
        let table = self.table.as_mut_slice();
        // Length-derived mask proves the index in range (no bounds check);
        // identical to `self.mask` since the table is `1 << bits` long.
        let mask = u32::try_from(table.len() - 1).expect("tables hold at most 2^24 counters");
        // The history register lives in a local for the whole batch; one
        // store writes it back.
        let mut history = self.history;
        let mut mispredicts = 0u64;
        for (&site, &taken) in sites.iter().zip(takens) {
            let counter = &mut table[((site ^ history) & mask) as usize];
            let predicted = counter.predict();
            counter.train(taken);
            history = ((history << 1) | taken as u32) & mask;
            mispredicts += u64::from(predicted != taken);
        }
        self.history = history;
        mispredicts
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

/// Tournament predictor: a per-site chooser arbitrates between a bimodal
/// and a gshare component.
#[derive(Debug, Clone)]
pub struct Tournament {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: Vec<Counter2>,
    mask: u32,
}

impl Tournament {
    /// Creates a tournament predictor whose components each use `2^bits`
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 24.
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=24).contains(&bits),
            "tournament bits must be in 1..=24"
        );
        Tournament {
            bimodal: Bimodal::new(bits),
            gshare: Gshare::new(bits),
            chooser: vec![Counter2::WEAK_TAKEN; 1 << bits],
            mask: (1 << bits) - 1,
        }
    }
}

impl BranchPredictor for Tournament {
    fn observe_batch(&mut self, sites: &[u32], takens: &[bool]) -> u64 {
        assert_eq!(sites.len(), takens.len(), "parallel batch arrays");
        // The component observes below are direct (non-virtual) calls and
        // inline; batching here removes only the outer dyn dispatch,
        // which is the per-branch cost that remains.
        let mut mispredicts = 0u64;
        for (&site, &taken) in sites.iter().zip(takens) {
            mispredicts += u64::from(!self.observe(site, taken));
        }
        mispredicts
    }

    #[inline]
    fn observe(&mut self, site: u32, taken: bool) -> bool {
        let idx = (site & self.mask) as usize;
        // Peek both components' predictions before training them.
        let b_idx = (site & self.bimodal.mask) as usize;
        let g_idx = self.gshare.index(site);
        let b_pred = self.bimodal.table[b_idx].predict();
        let g_pred = self.gshare.table[g_idx].predict();
        let use_gshare = self.chooser[idx].predict();
        let predicted = if use_gshare { g_pred } else { b_pred };
        // Train components (this also advances gshare history).
        self.bimodal.observe(site, taken);
        self.gshare.observe(site, taken);
        // Train the chooser toward whichever component was right.
        match (b_pred == taken, g_pred == taken) {
            (true, false) => self.chooser[idx].train(false),
            (false, true) => self.chooser[idx].train(true),
            _ => {}
        }
        predicted == taken
    }

    fn name(&self) -> &'static str {
        "tournament"
    }
}

/// Selects and sizes a branch predictor; the configuration-level handle
/// used by `TopDownModel` and the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Always-taken baseline.
    StaticTaken,
    /// Bimodal with `2^bits` counters.
    Bimodal {
        /// log2 of the table size.
        bits: u32,
    },
    /// Gshare with `2^bits` counters.
    Gshare {
        /// log2 of the table size.
        bits: u32,
    },
    /// Tournament with `2^bits`-entry components.
    Tournament {
        /// log2 of the table size.
        bits: u32,
    },
}

impl PredictorKind {
    /// Instantiates the predictor.
    pub fn build(self) -> Box<dyn BranchPredictor> {
        match self {
            PredictorKind::StaticTaken => Box::new(StaticTaken),
            PredictorKind::Bimodal { bits } => Box::new(Bimodal::new(bits)),
            PredictorKind::Gshare { bits } => Box::new(Gshare::new(bits)),
            PredictorKind::Tournament { bits } => Box::new(Tournament::new(bits)),
        }
    }

    /// The kind used throughout the paper-reproduction experiments.
    pub fn reference() -> Self {
        PredictorKind::Gshare { bits: 14 }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Runs `n` observations of a pattern function, returns mispredict count.
    fn mispredicts(
        p: &mut dyn BranchPredictor,
        n: u64,
        pattern: impl Fn(u64) -> (u32, bool),
    ) -> u64 {
        let mut wrong = 0;
        for i in 0..n {
            let (site, taken) = pattern(i);
            if !p.observe(site, taken) {
                wrong += 1;
            }
        }
        wrong
    }

    #[test]
    fn static_taken_is_right_exactly_when_taken() {
        let mut p = StaticTaken;
        assert!(p.observe(0, true));
        assert!(!p.observe(0, false));
        assert_eq!(p.name(), "static-taken");
    }

    #[test]
    fn bimodal_learns_biased_branch() {
        let mut p = Bimodal::new(10);
        let wrong = mispredicts(&mut p, 1000, |_| (42, true));
        assert!(wrong <= 1, "one cold miss at most, got {wrong}");
    }

    #[test]
    fn bimodal_struggles_with_alternating_branch() {
        let mut p = Bimodal::new(10);
        let wrong = mispredicts(&mut p, 1000, |i| (42, i % 2 == 0));
        assert!(
            wrong >= 400,
            "2-bit counters cannot track TNTN, got {wrong}"
        );
    }

    #[test]
    fn gshare_learns_alternating_branch_via_history() {
        let mut p = Gshare::new(12);
        let wrong = mispredicts(&mut p, 2000, |i| (42, i % 2 == 0));
        assert!(
            wrong < 100,
            "history should capture the TNTN pattern, got {wrong}"
        );
    }

    #[test]
    fn gshare_learns_short_periodic_pattern() {
        let mut p = Gshare::new(12);
        // Period-5 pattern: TTTNN repeated — loop-exit style.
        let wrong = mispredicts(&mut p, 5000, |i| (7, i % 5 < 3));
        assert!(wrong < 400, "got {wrong}");
    }

    #[test]
    fn tournament_tracks_best_component() {
        // Mixed workload: site A strongly biased (bimodal-friendly),
        // site B alternating (gshare-friendly).
        let mut t = Tournament::new(12);
        let wrong_t = mispredicts(&mut t, 4000, |i| {
            if i % 2 == 0 {
                (100, true)
            } else {
                (200, (i / 2) % 2 == 0)
            }
        });
        let mut b = Bimodal::new(12);
        let wrong_b = mispredicts(&mut b, 4000, |i| {
            if i % 2 == 0 {
                (100, true)
            } else {
                (200, (i / 2) % 2 == 0)
            }
        });
        assert!(
            wrong_t < wrong_b,
            "tournament {wrong_t} should beat bimodal {wrong_b}"
        );
    }

    /// Deterministic pseudo-random bit via the splitmix64 finalizer; unlike
    /// a bare multiplicative hash of sequential indices, this has no
    /// periodic structure a history predictor could learn.
    pub(crate) fn rand_bit(i: u64) -> bool {
        let mut z = i.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) & 1 == 1
    }

    #[test]
    fn random_branches_defeat_everyone() {
        let rand_bit = |i: u64| rand_bit(i);
        for kind in [
            PredictorKind::Bimodal { bits: 12 },
            PredictorKind::Gshare { bits: 12 },
            PredictorKind::Tournament { bits: 12 },
        ] {
            let mut p = kind.build();
            let wrong = mispredicts(p.as_mut(), 10_000, |i| (3, rand_bit(i)));
            let rate = wrong as f64 / 10_000.0;
            assert!(
                rate > 0.35 && rate < 0.65,
                "{}: random stream must hover near 50%, got {rate}",
                p.name()
            );
        }
    }

    #[test]
    fn aliasing_hurts_small_tables() {
        // Two sites with opposite biases that collide in a 1-bit table.
        let mut tiny = Bimodal::new(1);
        let wrong_tiny = mispredicts(&mut tiny, 2000, |i| {
            if i % 2 == 0 {
                (0, true)
            } else {
                (2, false) // 2 & 1 == 0: collides with site 0
            }
        });
        let mut big = Bimodal::new(8);
        let wrong_big = mispredicts(&mut big, 2000, |i| {
            if i % 2 == 0 {
                (0, true)
            } else {
                (2, false)
            }
        });
        assert!(wrong_tiny > wrong_big * 4, "{wrong_tiny} vs {wrong_big}");
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=24")]
    fn zero_bits_panics() {
        let _ = Bimodal::new(0);
    }

    /// The batch kernels must be *exactly* the scalar loop: same
    /// misprediction count and same post-batch state (checked by
    /// continuing scalar after a batch prefix).
    #[test]
    fn observe_batch_matches_scalar_loop() {
        let pattern =
            |i: u64| -> (u32, bool) { ((i % 37) as u32 * 3, rand_bit(i) || i.is_multiple_of(5)) };
        let n = 4096usize;
        let sites: Vec<u32> = (0..n as u64).map(|i| pattern(i).0).collect();
        let takens: Vec<bool> = (0..n as u64).map(|i| pattern(i).1).collect();
        for kind in [
            PredictorKind::StaticTaken,
            PredictorKind::Bimodal { bits: 10 },
            PredictorKind::Gshare { bits: 10 },
            PredictorKind::Tournament { bits: 10 },
        ] {
            let mut scalar = kind.build();
            let scalar_miss: u64 = (0..n)
                .map(|i| u64::from(!scalar.observe(sites[i], takens[i])))
                .sum();
            let mut batched = kind.build();
            let half = n / 2;
            let mut batch_miss = batched.observe_batch(&sites[..half], &takens[..half]);
            batch_miss += batched.observe_batch(&sites[half..], &takens[half..]);
            assert_eq!(scalar_miss, batch_miss, "{}", batched.name());
            // Post-batch state agrees: the next 100 scalar observations
            // resolve identically on both predictors.
            for i in 0..100u64 {
                let (site, taken) = pattern(i * 13 + 7);
                assert_eq!(
                    scalar.observe(site, taken),
                    batched.observe(site, taken),
                    "{} diverged after batch",
                    scalar.name()
                );
            }
        }
    }

    #[test]
    fn kind_builds_matching_names() {
        assert_eq!(PredictorKind::StaticTaken.build().name(), "static-taken");
        assert_eq!(PredictorKind::Bimodal { bits: 4 }.build().name(), "bimodal");
        assert_eq!(PredictorKind::Gshare { bits: 4 }.build().name(), "gshare");
        assert_eq!(
            PredictorKind::Tournament { bits: 4 }.build().name(),
            "tournament"
        );
    }
}
