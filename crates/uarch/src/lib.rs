//! Software microarchitecture model: the "hardware performance counter"
//! substrate of the Alberta Workloads reproduction.
//!
//! The paper classifies every pipeline slot of a real Intel Core i7 using
//! Intel's Top-Down methodology (front-end bound, back-end bound, bad
//! speculation, retiring). We have no PMU, so this crate rebuilds the
//! causal chain in software:
//!
//! 1. [`predictor`] — bimodal, gshare, and tournament branch predictors
//!    that replay the profiled branch stream and yield mispredictions;
//! 2. [`cache`] — set-associative LRU caches (L1D/L2/shared L3), a D-TLB,
//!    and an open-page DRAM row-buffer model that replay the profiled
//!    address stream and yield miss counts at each level;
//! 3. [`topdown`] — a slot-accounting model that converts those component
//!    outcomes plus exact retired-op counts into the four Top-Down ratios.
//!
//! The model is analytical (no cycle-by-cycle simulation), which keeps a
//! full Table II regeneration — hundreds of benchmark runs — in seconds
//! while preserving what matters for the paper's claims: workload-induced
//! changes in control flow and locality move the ratios.
//!
//! # Examples
//!
//! ```
//! use alberta_profile::{Profiler, SampleConfig};
//! use alberta_uarch::{MachineConfig, PredictorKind, TopDownModel};
//!
//! let mut prof = Profiler::new(SampleConfig::default());
//! let f = prof.register_function("stream", 256);
//! prof.enter(f);
//! for i in 0..10_000u64 {
//!     prof.load(i * 64); // one new cache line per access: worst locality
//!     prof.retire(2);
//! }
//! prof.exit();
//! let profile = prof.finish();
//!
//! let model = TopDownModel::new(MachineConfig::default(), PredictorKind::Gshare { bits: 12 });
//! let report = model.analyze(&profile);
//! let r = report.ratios;
//! assert!(r.back_end > 0.5, "a streaming kernel is back-end bound");
//! ```

// Replay kernels narrow u64 addresses and counters into table indices on
// their hottest paths; every such cast must either be provably lossless
// (masked first) or carry a justified allow. Warn-level is promoted to an
// error by CI's `-D warnings`.
#![warn(clippy::cast_possible_truncation)]

pub mod cache;
pub mod predictor;
pub mod topdown;

pub use cache::{
    Cache, CacheConfig, CacheProblem, CacheStats, Dram, DramConfig, DramProblem, DramStats,
    GeometryError, GeometryErrorKind, MemoryBatch, MemoryHierarchy, MemoryOutcome, Tlb,
};
pub use predictor::{Bimodal, BranchPredictor, Gshare, PredictorKind, StaticTaken, Tournament};
pub use topdown::{
    mpki_sweep_config, MachineConfig, MedoidWindow, MemoryProfile, MpkiPoint, ReplayCounts,
    ReplayState, TopDownModel, TopDownReport, MPKI_SWEEP_SIZES,
};
