//! Shadow-model property tests: the batched struct-of-arrays replay
//! engine must be *output-identical* to the scalar reference engine —
//! not approximately, byte for byte in every [`ReplayCounts`] field —
//! on randomized traces, for every predictor, over full replays and
//! over arbitrary window/gap schedules sharing one warm state.
//!
//! This is the property the golden-report gate enforces end to end; the
//! shadow model pins it at the engine boundary so a divergence points
//! straight at the kernel that broke, not at a drifted report.

use alberta_profile::{Profile, Profiler, SampleConfig};
use alberta_uarch::{MachineConfig, PredictorKind, ReplayState, TopDownModel};
use proptest::prelude::*;

/// Builds a randomized profile: a few functions, then `steps` scripted
/// actions (call/return/branch/load/store/retire) driven by the drawn
/// byte stream. The trace capacity is kept large enough that nothing
/// decimates — windowing below needs stable event indices.
fn random_profile(script: &[u8]) -> Profile {
    let mut prof = Profiler::new(SampleConfig {
        trace_capacity: 1 << 16,
        ..SampleConfig::default()
    });
    let fns: Vec<_> = (0u32..6)
        .map(|i| prof.register_function(&format!("f{i}"), 64 + 997 * i))
        .collect();
    prof.enter(fns[0]);
    let mut depth = 1u32;
    for (i, &b) in script.iter().enumerate() {
        let x = i as u64;
        match b % 7 {
            0 => {
                prof.enter(fns[(b / 7) as usize % fns.len()]);
                depth += 1;
            }
            1 if depth > 1 => {
                prof.exit();
                depth -= 1;
            }
            2 | 3 => prof.branch((b as u32) % 61, (b / 4) % 3 != 0),
            // Spread far enough that the streams miss past the L2 into
            // the shared L3 and DRAM — the shadow property must cover
            // the full hierarchy, row-buffer outcomes included.
            4 => prof.load((x * 97 * 8191) % (1 << 26)),
            5 => prof.store(0x4000 + (x * 4099 * 127) % (1 << 27)),
            _ => prof.retire(1 + (b as u64 % 9)),
        }
    }
    while depth > 1 {
        prof.exit();
        depth -= 1;
    }
    prof.exit();
    prof.finish()
}

const PREDICTORS: [PredictorKind; 4] = [
    PredictorKind::StaticTaken,
    PredictorKind::Bimodal { bits: 8 },
    PredictorKind::Gshare { bits: 8 },
    PredictorKind::Tournament { bits: 8 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full-trace replay: identical counts under every predictor.
    #[test]
    fn batched_replay_matches_scalar_on_full_traces(
        script in prop::collection::vec(any::<u8>(), 16..1500),
    ) {
        let profile = random_profile(&script);
        let cfg = MachineConfig::default();
        for predictor in PREDICTORS {
            let model = TopDownModel::new(cfg, predictor);
            let fn_base = model.code_layout(&profile);
            let probes = model.probe_table(&profile);
            let mut scalar = ReplayState::new(&cfg, predictor);
            let mut batched = ReplayState::new(&cfg, predictor);
            let want = scalar.replay(&cfg, &profile, profile.trace.events(), &fn_base);
            let got = batched.replay_batched(
                &profile.chunks,
                (0, profile.chunks.len()),
                &probes,
                &fn_base,
            );
            prop_assert_eq!(got, want, "{:?} diverged", predictor);
        }
    }

    /// Windowed replay with gaps: both engines step through the same
    /// randomized window schedule on one persistent state each — exactly
    /// how `estimate` consumes the engine, where stale predictor/cache
    /// state from earlier windows flows into later ones. Counts must
    /// match after *every* window, not just in aggregate.
    #[test]
    fn batched_replay_matches_scalar_across_window_schedules(
        script in prop::collection::vec(any::<u8>(), 64..1500),
        cuts in prop::collection::vec(any::<u16>(), 2..8),
    ) {
        let profile = random_profile(&script);
        let len = profile.chunks.len();
        // Sorted cut points -> alternating window/gap segments. (An empty
        // trace degenerates to empty windows, which must also agree.)
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c as usize % (len + 1)).collect();
        bounds.push(0);
        bounds.push(len);
        bounds.sort_unstable();
        let cfg = MachineConfig::default();
        let predictor = PredictorKind::reference();
        let model = TopDownModel::new(cfg, predictor);
        let fn_base = model.code_layout(&profile);
        let probes = model.probe_table(&profile);
        let mut scalar = ReplayState::new(&cfg, predictor);
        let mut batched = ReplayState::new(&cfg, predictor);
        for (w, pair) in bounds.windows(2).enumerate() {
            let (start, end) = (pair[0], pair[1]);
            let want =
                scalar.replay(&cfg, &profile, &profile.trace.events()[start..end], &fn_base);
            let got = batched.replay_batched(&profile.chunks, (start, end), &probes, &fn_base);
            prop_assert_eq!(got, want, "window {} ({start}..{end}) diverged", w);
        }
    }

    /// A working set that fits in the shared L3 reaches DRAM exactly
    /// once per distinct line — the cold miss — no matter how many
    /// passes stream over it: LRU can evict a resident set only under
    /// capacity or conflict pressure, and a contiguous range within
    /// capacity produces neither. The same count is what the exact
    /// footprint tracker reports, tying the two layers together.
    #[test]
    fn working_set_within_l3_capacity_has_only_cold_misses(
        lines in 1u64..4096,
        passes in 1u64..4,
        base in 0u64..(1 << 30),
    ) {
        let mut prof = Profiler::new(SampleConfig {
            trace_capacity: 1 << 15,
            ..SampleConfig::default()
        });
        let f = prof.register_function("ws", 64);
        prof.enter(f);
        let base_line = base & !63;
        for _ in 0..passes {
            for i in 0..lines {
                prof.load(base_line + i * 64);
                prof.retire(1);
            }
        }
        prof.exit();
        let profile = prof.finish();
        let cfg = MachineConfig::default();
        prop_assert!(lines * 64 <= cfg.l3.size_bytes, "working set must fit the L3");
        let predictor = PredictorKind::reference();
        let model = TopDownModel::new(cfg, predictor);
        let fn_base = model.code_layout(&profile);
        let mut scalar = ReplayState::new(&cfg, predictor);
        let counts = scalar.replay(&cfg, &profile, profile.trace.events(), &fn_base);
        prop_assert_eq!(counts.dram_accesses, lines, "one DRAM fill per cold line");
        prop_assert!(counts.row_hits <= counts.dram_accesses);
        prop_assert_eq!(profile.footprint.lines, lines);
    }
}
