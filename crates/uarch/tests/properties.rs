//! Property-based tests for the microarchitecture substrates.

use alberta_profile::{Profiler, SampleConfig};
use alberta_uarch::{
    Cache, CacheConfig, DramConfig, MemoryBatch, MemoryHierarchy, MemoryOutcome, PredictorKind,
    TopDownModel,
};
use proptest::prelude::*;

/// Scalar reference walk for the batched-kernel boundary property.
fn scalar_batch(h: &mut MemoryHierarchy, addrs: &[u64]) -> MemoryBatch {
    let mut expect = MemoryBatch {
        accesses: addrs.len() as u64,
        ..MemoryBatch::default()
    };
    for &a in addrs {
        let (outcome, tlb_miss) = h.access(a);
        match outcome {
            MemoryOutcome::L1 => {}
            MemoryOutcome::L2 => expect.l2_hits += 1,
            MemoryOutcome::L3 => expect.l3_hits += 1,
            MemoryOutcome::Dram { row_hit } => {
                expect.dram_accesses += 1;
                expect.row_hits += u64::from(row_hit);
            }
        }
        expect.tlb_misses += u64::from(tlb_miss);
    }
    expect
}

/// Degenerate L1 geometries the batched fast paths must survive: a
/// single fully-associative set, a direct-mapped array, a single
/// one-way set, and sub-line-of-64 lines (where the line memo's
/// `u64::MAX` sentinel is closest to a real line number).
const BOUNDARY_GEOMETRIES: [CacheConfig; 4] = [
    // One set, 16 ways: every address collides, LRU order is all there is.
    CacheConfig {
        size_bytes: 1024,
        line_bytes: 64,
        ways: 16,
    },
    // Direct-mapped: the MRU front-way shortcut degenerates to a plain tag probe.
    CacheConfig {
        size_bytes: 1024,
        line_bytes: 64,
        ways: 1,
    },
    // One set, one way: the smallest legal cache.
    CacheConfig {
        size_bytes: 64,
        line_bytes: 64,
        ways: 1,
    },
    // Two-byte lines: line numbers reach within one bit of the sentinel.
    CacheConfig {
        size_bytes: 256,
        line_bytes: 2,
        ways: 2,
    },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Accounting identity: hits + misses equals accesses, and the number
    /// of misses is at least the number of distinct lines touched when
    /// they all map to a working set larger than the cache, and at least
    /// the distinct line count's information-theoretic floor otherwise.
    #[test]
    fn cache_accounting_identity(addrs in prop::collection::vec(0u64..(1 << 20), 1..2000)) {
        let mut cache = Cache::new(CacheConfig::l1d());
        for &a in &addrs {
            cache.access(a);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), addrs.len() as u64);
        let mut lines: Vec<u64> = addrs.iter().map(|a| a >> 6).collect();
        lines.sort_unstable();
        lines.dedup();
        // Cold misses: every distinct line misses at least once.
        prop_assert!(stats.misses >= lines.len() as u64);
        prop_assert!(stats.miss_ratio() <= 1.0);
    }

    /// A working set that fits in one way-set's worth of cache never
    /// misses after the cold pass, regardless of access order.
    #[test]
    fn resident_working_set_has_only_cold_misses(
        perm in prop::collection::vec(0u64..64, 64..512),
    ) {
        let mut cache = Cache::new(CacheConfig::l1d());
        // 64 lines × 64 B = 4 KiB ≪ 32 KiB: always resident.
        for &i in &perm {
            cache.access(i * 64);
        }
        let mut distinct: Vec<u64> = perm.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(cache.stats().misses, distinct.len() as u64);
    }

    /// Every predictor gets a perfectly biased branch almost always right
    /// and never reports more mispredictions than observations.
    #[test]
    fn predictors_learn_constant_bias(taken in any::<bool>(), n in 64u64..512) {
        for kind in [
            PredictorKind::Bimodal { bits: 10 },
            PredictorKind::Gshare { bits: 10 },
            PredictorKind::Tournament { bits: 10 },
        ] {
            let mut p = kind.build();
            let wrong = (0..n).filter(|_| !p.observe(7, taken)).count() as u64;
            prop_assert!(wrong <= 4, "{}: {wrong} wrong of {n}", p.name());
        }
    }

    /// The batched walk equals the scalar walk on every degenerate
    /// geometry the fast-path sentinels could trip over — single-set,
    /// direct-mapped, one-entry, and tiny-line caches — on address
    /// streams that hug both ends of the address space, including the
    /// lines adjacent to the `u64::MAX` memo sentinel. Outcome counts
    /// and every per-level statistic must be bit-identical.
    #[test]
    fn access_many_matches_scalar_on_boundary_geometries(
        geometry in 0usize..4,
        raw in prop::collection::vec(any::<u64>(), 1..400),
    ) {
        // Fold each draw into one of three regions: the bottom of the
        // address space, the top (where line numbers sit next to the
        // `u64::MAX` sentinel — including `u64::MAX` itself), or anywhere.
        let addrs: Vec<u64> = raw
            .iter()
            .map(|&r| match r % 3 {
                0 => r % 8192,
                1 => u64::MAX - (r % 8192),
                _ => r,
            })
            .collect();
        let l1 = BOUNDARY_GEOMETRIES[geometry];
        // Small deeper levels and a tiny TLB so the stream reaches every
        // layer: L2, L3, DRAM row buffers, and TLB evictions all churn.
        let l2 = CacheConfig { size_bytes: 2048, line_bytes: 64, ways: 4 };
        let l3 = CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 8 };
        let dram = DramConfig { banks: 4, row_bytes: 1024, line_bytes: 64 };
        let mut batched = MemoryHierarchy::with_configs(l1, l2, l3, 4, dram);
        let mut scalar = batched.clone();
        let want = scalar_batch(&mut scalar, &addrs);
        let got = batched.access_many(&addrs);
        prop_assert_eq!(got, want, "geometry {:?} diverged", l1);
        prop_assert_eq!(batched.l1d_stats(), scalar.l1d_stats());
        prop_assert_eq!(batched.l2_stats(), scalar.l2_stats());
        prop_assert_eq!(batched.l3_stats(), scalar.l3_stats());
        prop_assert_eq!(batched.dtlb_stats(), scalar.dtlb_stats());
        prop_assert_eq!(batched.dram_stats(), scalar.dram_stats());
        prop_assert_eq!(batched.dram_bytes_read(), scalar.dram_bytes_read());
    }

    /// The Top-Down ratios always form a distribution, whatever event mix
    /// the profile contains.
    #[test]
    fn topdown_ratios_always_normalize(
        ops in 0u64..100_000,
        branches in 0u64..5_000,
        loads in 0u64..5_000,
        stride in 1u64..10_000,
    ) {
        let mut profiler = Profiler::new(SampleConfig::default());
        let f = profiler.register_function("kernel", 777);
        profiler.enter(f);
        profiler.retire(ops);
        for i in 0..branches {
            profiler.branch((i % 13) as u32, i % 3 == 0);
        }
        for i in 0..loads {
            profiler.load(i * stride);
        }
        profiler.exit();
        let report = TopDownModel::reference().analyze(&profiler.finish());
        let sum: f64 = report.ratios.as_array().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(report.cycles >= 0.9);
        for r in report.ratios.as_array() {
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }
}
