//! Property-based tests for the microarchitecture substrates.

use alberta_profile::{Profiler, SampleConfig};
use alberta_uarch::{Cache, CacheConfig, PredictorKind, TopDownModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Accounting identity: hits + misses equals accesses, and the number
    /// of misses is at least the number of distinct lines touched when
    /// they all map to a working set larger than the cache, and at least
    /// the distinct line count's information-theoretic floor otherwise.
    #[test]
    fn cache_accounting_identity(addrs in prop::collection::vec(0u64..(1 << 20), 1..2000)) {
        let mut cache = Cache::new(CacheConfig::l1d());
        for &a in &addrs {
            cache.access(a);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), addrs.len() as u64);
        let mut lines: Vec<u64> = addrs.iter().map(|a| a >> 6).collect();
        lines.sort_unstable();
        lines.dedup();
        // Cold misses: every distinct line misses at least once.
        prop_assert!(stats.misses >= lines.len() as u64);
        prop_assert!(stats.miss_ratio() <= 1.0);
    }

    /// A working set that fits in one way-set's worth of cache never
    /// misses after the cold pass, regardless of access order.
    #[test]
    fn resident_working_set_has_only_cold_misses(
        perm in prop::collection::vec(0u64..64, 64..512),
    ) {
        let mut cache = Cache::new(CacheConfig::l1d());
        // 64 lines × 64 B = 4 KiB ≪ 32 KiB: always resident.
        for &i in &perm {
            cache.access(i * 64);
        }
        let mut distinct: Vec<u64> = perm.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(cache.stats().misses, distinct.len() as u64);
    }

    /// Every predictor gets a perfectly biased branch almost always right
    /// and never reports more mispredictions than observations.
    #[test]
    fn predictors_learn_constant_bias(taken in any::<bool>(), n in 64u64..512) {
        for kind in [
            PredictorKind::Bimodal { bits: 10 },
            PredictorKind::Gshare { bits: 10 },
            PredictorKind::Tournament { bits: 10 },
        ] {
            let mut p = kind.build();
            let wrong = (0..n).filter(|_| !p.observe(7, taken)).count() as u64;
            prop_assert!(wrong <= 4, "{}: {wrong} wrong of {n}", p.name());
        }
    }

    /// The Top-Down ratios always form a distribution, whatever event mix
    /// the profile contains.
    #[test]
    fn topdown_ratios_always_normalize(
        ops in 0u64..100_000,
        branches in 0u64..5_000,
        loads in 0u64..5_000,
        stride in 1u64..10_000,
    ) {
        let mut profiler = Profiler::new(SampleConfig::default());
        let f = profiler.register_function("kernel", 777);
        profiler.enter(f);
        profiler.retire(ops);
        for i in 0..branches {
            profiler.branch((i % 13) as u32, i % 3 == 0);
        }
        for i in 0..loads {
            profiler.load(i * stride);
        }
        profiler.exit();
        let report = TopDownModel::reference().analyze(&profiler.finish());
        let sum: f64 = report.ratios.as_array().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(report.cycles >= 0.9);
        for r in report.ratios.as_array() {
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }
}
