//! Workload generator for `521.wrf_r` — weather-simulation inputs.
//!
//! The paper's twelve wrf workloads pair two storm datasets (hurricane
//! Katrina, typhoon Rusa) with command-line physics options (microphysics,
//! long-wave radiation, land-surface temperature, boundary-layer scheme).
//! Our mini-wrf advects a synthetic storm across a 2-D grid, so a workload
//! is a storm shape (the "dataset") plus the same four physics toggles
//! (the "namelist").

use crate::{Named, Scale, SeededRng};

/// The synthetic storm initial condition — stands in for a WRF input
/// dataset captured during a major weather event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Storm {
    /// Vortex center as grid fractions.
    pub center: (f64, f64),
    /// Vortex radius as a grid fraction.
    pub radius: f64,
    /// Peak wind intensity.
    pub intensity: f64,
    /// Ambient steering-wind vector.
    pub steering: (f64, f64),
    /// Moisture content scale in `[0, 1]`.
    pub moisture: f64,
}

impl Storm {
    /// A Katrina-flavoured storm: large, intense, moist, drifting NW.
    pub fn katrina() -> Self {
        Storm {
            center: (0.7, 0.3),
            radius: 0.18,
            intensity: 1.0,
            steering: (-0.4, 0.5),
            moisture: 0.9,
        }
    }

    /// A Rusa-flavoured storm: compact, fast-moving, moderately moist.
    pub fn rusa() -> Self {
        Storm {
            center: (0.25, 0.65),
            radius: 0.1,
            intensity: 0.8,
            steering: (0.7, -0.2),
            moisture: 0.7,
        }
    }
}

/// The physics options the paper's script toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicsOptions {
    /// Cloud microphysics (condensation/precipitation source terms).
    pub microphysics: bool,
    /// Long-wave radiative cooling.
    pub longwave_radiation: bool,
    /// Land-surface temperature coupling.
    pub land_surface: bool,
    /// Boundary-layer mixing scheme (0 = off, 1 = simple, 2 = strong).
    pub boundary_layer: u8,
}

impl PhysicsOptions {
    /// All physics enabled at the stronger settings.
    pub fn full() -> Self {
        PhysicsOptions {
            microphysics: true,
            longwave_radiation: true,
            land_surface: true,
            boundary_layer: 2,
        }
    }

    /// Dynamics-only run.
    pub fn dynamics_only() -> Self {
        PhysicsOptions {
            microphysics: false,
            longwave_radiation: false,
            land_surface: false,
            boundary_layer: 0,
        }
    }
}

/// A wrf workload: dataset + namelist + run length.
#[derive(Debug, Clone, PartialEq)]
pub struct WeatherWorkload {
    /// Grid points per side.
    pub grid: usize,
    /// Time steps.
    pub steps: usize,
    /// The storm initial condition.
    pub storm: Storm,
    /// Physics options.
    pub physics: PhysicsOptions,
    /// Seed for terrain generation.
    pub terrain_seed: u64,
}

/// Parameters of the weather workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherGen {
    /// Grid points per side.
    pub grid: usize,
    /// Time steps.
    pub steps: usize,
}

impl WeatherGen {
    /// Standard configuration scaled by `scale`.
    pub fn standard(scale: Scale) -> Self {
        WeatherGen {
            grid: 24 + 4 * scale.factor(),
            steps: scale.apply(8),
        }
    }

    /// Generates one workload.
    ///
    /// # Panics
    ///
    /// Panics if `grid < 8` or `steps == 0`.
    pub fn generate(&self, storm: Storm, physics: PhysicsOptions, seed: u64) -> WeatherWorkload {
        assert!(self.grid >= 8, "grid too coarse");
        assert!(self.steps > 0, "need at least one step");
        let mut rng = SeededRng::new(seed);
        WeatherWorkload {
            grid: self.grid,
            steps: self.steps,
            storm,
            physics,
            terrain_seed: rng.next_u64(),
        }
    }
}

/// The paper's twelve workloads = 2 storms × 6 physics combinations;
/// Table II lists 16 wrf workloads, so we use 2 storms × 8 combinations.
pub fn alberta_set(scale: Scale) -> Vec<Named<WeatherWorkload>> {
    let gen = WeatherGen::standard(scale);
    let combos: [(&str, PhysicsOptions); 8] = [
        ("full", PhysicsOptions::full()),
        ("dyn", PhysicsOptions::dynamics_only()),
        (
            "micro",
            PhysicsOptions {
                microphysics: true,
                ..PhysicsOptions::dynamics_only()
            },
        ),
        (
            "rad",
            PhysicsOptions {
                longwave_radiation: true,
                ..PhysicsOptions::dynamics_only()
            },
        ),
        (
            "land",
            PhysicsOptions {
                land_surface: true,
                ..PhysicsOptions::dynamics_only()
            },
        ),
        (
            "pbl1",
            PhysicsOptions {
                boundary_layer: 1,
                ..PhysicsOptions::dynamics_only()
            },
        ),
        (
            "pbl2",
            PhysicsOptions {
                boundary_layer: 2,
                ..PhysicsOptions::dynamics_only()
            },
        ),
        (
            "norad",
            PhysicsOptions {
                longwave_radiation: false,
                ..PhysicsOptions::full()
            },
        ),
    ];
    let mut out = Vec::new();
    for (sname, storm) in [("katrina", Storm::katrina()), ("rusa", Storm::rusa())] {
        for (i, (pname, physics)) in combos.iter().enumerate() {
            out.push(Named::new(
                format!("alberta.{sname}.{pname}"),
                gen.generate(storm, *physics, 0x34F + i as u64),
            ));
        }
    }
    out
}

/// Canonical training workload: short Rusa run, simple physics.
pub fn train(scale: Scale) -> Named<WeatherWorkload> {
    let mut gen = WeatherGen::standard(scale);
    gen.steps = (gen.steps / 2).max(1);
    Named::new(
        "train",
        gen.generate(Storm::rusa(), PhysicsOptions::dynamics_only(), 0x7241),
    )
}

/// Canonical reference workload: long Katrina run, full physics.
pub fn refrate(scale: Scale) -> Named<WeatherWorkload> {
    let mut gen = WeatherGen::standard(scale);
    gen.steps *= 2;
    Named::new(
        "refrate",
        gen.generate(Storm::katrina(), PhysicsOptions::full(), 0x43F),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alberta_set_is_two_storms_by_eight_options() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 16, "Table II lists 16 wrf workloads");
        let katrina = set.iter().filter(|w| w.name.contains("katrina")).count();
        assert_eq!(katrina, 8);
    }

    #[test]
    fn storms_differ_in_shape() {
        let k = Storm::katrina();
        let r = Storm::rusa();
        assert!(k.radius > r.radius);
        assert!(k.moisture > r.moisture);
        assert_ne!(k.steering, r.steering);
    }

    #[test]
    fn physics_presets() {
        assert!(PhysicsOptions::full().microphysics);
        assert!(!PhysicsOptions::dynamics_only().land_surface);
        assert_eq!(PhysicsOptions::dynamics_only().boundary_layer, 0);
    }

    #[test]
    fn determinism() {
        let gen = WeatherGen::standard(Scale::Test);
        let a = gen.generate(Storm::katrina(), PhysicsOptions::full(), 1);
        let b = gen.generate(Storm::katrina(), PhysicsOptions::full(), 1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "grid too coarse")]
    fn tiny_grid_panics() {
        let gen = WeatherGen { grid: 4, steps: 1 };
        let _ = gen.generate(Storm::rusa(), PhysicsOptions::full(), 0);
    }
}
