//! Workload generator for `531.deepsjeng_r` — chess positions with search
//! depths.
//!
//! The paper's script draws positions from the Arasan test suite and pairs
//! each with a ply depth drawn from a user-supplied range; each Alberta
//! workload holds eight positions with depths 11–16. We have no Arasan
//! archive, so a position is specified as *a number of scrambling moves
//! from the initial position* plus a seed: the mini-deepsjeng engine plays
//! that many pseudo-random legal moves to derive a concrete (and therefore
//! guaranteed legal) position before searching it. The knobs the paper
//! names — positions per workload and the ply-depth range — are preserved.

use crate::{Named, Scale, SeededRng};

/// One search task: a position spec plus the depth to analyze it to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PositionSpec {
    /// Seed for the scrambling move sequence.
    pub seed: u64,
    /// Number of pseudo-random legal half-moves played from the initial
    /// position to reach the test position.
    pub random_moves: u32,
    /// Search depth in plies.
    pub depth: u32,
}

/// A deepsjeng workload: a list of positions to analyze.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChessWorkload {
    /// The positions, searched in order.
    pub positions: Vec<PositionSpec>,
}

/// Parameters of the chess workload generator — mirrors the paper's
/// script inputs: positions per workload and a ply-depth range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChessGen {
    /// Positions per workload (the paper uses eight).
    pub positions_per_workload: usize,
    /// Minimum search depth (inclusive).
    pub min_depth: u32,
    /// Maximum search depth (inclusive).
    pub max_depth: u32,
    /// Range of scrambling moves: opening-ish (low) to endgame-ish (high).
    pub min_random_moves: u32,
    /// Upper bound of scrambling moves.
    pub max_random_moves: u32,
}

impl ChessGen {
    /// Standard configuration. Depth scales with the workload scale
    /// (search cost is exponential in depth, so the step is small).
    pub fn standard(scale: Scale) -> Self {
        let depth_bonus = match scale {
            Scale::Test => 0,
            Scale::Train => 1,
            Scale::Ref => 2,
        };
        ChessGen {
            positions_per_workload: 8,
            min_depth: 3 + depth_bonus,
            max_depth: 5 + depth_bonus,
            min_random_moves: 6,
            max_random_moves: 60,
        }
    }

    /// Generates one workload.
    ///
    /// # Panics
    ///
    /// Panics if `positions_per_workload` is zero or the depth range is
    /// inverted.
    pub fn generate(&self, seed: u64) -> ChessWorkload {
        assert!(self.positions_per_workload > 0);
        assert!(self.min_depth <= self.max_depth, "inverted depth range");
        assert!(self.min_random_moves <= self.max_random_moves);
        let mut rng = SeededRng::new(seed);
        let positions = (0..self.positions_per_workload)
            .map(|_| PositionSpec {
                seed: rng.next_u64(),
                random_moves: rng.range(self.min_random_moves as i64, self.max_random_moves as i64)
                    as u32,
                depth: rng.range(self.min_depth as i64, self.max_depth as i64) as u32,
            })
            .collect();
        ChessWorkload { positions }
    }
}

impl ChessWorkload {
    /// Fault-injection hook: deterministically invalidates one
    /// seeded-picked position by zeroing its search depth — the mini
    /// engine's analogue of an illegal FEN string, since a zero-ply
    /// search task is meaningless and must be rejected, not searched.
    ///
    /// No-op (returns `false`) on an empty workload.
    pub fn corrupt(&mut self, seed: u64) -> bool {
        if self.positions.is_empty() {
            return false;
        }
        let victim = (seed % self.positions.len() as u64) as usize;
        self.positions[victim].depth = 0;
        true
    }
}

/// The nine Alberta workloads (paper: "nine new workloads, each one
/// containing eight chess positions").
pub fn alberta_set(scale: Scale) -> Vec<Named<ChessWorkload>> {
    let gen = ChessGen::standard(scale);
    (0..9)
        .map(|i| Named::new(format!("alberta.{i}"), gen.generate(0x5E_A0 + i)))
        .collect()
}

/// Canonical training workload: three mid-game positions, shallow.
pub fn train(scale: Scale) -> Named<ChessWorkload> {
    let mut gen = ChessGen::standard(scale);
    gen.positions_per_workload = 3;
    gen.max_depth = gen.min_depth;
    Named::new("train", gen.generate(0x7241))
}

/// Canonical reference workload: eight positions at full depth.
pub fn refrate(scale: Scale) -> Named<ChessWorkload> {
    let gen = ChessGen::standard(scale);
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depths_respect_configured_range() {
        let gen = ChessGen::standard(Scale::Train);
        let w = gen.generate(1);
        assert_eq!(w.positions.len(), 8);
        for p in &w.positions {
            assert!(p.depth >= gen.min_depth && p.depth <= gen.max_depth);
            assert!(p.random_moves >= gen.min_random_moves);
            assert!(p.random_moves <= gen.max_random_moves);
        }
    }

    #[test]
    fn workloads_are_deterministic_and_distinct() {
        let gen = ChessGen::standard(Scale::Test);
        assert_eq!(gen.generate(9), gen.generate(9));
        assert_ne!(gen.generate(9), gen.generate(10));
    }

    #[test]
    fn alberta_set_matches_paper_count() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 9, "paper ships nine deepsjeng workloads");
        assert!(set.iter().all(|w| w.workload.positions.len() == 8));
    }

    #[test]
    fn scale_raises_depth() {
        let t = ChessGen::standard(Scale::Test);
        let r = ChessGen::standard(Scale::Ref);
        assert!(r.min_depth > t.min_depth);
    }

    #[test]
    fn train_is_cheaper_than_refrate() {
        let t = train(Scale::Test);
        let r = refrate(Scale::Test);
        assert!(t.workload.positions.len() < r.workload.positions.len());
    }

    #[test]
    #[should_panic(expected = "inverted depth range")]
    fn inverted_range_panics() {
        let gen = ChessGen {
            positions_per_workload: 1,
            min_depth: 9,
            max_depth: 3,
            min_random_moves: 0,
            max_random_moves: 1,
        };
        let _ = gen.generate(0);
    }
}
