//! Workload generator for `548.exchange2_r` — Sudoku seed puzzles.
//!
//! The benchmark consumes a file of valid 81-character Sudoku puzzles that
//! seed the generation of further puzzles with identical clue patterns.
//! The paper found that replacing the distributed 27 seeds with other
//! puzzles made runs too short, so its script keeps the original seeds and
//! varies only *how many* puzzles each workload processes. Our generator
//! goes one step further and can mint arbitrarily many valid seed puzzles
//! without a solver: it builds a canonical solved grid and applies the
//! validity-preserving symmetries of Sudoku (digit relabeling, row/column
//! permutations within bands, band/stack permutations), then punches out
//! clues according to a pattern.

use crate::{Named, Scale, SeededRng};

/// A 9×9 Sudoku puzzle; `0` denotes an empty cell. Stored row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Puzzle(pub [u8; 81]);

impl Puzzle {
    /// Renders the puzzle as the 81-character string format the SPEC
    /// benchmark reads (digits, `.` for empties).
    pub fn to_line(&self) -> String {
        self.0
            .iter()
            .map(|&d| if d == 0 { '.' } else { char::from(b'0' + d) })
            .collect()
    }

    /// Parses an 81-character line (digits and `.`/`0` for empties).
    ///
    /// # Errors
    ///
    /// Returns a message when the line is not 81 valid characters.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let bytes: Vec<u8> = line.trim().bytes().collect();
        if bytes.len() != 81 {
            return Err(format!("expected 81 characters, got {}", bytes.len()));
        }
        let mut cells = [0u8; 81];
        for (i, &b) in bytes.iter().enumerate() {
            cells[i] = match b {
                b'.' | b'0' => 0,
                b'1'..=b'9' => b - b'0',
                _ => return Err(format!("invalid character {:?} at {i}", b as char)),
            };
        }
        Ok(Puzzle(cells))
    }

    /// Number of clues (filled cells).
    pub fn clue_count(&self) -> usize {
        self.0.iter().filter(|&&d| d != 0).count()
    }

    /// Checks that no row, column, or box repeats a digit (empties are
    /// ignored), i.e. the puzzle is *consistent*.
    #[allow(clippy::needless_range_loop)]
    pub fn is_consistent(&self) -> bool {
        let mut rows = [[false; 10]; 9];
        let mut cols = [[false; 10]; 9];
        let mut boxes = [[false; 10]; 9];
        for r in 0..9 {
            for c in 0..9 {
                let d = self.0[r * 9 + c] as usize;
                if d == 0 {
                    continue;
                }
                let b = (r / 3) * 3 + c / 3;
                if rows[r][d] || cols[c][d] || boxes[b][d] {
                    return false;
                }
                rows[r][d] = true;
                cols[c][d] = true;
                boxes[b][d] = true;
            }
        }
        true
    }

    /// Whether the grid is fully filled and consistent.
    pub fn is_solved(&self) -> bool {
        self.0.iter().all(|&d| d != 0) && self.is_consistent()
    }
}

/// Produces a solved grid from a seed by symmetry transformations of the
/// canonical Latin-square-style solution.
pub fn solved_grid(seed: u64) -> Puzzle {
    let mut rng = SeededRng::new(seed);
    // Canonical pattern: cell(r, c) = (3*(r%3) + r/3 + c) % 9 + 1.
    let mut grid = [0u8; 81];
    for r in 0..9 {
        for c in 0..9 {
            grid[r * 9 + c] = ((3 * (r % 3) + r / 3 + c) % 9) as u8 + 1;
        }
    }
    // Digit relabeling.
    let mut digits: [u8; 9] = [1, 2, 3, 4, 5, 6, 7, 8, 9];
    rng.shuffle(&mut digits);
    for cell in grid.iter_mut() {
        *cell = digits[(*cell - 1) as usize];
    }
    // Row permutations within each band, then band permutation.
    let mut rows: Vec<usize> = (0..9).collect();
    for band in 0..3 {
        let mut idx = [band * 3, band * 3 + 1, band * 3 + 2];
        rng.shuffle(&mut idx);
        rows[band * 3..band * 3 + 3].copy_from_slice(&idx);
    }
    let mut bands = [0usize, 1, 2];
    rng.shuffle(&mut bands);
    let rows: Vec<usize> = bands
        .iter()
        .flat_map(|&b| rows[b * 3..b * 3 + 3].to_vec())
        .collect();
    // Column permutations within each stack, then stack permutation.
    let mut cols: Vec<usize> = (0..9).collect();
    for stack in 0..3 {
        let mut idx = [stack * 3, stack * 3 + 1, stack * 3 + 2];
        rng.shuffle(&mut idx);
        cols[stack * 3..stack * 3 + 3].copy_from_slice(&idx);
    }
    let mut stacks = [0usize, 1, 2];
    rng.shuffle(&mut stacks);
    let cols: Vec<usize> = stacks
        .iter()
        .flat_map(|&s| cols[s * 3..s * 3 + 3].to_vec())
        .collect();
    let mut out = [0u8; 81];
    for (r, &src_r) in rows.iter().enumerate() {
        for (c, &src_c) in cols.iter().enumerate() {
            out[r * 9 + c] = grid[src_r * 9 + src_c];
        }
    }
    Puzzle(out)
}

/// Generates a valid puzzle with exactly `clues` clues from a seed.
///
/// # Panics
///
/// Panics if `clues` is not in `17..=81` (17 is the known minimum for a
/// uniquely solvable Sudoku; we do not verify uniqueness, matching the
/// benchmark's seed-file semantics, but refuse obviously degenerate
/// inputs).
pub fn generate_puzzle(seed: u64, clues: usize) -> Puzzle {
    assert!((17..=81).contains(&clues), "clue count out of range");
    let solved = solved_grid(seed);
    let mut rng = SeededRng::new(seed ^ 0xC1E5);
    let mut order: Vec<usize> = (0..81).collect();
    rng.shuffle(&mut order);
    let mut out = solved;
    for &cell in order.iter().take(81 - clues) {
        out.0[cell] = 0;
    }
    out
}

/// An exchange2 workload: seed puzzles plus how many generated puzzles to
/// derive from each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SudokuWorkload {
    /// The seed puzzles.
    pub seeds: Vec<Puzzle>,
    /// Puzzles to generate per seed.
    pub puzzles_per_seed: u32,
}

/// Parameters of the Sudoku workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SudokuGen {
    /// Seed puzzles per workload.
    pub seeds_per_workload: usize,
    /// Clue count of generated seed puzzles.
    pub clues: usize,
    /// Generated puzzles per seed.
    pub puzzles_per_seed: u32,
}

impl SudokuGen {
    /// Standard configuration scaled by `scale`.
    pub fn standard(scale: Scale) -> Self {
        SudokuGen {
            seeds_per_workload: 6,
            clues: 30,
            puzzles_per_seed: scale.apply(2) as u32,
        }
    }

    /// Generates one workload.
    ///
    /// # Panics
    ///
    /// Panics if `seeds_per_workload` is zero (see also
    /// [`generate_puzzle`] for the clue-range panic).
    pub fn generate(&self, seed: u64) -> SudokuWorkload {
        assert!(self.seeds_per_workload > 0);
        let mut rng = SeededRng::new(seed);
        let seeds = (0..self.seeds_per_workload)
            .map(|_| generate_puzzle(rng.next_u64(), self.clues))
            .collect();
        SudokuWorkload {
            seeds,
            puzzles_per_seed: self.puzzles_per_seed,
        }
    }
}

/// The ten Alberta workloads (paper: "the ten additional workloads").
pub fn alberta_set(scale: Scale) -> Vec<Named<SudokuWorkload>> {
    let gen = SudokuGen::standard(scale);
    (0..10)
        .map(|i| Named::new(format!("alberta.{i}"), gen.generate(0x5D0 + i)))
        .collect()
}

/// Canonical training workload.
pub fn train(scale: Scale) -> Named<SudokuWorkload> {
    let mut gen = SudokuGen::standard(scale);
    gen.seeds_per_workload = 2;
    Named::new("train", gen.generate(0x7241))
}

/// Canonical reference workload.
pub fn refrate(scale: Scale) -> Named<SudokuWorkload> {
    let mut gen = SudokuGen::standard(scale);
    gen.seeds_per_workload = 9;
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solved_grids_are_solved() {
        for seed in 0..20 {
            let g = solved_grid(seed);
            assert!(g.is_solved(), "seed {seed} produced an invalid grid");
        }
    }

    #[test]
    fn solved_grids_vary_with_seed() {
        assert_ne!(solved_grid(1), solved_grid(2));
        assert_eq!(solved_grid(1), solved_grid(1));
    }

    #[test]
    fn generated_puzzles_have_exact_clue_count_and_consistency() {
        for seed in 0..10 {
            let p = generate_puzzle(seed, 30);
            assert_eq!(p.clue_count(), 30);
            assert!(p.is_consistent());
            assert!(!p.is_solved());
        }
    }

    #[test]
    fn line_round_trip() {
        let p = generate_puzzle(5, 25);
        let line = p.to_line();
        assert_eq!(line.len(), 81);
        assert_eq!(Puzzle::from_line(&line).unwrap(), p);
    }

    #[test]
    fn from_line_rejects_garbage() {
        assert!(Puzzle::from_line("short").is_err());
        let bad = "x".repeat(81);
        assert!(Puzzle::from_line(&bad).is_err());
    }

    #[test]
    fn consistency_detects_duplicates() {
        let mut p = solved_grid(3);
        // Force a row duplicate.
        p.0[1] = p.0[0];
        assert!(!p.is_consistent());
    }

    #[test]
    fn alberta_set_matches_paper_count() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 10, "paper ships ten exchange2 workloads");
        for w in &set {
            for s in &w.workload.seeds {
                assert!(s.is_consistent());
            }
        }
    }

    #[test]
    #[should_panic(expected = "clue count out of range")]
    fn degenerate_clue_count_panics() {
        let _ = generate_puzzle(0, 5);
    }
}
