//! Workload generator for `507.cactuBSSN_r` — computational parameters
//! for the BSSN-flavoured PDE solver.
//!
//! The paper generated seven cactuBSSN workloads by "changing
//! computational parameters to the solver … following suggestions for
//! parameter setting from the benchmark authors". Our mini-cactu evolves a
//! wave-equation system with BSSN-like auxiliary fields on a 3-D grid;
//! the workload is exactly that parameter file: grid resolution, time
//! steps, dissipation, initial-data shape.

use crate::{Named, Scale, SeededRng};

/// Initial-data families for the evolved field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitialData {
    /// A single Gaussian pulse of the given width at the grid center.
    GaussianPulse {
        /// Pulse width as a fraction of the grid side.
        width: f64,
    },
    /// Two pulses that collide mid-grid (binary-merger flavour).
    BinaryPulses {
        /// Separation as a fraction of the grid side.
        separation: f64,
    },
    /// Random smooth noise (tests robustness / dissipation).
    SmoothNoise {
        /// Amplitude.
        amplitude: f64,
    },
}

/// A cactuBSSN workload: the solver parameter file.
#[derive(Debug, Clone, PartialEq)]
pub struct PdeWorkload {
    /// Grid points per side (cubic grid).
    pub grid: usize,
    /// Time steps to evolve.
    pub steps: usize,
    /// Courant factor (dt = courant × dx); stability needs < 0.58 in 3-D.
    pub courant: f64,
    /// Kreiss–Oliger dissipation strength.
    pub dissipation: f64,
    /// Initial data.
    pub initial: InitialData,
    /// Seed for the noise family.
    pub seed: u64,
}

/// Parameters of the PDE workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdeGen {
    /// Grid points per side.
    pub grid: usize,
    /// Steps.
    pub steps: usize,
}

impl PdeGen {
    /// Standard configuration scaled by `scale`.
    pub fn standard(scale: Scale) -> Self {
        PdeGen {
            grid: 18 + 2 * scale.factor(),
            steps: scale.apply(4),
        }
    }

    /// Generates one workload with the given initial data.
    ///
    /// # Panics
    ///
    /// Panics if `grid < 8` or `steps == 0`.
    pub fn generate(&self, initial: InitialData, seed: u64) -> PdeWorkload {
        assert!(self.grid >= 8, "grid too coarse for the stencil");
        assert!(self.steps > 0, "need at least one step");
        let mut rng = SeededRng::new(seed);
        PdeWorkload {
            grid: self.grid,
            steps: self.steps,
            courant: rng.float(0.2, 0.5),
            dissipation: rng.float(0.0, 0.3),
            initial,
            seed: rng.next_u64(),
        }
    }
}

/// The Alberta cactuBSSN set: Table II lists 11 workloads; we sweep the
/// three initial-data families across resolutions and dissipation.
pub fn alberta_set(scale: Scale) -> Vec<Named<PdeWorkload>> {
    let base = PdeGen::standard(scale);
    let mut out = Vec::new();
    let families: [(&str, InitialData); 3] = [
        ("gauss", InitialData::GaussianPulse { width: 0.12 }),
        ("binary", InitialData::BinaryPulses { separation: 0.3 }),
        ("noise", InitialData::SmoothNoise { amplitude: 0.05 }),
    ];
    let mut i = 0u64;
    for (name, init) in families {
        for grid_delta in [0usize, 4, 8] {
            let gen = PdeGen {
                grid: base.grid + grid_delta,
                steps: base.steps,
            };
            out.push(Named::new(
                format!("alberta.{name}.g{}", gen.grid),
                gen.generate(init, 0xCAC + i),
            ));
            i += 1;
        }
    }
    // Two long-evolution variants to reach 11.
    for (j, mult) in [2usize, 4].iter().enumerate() {
        let gen = PdeGen {
            grid: base.grid,
            steps: base.steps * mult,
        };
        out.push(Named::new(
            format!("alberta.long{mult}x"),
            gen.generate(InitialData::GaussianPulse { width: 0.2 }, 0xD00 + j as u64),
        ));
    }
    out
}

/// Canonical training workload.
pub fn train(scale: Scale) -> Named<PdeWorkload> {
    let mut gen = PdeGen::standard(scale);
    gen.steps = (gen.steps / 2).max(1);
    Named::new(
        "train",
        gen.generate(InitialData::GaussianPulse { width: 0.15 }, 0x7241),
    )
}

/// Canonical reference workload.
pub fn refrate(scale: Scale) -> Named<PdeWorkload> {
    let mut gen = PdeGen::standard(scale);
    gen.steps *= 2;
    Named::new(
        "refrate",
        gen.generate(InitialData::BinaryPulses { separation: 0.25 }, 0x43F),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_stable_by_construction() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 11, "Table II lists 11 cactuBSSN workloads");
        for w in &set {
            assert!(w.workload.courant < 0.58, "CFL violated");
            assert!(w.workload.grid >= 8);
            assert!(w.workload.steps > 0);
            assert!(w.workload.dissipation >= 0.0);
        }
    }

    #[test]
    fn families_all_present() {
        let set = alberta_set(Scale::Test);
        assert!(set
            .iter()
            .any(|w| matches!(w.workload.initial, InitialData::GaussianPulse { .. })));
        assert!(set
            .iter()
            .any(|w| matches!(w.workload.initial, InitialData::BinaryPulses { .. })));
        assert!(set
            .iter()
            .any(|w| matches!(w.workload.initial, InitialData::SmoothNoise { .. })));
    }

    #[test]
    fn determinism() {
        let gen = PdeGen::standard(Scale::Test);
        let a = gen.generate(InitialData::GaussianPulse { width: 0.1 }, 5);
        let b = gen.generate(InitialData::GaussianPulse { width: 0.1 }, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "grid too coarse")]
    fn tiny_grid_panics() {
        let gen = PdeGen { grid: 4, steps: 1 };
        let _ = gen.generate(InitialData::SmoothNoise { amplitude: 0.1 }, 0);
    }
}
