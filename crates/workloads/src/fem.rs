//! Workload generator for `510.parest_r` — finite-element parameter
//! estimation problems.
//!
//! parest estimates spatially varying coefficients of a PDE from noisy
//! observations (optical tomography). The mini-parest solves the same
//! inverse-problem shape: recover a piecewise-constant diffusion
//! coefficient on a 2-D grid from observations of the forward Poisson
//! solution. A workload is the mesh resolution, the hidden coefficient
//! field, observation noise, and regularization.

use crate::{Named, Scale, SeededRng};

/// A parest workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FemWorkload {
    /// Mesh cells per side (the FEM grid is `n × n`).
    pub mesh: usize,
    /// Hidden diffusion coefficient per parameter block, row-major over a
    /// `blocks × blocks` partition of the domain.
    pub true_coefficients: Vec<f64>,
    /// Parameter blocks per side.
    pub blocks: usize,
    /// Relative observation noise.
    pub noise: f64,
    /// Tikhonov regularization weight.
    pub regularization: f64,
    /// Gauss–Newton outer iterations.
    pub outer_iterations: usize,
    /// Seed for observation-noise generation.
    pub noise_seed: u64,
}

/// Parameters of the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FemGen {
    /// Mesh cells per side.
    pub mesh: usize,
    /// Parameter blocks per side.
    pub blocks: usize,
    /// Observation noise level.
    pub noise: f64,
    /// Outer iterations.
    pub outer_iterations: usize,
}

impl FemGen {
    /// Standard configuration scaled by `scale`.
    pub fn standard(scale: Scale) -> Self {
        FemGen {
            mesh: 8 + 2 * scale.factor(),
            blocks: 2,
            noise: 0.02,
            outer_iterations: 2 + scale.factor() / 2,
        }
    }

    /// Generates one workload with a random hidden coefficient field.
    ///
    /// # Panics
    ///
    /// Panics if `mesh < blocks` or `blocks == 0`.
    pub fn generate(&self, seed: u64) -> FemWorkload {
        assert!(self.blocks > 0, "need at least one block");
        assert!(self.mesh >= self.blocks, "mesh finer than blocks");
        let mut rng = SeededRng::new(seed);
        let true_coefficients = (0..self.blocks * self.blocks)
            .map(|_| rng.float(0.5, 3.0))
            .collect();
        FemWorkload {
            mesh: self.mesh,
            true_coefficients,
            blocks: self.blocks,
            noise: self.noise,
            regularization: rng.float(1e-4, 1e-2),
            outer_iterations: self.outer_iterations,
            noise_seed: rng.next_u64(),
        }
    }
}

/// The 8 parest workloads of Table II: a sweep over mesh resolution,
/// block count, and noise level.
pub fn alberta_set(scale: Scale) -> Vec<Named<FemWorkload>> {
    let base = FemGen::standard(scale);
    let variants: [(usize, usize, f64); 8] = [
        (base.mesh, 1, 0.0),
        (base.mesh, 2, 0.0),
        (base.mesh, 2, 0.05),
        (base.mesh, 3, 0.02),
        (base.mesh * 3 / 2, 2, 0.02),
        (base.mesh * 3 / 2, 3, 0.05),
        (base.mesh * 2, 2, 0.01),
        (base.mesh * 2, 4, 0.02),
    ];
    variants
        .iter()
        .enumerate()
        .map(|(i, &(mesh, blocks, noise))| {
            let gen = FemGen {
                mesh,
                blocks,
                noise,
                outer_iterations: base.outer_iterations,
            };
            Named::new(format!("alberta.{i}"), gen.generate(0xFE0 + i as u64))
        })
        .collect()
}

/// Canonical training workload.
pub fn train(scale: Scale) -> Named<FemWorkload> {
    let mut gen = FemGen::standard(scale);
    gen.mesh = (gen.mesh / 2).max(gen.blocks);
    Named::new("train", gen.generate(0x7241))
}

/// Canonical reference workload.
pub fn refrate(scale: Scale) -> Named<FemWorkload> {
    let mut gen = FemGen::standard(scale);
    gen.mesh *= 2;
    gen.blocks = 3;
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_are_positive_and_sized() {
        let gen = FemGen::standard(Scale::Test);
        let w = gen.generate(1);
        assert_eq!(w.true_coefficients.len(), w.blocks * w.blocks);
        assert!(w.true_coefficients.iter().all(|&c| c > 0.0));
        assert!(w.regularization > 0.0);
    }

    #[test]
    fn alberta_set_has_eight_problems() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 8, "Table II lists 8 parest workloads");
        let meshes: Vec<usize> = set.iter().map(|w| w.workload.mesh).collect();
        assert!(meshes.iter().max().unwrap() >= &(meshes.iter().min().unwrap() * 2));
    }

    #[test]
    fn determinism() {
        let gen = FemGen::standard(Scale::Test);
        assert_eq!(gen.generate(3), gen.generate(3));
        assert_ne!(gen.generate(3), gen.generate(4));
    }

    #[test]
    #[should_panic(expected = "mesh finer than blocks")]
    fn blocks_beyond_mesh_panics() {
        let gen = FemGen {
            mesh: 2,
            blocks: 4,
            noise: 0.0,
            outer_iterations: 1,
        };
        let _ = gen.generate(0);
    }
}
