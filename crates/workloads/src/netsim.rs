//! Workload generator for `520.omnetpp_r` — network topologies for the
//! discrete-event simulator.
//!
//! The paper contributes seven omnetpp workloads that — unlike the SPEC
//! train/ref pair, which only vary simulated time — change the *network
//! topology*: line, ring, star, tree, and three random topologies with 9,
//! 18, and 27 edges. This generator produces exactly those shapes plus the
//! traffic configuration the simulator needs.

use crate::{Named, Scale, SeededRng};

/// The topology families the paper enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Nodes in a chain.
    Line,
    /// Nodes in a cycle.
    Ring,
    /// One hub connected to all others.
    Star,
    /// Balanced binary tree.
    Tree,
    /// Connected random graph with the given extra edge count.
    Random {
        /// Total number of edges (must be ≥ nodes − 1 for connectivity).
        edges: usize,
    },
}

/// An omnetpp workload: a network description plus simulation parameters —
/// the analogue of a `.ned` file and its `omnetpp.ini`.
#[derive(Debug, Clone, PartialEq)]
pub struct NetWorkload {
    /// Number of nodes.
    pub nodes: usize,
    /// Undirected links as `(a, b)` node-index pairs, `a < b`.
    pub links: Vec<(u32, u32)>,
    /// Messages injected per node over the run.
    pub messages_per_node: u32,
    /// Mean per-hop transmission delay in simulated microseconds.
    pub mean_link_delay_us: f64,
    /// Seed for traffic generation inside the simulator.
    pub traffic_seed: u64,
}

impl NetWorkload {
    /// Checks the graph is connected (a disconnected network would stall
    /// the simulation the way the paper's early mcf inputs crashed mcf).
    pub fn is_connected(&self) -> bool {
        if self.nodes == 0 {
            return false;
        }
        let mut adj = vec![Vec::new(); self.nodes];
        for &(a, b) in &self.links {
            adj[a as usize].push(b as usize);
            adj[b as usize].push(a as usize);
        }
        let mut seen = vec![false; self.nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &m in &adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.nodes
    }
}

/// Parameters of the network workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetGen {
    /// Number of nodes.
    pub nodes: usize,
    /// Topology family.
    pub topology: Topology,
    /// Messages per node.
    pub messages_per_node: u32,
    /// Mean link delay (µs).
    pub mean_link_delay_us: f64,
}

impl NetGen {
    /// Standard node count / traffic for a scale.
    pub fn standard(scale: Scale, topology: Topology) -> Self {
        NetGen {
            nodes: 10,
            topology,
            messages_per_node: scale.apply(40) as u32,
            mean_link_delay_us: 50.0,
        }
    }

    /// Generates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`, or a random topology requests fewer edges
    /// than `nodes − 1` or more than the complete graph holds.
    pub fn generate(&self, seed: u64) -> NetWorkload {
        assert!(self.nodes >= 2, "need at least two nodes");
        let mut rng = SeededRng::new(seed);
        let n = self.nodes as u32;
        let mut links: Vec<(u32, u32)> = match self.topology {
            Topology::Line => (0..n - 1).map(|i| (i, i + 1)).collect(),
            Topology::Ring => {
                let mut v: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
                v.push((0, n - 1));
                v
            }
            Topology::Star => (1..n).map(|i| (0, i)).collect(),
            Topology::Tree => (1..n).map(|i| ((i - 1) / 2, i)).collect(),
            Topology::Random { edges } => {
                let max_edges = self.nodes * (self.nodes - 1) / 2;
                assert!(
                    edges >= self.nodes - 1 && edges <= max_edges,
                    "random topology needs between n-1 and n(n-1)/2 edges"
                );
                // Random spanning tree first (guarantees connectivity) …
                let mut order: Vec<u32> = (0..n).collect();
                rng.shuffle(&mut order);
                let mut v: Vec<(u32, u32)> = Vec::with_capacity(edges);
                for i in 1..self.nodes {
                    let parent = order[rng.below(i as u64) as usize];
                    let child = order[i];
                    v.push((parent.min(child), parent.max(child)));
                }
                // … then extra random edges until the target count.
                while v.len() < edges {
                    let a = rng.below(n as u64) as u32;
                    let b = rng.below(n as u64) as u32;
                    if a == b {
                        continue;
                    }
                    let e = (a.min(b), a.max(b));
                    if !v.contains(&e) {
                        v.push(e);
                    }
                }
                v
            }
        };
        links.sort_unstable();
        NetWorkload {
            nodes: self.nodes,
            links,
            messages_per_node: self.messages_per_node,
            mean_link_delay_us: self.mean_link_delay_us,
            traffic_seed: rng.next_u64(),
        }
    }
}

/// The seven paper topologies: line, ring, star, tree, random-9,
/// random-18, random-27. Table II lists 10 omnetpp workloads (these seven
/// plus SPEC's); we add three denser-traffic variants to reach 10.
pub fn alberta_set(scale: Scale) -> Vec<Named<NetWorkload>> {
    let mut out = Vec::new();
    let shapes: [(&str, Topology); 7] = [
        ("line", Topology::Line),
        ("ring", Topology::Ring),
        ("star", Topology::Star),
        ("tree", Topology::Tree),
        ("random9", Topology::Random { edges: 9 }),
        ("random18", Topology::Random { edges: 18 }),
        ("random27", Topology::Random { edges: 27 }),
    ];
    for (i, (name, topo)) in shapes.iter().enumerate() {
        let gen = NetGen::standard(scale, *topo);
        out.push(Named::new(
            format!("alberta.{name}"),
            gen.generate(0x0E7 + i as u64),
        ));
    }
    for (j, mult) in [2u32, 4, 8].iter().enumerate() {
        let mut gen = NetGen::standard(scale, Topology::Random { edges: 18 });
        gen.messages_per_node *= mult;
        out.push(Named::new(
            format!("alberta.dense{mult}x"),
            gen.generate(0x1F0 + j as u64),
        ));
    }
    out
}

/// Canonical training workload: short run on the tree topology.
pub fn train(scale: Scale) -> Named<NetWorkload> {
    let mut gen = NetGen::standard(scale, Topology::Tree);
    gen.messages_per_node /= 2;
    Named::new("train", gen.generate(0x7241))
}

/// Canonical reference workload: long run on a random topology.
pub fn refrate(scale: Scale) -> Named<NetWorkload> {
    let mut gen = NetGen::standard(scale, Topology::Random { edges: 18 });
    gen.messages_per_node *= 2;
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(topology: Topology) -> NetWorkload {
        NetGen::standard(Scale::Test, topology).generate(5)
    }

    #[test]
    fn line_has_n_minus_one_links() {
        let w = gen(Topology::Line);
        assert_eq!(w.links.len(), w.nodes - 1);
        assert!(w.is_connected());
    }

    #[test]
    fn ring_has_n_links() {
        let w = gen(Topology::Ring);
        assert_eq!(w.links.len(), w.nodes);
        assert!(w.is_connected());
    }

    #[test]
    fn star_hub_touches_every_link() {
        let w = gen(Topology::Star);
        assert!(w.links.iter().all(|&(a, _)| a == 0));
        assert!(w.is_connected());
    }

    #[test]
    fn tree_is_acyclic_and_connected() {
        let w = gen(Topology::Tree);
        assert_eq!(w.links.len(), w.nodes - 1);
        assert!(w.is_connected());
    }

    #[test]
    fn random_topologies_hit_exact_edge_counts() {
        for edges in [9usize, 18, 27] {
            let w = gen(Topology::Random { edges });
            assert_eq!(w.links.len(), edges);
            assert!(w.is_connected(), "random-{edges} must be connected");
            // No duplicate or self edges.
            for &(a, b) in &w.links {
                assert!(a < b);
            }
            let mut dedup = w.links.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), w.links.len());
        }
    }

    #[test]
    fn alberta_set_matches_paper_topologies() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 10, "Table II lists 10 omnetpp workloads");
        let names: Vec<&str> = set.iter().map(|w| w.name.as_str()).collect();
        for expected in [
            "line", "ring", "star", "tree", "random9", "random18", "random27",
        ] {
            assert!(
                names.iter().any(|n| n.contains(expected)),
                "missing {expected}"
            );
        }
        assert!(set.iter().all(|w| w.workload.is_connected()));
    }

    #[test]
    fn determinism() {
        let g = NetGen::standard(Scale::Test, Topology::Random { edges: 18 });
        assert_eq!(g.generate(1), g.generate(1));
        assert_ne!(g.generate(1), g.generate(2));
    }

    #[test]
    #[should_panic(expected = "between n-1")]
    fn too_few_random_edges_panics() {
        let _ = gen(Topology::Random { edges: 3 });
    }

    #[test]
    fn disconnected_detector_works() {
        let w = NetWorkload {
            nodes: 4,
            links: vec![(0, 1), (2, 3)],
            messages_per_node: 1,
            mean_link_delay_us: 1.0,
            traffic_seed: 0,
        };
        assert!(!w.is_connected());
    }
}
