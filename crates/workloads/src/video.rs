//! Workload generator for `525.x264_r` — synthetic video sequences.
//!
//! The paper's x264 workloads are public-domain HD videos plus a script
//! that sets the encoding window (start frame, frame count, dump
//! interval). We have no video corpus, so frames are synthesized: moving
//! gradient backgrounds with moving rectangular objects, optional sensor
//! noise, and hard scene cuts. Those knobs control exactly what drives an
//! encoder's behaviour — motion-estimation success, residual energy, and
//! intra/inter decisions — so varying them moves the benchmark the way
//! different real videos would.

use crate::{Named, Scale, SeededRng};

/// One luma frame, row-major `width × height` bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Width in pixels (multiple of 8).
    pub width: usize,
    /// Height in pixels (multiple of 8).
    pub height: usize,
    /// Luma samples.
    pub pixels: Vec<u8>,
}

impl Frame {
    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }
}

/// An x264 workload: the frame sequence plus encoder parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VideoWorkload {
    /// The frames.
    pub frames: Vec<Frame>,
    /// Quantization step (higher = coarser).
    pub quantizer: u8,
    /// Motion-search radius in pixels.
    pub search_radius: u8,
    /// Insert an intra (key) frame every `keyframe_interval` frames.
    pub keyframe_interval: u32,
}

/// Parameters of the video generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoGen {
    /// Frame width (multiple of 8).
    pub width: usize,
    /// Frame height (multiple of 8).
    pub height: usize,
    /// Number of frames.
    pub frames: usize,
    /// Number of moving objects.
    pub objects: usize,
    /// Global motion speed in pixels/frame.
    pub motion: f64,
    /// Additive noise amplitude (0 = clean).
    pub noise: u8,
    /// Scene cuts: frame indices where content resets.
    pub cuts: usize,
}

impl VideoGen {
    /// Standard configuration scaled by `scale`.
    pub fn standard(scale: Scale) -> Self {
        VideoGen {
            width: 48,
            height: 32,
            frames: scale.apply(6),
            objects: 3,
            motion: 1.5,
            noise: 4,
            cuts: 1,
        }
    }

    /// Generates the frame sequence.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are not positive multiples of 8 or `frames`
    /// is zero.
    pub fn generate(&self, seed: u64) -> VideoWorkload {
        assert!(
            self.width.is_multiple_of(8)
                && self.height.is_multiple_of(8)
                && self.width > 0
                && self.height > 0,
            "dimensions must be positive multiples of 8"
        );
        assert!(self.frames > 0, "need at least one frame");
        let mut rng = SeededRng::new(seed);
        let mut frames = Vec::with_capacity(self.frames);
        let cut_every = if self.cuts > 0 {
            (self.frames / (self.cuts + 1)).max(1)
        } else {
            usize::MAX
        };
        let mut scene_seed = rng.next_u64();
        let mut objects = spawn_objects(self, scene_seed);
        for f in 0..self.frames {
            if f > 0 && f % cut_every == 0 {
                scene_seed = rng.next_u64();
                objects = spawn_objects(self, scene_seed);
            }
            let t = (f % cut_every) as f64;
            let mut pixels = vec![0u8; self.width * self.height];
            let mut bg_rng = SeededRng::new(scene_seed ^ 0xB6);
            let phase = bg_rng.float(0.0, std::f64::consts::TAU);
            for y in 0..self.height {
                for x in 0..self.width {
                    // Drifting diagonal gradient background.
                    let v = ((x as f64 + y as f64 + t * self.motion) * 0.15 + phase).sin();
                    pixels[y * self.width + x] = (128.0 + 80.0 * v) as u8;
                }
            }
            for obj in &objects {
                let ox = (obj.x + t * obj.vx).rem_euclid(self.width as f64) as usize;
                let oy = (obj.y + t * obj.vy).rem_euclid(self.height as f64) as usize;
                for dy in 0..obj.size {
                    for dx in 0..obj.size {
                        let px = (ox + dx) % self.width;
                        let py = (oy + dy) % self.height;
                        pixels[py * self.width + px] = obj.shade;
                    }
                }
            }
            if self.noise > 0 {
                let mut noise_rng = SeededRng::new(seed ^ (f as u64) << 8);
                for p in pixels.iter_mut() {
                    let n = noise_rng.range(-(self.noise as i64), self.noise as i64);
                    *p = (*p as i64 + n).clamp(0, 255) as u8;
                }
            }
            frames.push(Frame {
                width: self.width,
                height: self.height,
                pixels,
            });
        }
        VideoWorkload {
            frames,
            quantizer: 8,
            search_radius: 4,
            keyframe_interval: 8,
        }
    }
}

struct MovingObject {
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    size: usize,
    shade: u8,
}

fn spawn_objects(gen: &VideoGen, seed: u64) -> Vec<MovingObject> {
    let mut rng = SeededRng::new(seed);
    (0..gen.objects)
        .map(|_| MovingObject {
            x: rng.float(0.0, gen.width as f64),
            y: rng.float(0.0, gen.height as f64),
            // Scaling a symmetric unit draw (rather than drawing from
            // [-motion, motion) directly) keeps the range legal and the
            // objects genuinely frozen when `motion` is zero.
            vx: rng.float(-1.0, 1.0) * gen.motion,
            vy: rng.float(-1.0, 1.0) * gen.motion,
            size: 4 + rng.below(6) as usize,
            shade: 30 + rng.below(200) as u8,
        })
        .collect()
}

/// The Alberta x264 set: Table II has no x264 row (it was excluded from
/// the characterization tables) but the paper describes the workload
/// recipe; we ship six videos spanning still/high-motion, clean/noisy,
/// and cut-free/cut-heavy content.
pub fn alberta_set(scale: Scale) -> Vec<Named<VideoWorkload>> {
    let base = VideoGen::standard(scale);
    let variants: [(&str, f64, u8, usize); 6] = [
        ("still.clean", 0.0, 0, 0),
        ("still.noisy", 0.0, 12, 0),
        ("pan.clean", 1.0, 0, 0),
        ("pan.noisy", 1.5, 8, 1),
        ("action.clean", 4.0, 0, 2),
        ("action.noisy", 4.0, 12, 3),
    ];
    variants
        .iter()
        .enumerate()
        .map(|(i, &(name, motion, noise, cuts))| {
            let gen = VideoGen {
                motion,
                noise,
                cuts,
                ..base
            };
            Named::new(format!("alberta.{name}"), gen.generate(0x264 + i as u64))
        })
        .collect()
}

/// Canonical training workload: a short, low-motion clip.
pub fn train(scale: Scale) -> Named<VideoWorkload> {
    let mut gen = VideoGen::standard(scale);
    gen.frames = (gen.frames / 2).max(2);
    gen.motion = 0.5;
    Named::new("train", gen.generate(0x7241))
}

/// Canonical reference workload: a longer mixed clip.
pub fn refrate(scale: Scale) -> Named<VideoWorkload> {
    let mut gen = VideoGen::standard(scale);
    gen.frames *= 2;
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_have_requested_geometry() {
        let gen = VideoGen::standard(Scale::Test);
        let w = gen.generate(1);
        assert_eq!(w.frames.len(), gen.frames);
        for f in &w.frames {
            assert_eq!(f.pixels.len(), gen.width * gen.height);
            let _ = f.at(0, 0);
            let _ = f.at(gen.width - 1, gen.height - 1);
        }
    }

    #[test]
    fn still_video_has_nearly_identical_consecutive_frames() {
        let gen = VideoGen {
            motion: 0.0,
            noise: 0,
            cuts: 0,
            ..VideoGen::standard(Scale::Test)
        };
        let w = gen.generate(2);
        let diff = frame_diff(&w.frames[0], &w.frames[1]);
        assert!(diff < 0.5, "still clean video should barely change: {diff}");
    }

    #[test]
    fn motion_increases_frame_difference() {
        let still = VideoGen {
            motion: 0.0,
            noise: 0,
            cuts: 0,
            ..VideoGen::standard(Scale::Test)
        }
        .generate(3);
        let action = VideoGen {
            motion: 4.0,
            noise: 0,
            cuts: 0,
            ..VideoGen::standard(Scale::Test)
        }
        .generate(3);
        assert!(
            frame_diff(&action.frames[0], &action.frames[1])
                > frame_diff(&still.frames[0], &still.frames[1]) + 1.0
        );
    }

    #[test]
    fn scene_cut_causes_large_difference_spike() {
        let gen = VideoGen {
            frames: 8,
            motion: 0.2,
            noise: 0,
            cuts: 1,
            ..VideoGen::standard(Scale::Test)
        };
        let w = gen.generate(4);
        let cut_at = 8 / 2;
        let at_cut = frame_diff(&w.frames[cut_at - 1], &w.frames[cut_at]);
        let steady = frame_diff(&w.frames[0], &w.frames[1]);
        assert!(at_cut > steady * 3.0, "cut {at_cut} vs steady {steady}");
    }

    #[test]
    fn alberta_set_has_six_videos() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn determinism() {
        let gen = VideoGen::standard(Scale::Test);
        assert_eq!(gen.generate(7), gen.generate(7));
        assert_ne!(gen.generate(7), gen.generate(8));
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn ragged_dimensions_panic() {
        let mut gen = VideoGen::standard(Scale::Test);
        gen.width = 50;
        let _ = gen.generate(0);
    }

    fn frame_diff(a: &Frame, b: &Frame) -> f64 {
        let n = a.pixels.len() as f64;
        a.pixels
            .iter()
            .zip(&b.pixels)
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .sum::<f64>()
            / n
    }
}
