//! Workload generator for `519.lbm_r` — obstacle geometries for the
//! lattice-Boltzmann channel.
//!
//! The paper's twenty-four lbm workloads vary "the shape and size of the
//! objects, the object density and the parameter for the simulation".
//! This generator places spheres and boxes of configurable size/density in
//! a 3-D channel and selects the relaxation parameter and step count.

use crate::{Named, Scale, SeededRng};

/// Obstacle shapes supported by the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Obstacle {
    /// Solid sphere: center (x, y, z) and radius, in cell units.
    Sphere {
        /// Center coordinates.
        center: (f64, f64, f64),
        /// Radius.
        radius: f64,
    },
    /// Axis-aligned box: min and max corners.
    Box {
        /// Minimum corner.
        min: (f64, f64, f64),
        /// Maximum corner.
        max: (f64, f64, f64),
    },
}

impl Obstacle {
    /// Whether the cell `(x, y, z)` lies inside the obstacle.
    pub fn contains(&self, p: (f64, f64, f64)) -> bool {
        match *self {
            Obstacle::Sphere { center, radius } => {
                let d = (p.0 - center.0, p.1 - center.1, p.2 - center.2);
                d.0 * d.0 + d.1 * d.1 + d.2 * d.2 <= radius * radius
            }
            Obstacle::Box { min, max } => {
                p.0 >= min.0
                    && p.0 <= max.0
                    && p.1 >= min.1
                    && p.1 <= max.1
                    && p.2 >= min.2
                    && p.2 <= max.2
            }
        }
    }
}

/// An lbm workload: channel geometry plus simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FluidWorkload {
    /// Channel dimensions in cells (x = flow direction).
    pub dims: (usize, usize, usize),
    /// Obstacles inside the channel.
    pub obstacles: Vec<Obstacle>,
    /// Time steps to simulate.
    pub steps: usize,
    /// BGK relaxation parameter τ (stability requires τ > 0.5).
    pub tau: f64,
    /// Inflow velocity at the channel entrance.
    pub inflow: f64,
}

impl FluidWorkload {
    /// Fraction of channel cells blocked by obstacles.
    pub fn solid_fraction(&self) -> f64 {
        let (nx, ny, nz) = self.dims;
        let mut solid = 0usize;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let p = (x as f64, y as f64, z as f64);
                    if self.obstacles.iter().any(|o| o.contains(p)) {
                        solid += 1;
                    }
                }
            }
        }
        solid as f64 / (nx * ny * nz) as f64
    }
}

/// Parameters of the fluid workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidGen {
    /// Channel dimensions.
    pub dims: (usize, usize, usize),
    /// Number of obstacles.
    pub obstacles: usize,
    /// Obstacle radius range as a fraction of channel height.
    pub radius_range: (f64, f64),
    /// Fraction of obstacles that are boxes rather than spheres.
    pub box_fraction: f64,
    /// Simulation steps.
    pub steps: usize,
    /// Relaxation parameter.
    pub tau: f64,
}

impl FluidGen {
    /// Standard configuration scaled by `scale`.
    pub fn standard(scale: Scale) -> Self {
        FluidGen {
            dims: (24, 12, 12),
            obstacles: 3,
            radius_range: (0.1, 0.25),
            box_fraction: 0.3,
            steps: scale.apply(8),
            tau: 0.8,
        }
    }

    /// Generates the workload; obstacles never block the inflow plane.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is below 4 or `tau <= 0.5` (unstable).
    pub fn generate(&self, seed: u64) -> FluidWorkload {
        let (nx, ny, nz) = self.dims;
        assert!(nx >= 4 && ny >= 4 && nz >= 4, "channel too small");
        assert!(self.tau > 0.5, "tau must exceed 0.5 for stability");
        let mut rng = SeededRng::new(seed);
        let h = ny.min(nz) as f64;
        let obstacles = (0..self.obstacles)
            .map(|_| {
                let r = rng.float(self.radius_range.0, self.radius_range.1) * h;
                // Keep clear of the inflow (x < 3) and outflow planes.
                let cx = rng.float(3.0 + r, nx as f64 - 2.0 - r);
                let cy = rng.float(r, ny as f64 - 1.0 - r);
                let cz = rng.float(r, nz as f64 - 1.0 - r);
                if rng.chance(self.box_fraction) {
                    Obstacle::Box {
                        min: (cx - r, cy - r, cz - r),
                        max: (cx + r, cy + r, cz + r),
                    }
                } else {
                    Obstacle::Sphere {
                        center: (cx, cy, cz),
                        radius: r,
                    }
                }
            })
            .collect();
        FluidWorkload {
            dims: self.dims,
            obstacles,
            steps: self.steps,
            tau: self.tau,
            inflow: 0.05,
        }
    }
}

/// The paper ships twenty-four lbm workloads varying shape, size, density
/// and step parameters; Table II characterizes 30 (including SPEC's own).
/// We generate 30: a 5×3×2 sweep of obstacle count × size × τ.
pub fn alberta_set(scale: Scale) -> Vec<Named<FluidWorkload>> {
    let base = FluidGen::standard(scale);
    let mut out = Vec::new();
    let mut i = 0u64;
    for &count in &[0usize, 1, 3, 6, 10] {
        for &(rlo, rhi) in &[(0.08, 0.15), (0.15, 0.28), (0.25, 0.4)] {
            for &tau in &[0.6, 1.1] {
                let gen = FluidGen {
                    obstacles: count,
                    radius_range: (rlo, rhi),
                    tau,
                    ..base
                };
                out.push(Named::new(
                    format!(
                        "alberta.o{count}.r{}.t{}",
                        (rhi * 100.0) as u32,
                        (tau * 10.0) as u32
                    ),
                    gen.generate(0x1B4 + i),
                ));
                i += 1;
            }
        }
    }
    out
}

/// Canonical training workload: short, sparse channel.
pub fn train(scale: Scale) -> Named<FluidWorkload> {
    let mut gen = FluidGen::standard(scale);
    gen.steps = (gen.steps / 2).max(1);
    gen.obstacles = 1;
    Named::new("train", gen.generate(0x7241))
}

/// Canonical reference workload.
pub fn refrate(scale: Scale) -> Named<FluidWorkload> {
    let mut gen = FluidGen::standard(scale);
    gen.steps *= 2;
    gen.obstacles = 5;
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obstacles_stay_inside_channel_and_clear_of_inflow() {
        let gen = FluidGen::standard(Scale::Test);
        let w = gen.generate(1);
        let (nx, ny, nz) = w.dims;
        for x in 0..3 {
            for y in 0..ny {
                for z in 0..nz {
                    let p = (x as f64, y as f64, z as f64);
                    assert!(
                        !w.obstacles.iter().any(|o| o.contains(p)),
                        "inflow plane blocked at {p:?}"
                    );
                }
            }
        }
        assert!(w.solid_fraction() < 0.5);
        assert!(nx > 0 && ny > 0 && nz > 0);
    }

    #[test]
    fn solid_fraction_grows_with_obstacle_count() {
        let base = FluidGen::standard(Scale::Test);
        let sparse = FluidGen {
            obstacles: 1,
            ..base
        }
        .generate(3);
        let dense = FluidGen {
            obstacles: 8,
            ..base
        }
        .generate(3);
        assert!(dense.solid_fraction() > sparse.solid_fraction());
    }

    #[test]
    fn sphere_and_box_membership() {
        let s = Obstacle::Sphere {
            center: (5.0, 5.0, 5.0),
            radius: 2.0,
        };
        assert!(s.contains((5.0, 6.0, 5.0)));
        assert!(!s.contains((9.0, 5.0, 5.0)));
        let b = Obstacle::Box {
            min: (0.0, 0.0, 0.0),
            max: (2.0, 2.0, 2.0),
        };
        assert!(b.contains((1.0, 1.5, 0.5)));
        assert!(!b.contains((3.0, 1.0, 1.0)));
    }

    #[test]
    fn alberta_set_has_thirty_workloads() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 30, "Table II lists 30 lbm workloads");
        // Sweep actually varies density.
        let fracs: Vec<f64> = set.iter().map(|w| w.workload.solid_fraction()).collect();
        assert!(fracs.contains(&0.0), "zero-obstacle case present");
        assert!(fracs.iter().any(|&f| f > 0.05), "dense case present");
    }

    #[test]
    fn determinism() {
        let gen = FluidGen::standard(Scale::Test);
        assert_eq!(gen.generate(5), gen.generate(5));
    }

    #[test]
    #[should_panic(expected = "tau must exceed 0.5")]
    fn unstable_tau_panics() {
        let mut gen = FluidGen::standard(Scale::Test);
        gen.tau = 0.5;
        let _ = gen.generate(0);
    }
}
