//! Seeded random-number helper shared by every generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG wrapper with the handful of draw shapes the
/// generators need. All Alberta generators derive their entire output from
/// one `u64` seed through this type, which is what makes workload
/// generation reproducible across machines.
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: SmallRng,
}

impl SeededRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives a child RNG for an independent sub-stream. Children with
    /// different labels never correlate, so adding a draw to one part of a
    /// generator does not perturb another part's output.
    pub fn child(&self, label: u64) -> Self {
        let mut probe = self.clone();
        let base: u64 = probe.inner.gen();
        SeededRng::new(base ^ label.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn float(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty float range");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Raw u64 draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SeededRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SeededRng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(-2, 2);
            assert!((-2..=2).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn children_are_independent_of_sibling_draw_counts() {
        let parent = SeededRng::new(11);
        let mut c1a = parent.child(1);
        let mut c1b = parent.child(1);
        let _ = parent.child(2); // unrelated sibling
        assert_eq!(c1a.next_u64(), c1b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SeededRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn pick_covers_all_elements_eventually() {
        let mut r = SeededRng::new(6);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SeededRng::new(0).below(0);
    }
}
