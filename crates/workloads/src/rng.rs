//! Seeded random-number helper shared by every generator.
//!
//! Implemented from scratch (xoshiro256++ seeded through SplitMix64) so
//! the workspace has no external dependencies: workload bytes must be
//! reproducible from a `u64` seed on any machine, including offline
//! build environments where crates.io is unreachable.

/// A deterministic RNG wrapper with the handful of draw shapes the
/// generators need. All Alberta generators derive their entire output from
/// one `u64` seed through this type, which is what makes workload
/// generation reproducible across machines.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand the seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        SeededRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives a child RNG for an independent sub-stream. Children with
    /// different labels never correlate, so adding a draw to one part of a
    /// generator does not perturb another part's output.
    pub fn child(&self, label: u64) -> Self {
        let mut probe = self.clone();
        let base = probe.next_u64();
        SeededRng::new(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's widening-multiply method with rejection: unbiased and
        // branch-cheap for the small bounds the generators use.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = (self.next_u64() as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            // Only reachable for the full i64 domain; a raw draw is uniform.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.below(span as u64) as i64)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the standard [0, 1) dyadic grid.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn float(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty float range");
        lo + self.unit() * (hi - lo)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Raw u64 draw (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SeededRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut r = SeededRng::new(9);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SeededRng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(-2, 2);
            assert!((-2..=2).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn range_covers_extreme_domains() {
        let mut r = SeededRng::new(12);
        for _ in 0..100 {
            let _ = r.range(i64::MIN, i64::MAX);
            assert_eq!(r.range(5, 5), 5);
        }
    }

    #[test]
    fn children_are_independent_of_sibling_draw_counts() {
        let parent = SeededRng::new(11);
        let mut c1a = parent.child(1);
        let mut c1b = parent.child(1);
        let _ = parent.child(2); // unrelated sibling
        assert_eq!(c1a.next_u64(), c1b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SeededRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn pick_covers_all_elements_eventually() {
        let mut r = SeededRng::new(6);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SeededRng::new(0).below(0);
    }
}
