//! Workload generators for the Alberta Workloads reproduction.
//!
//! The paper's central artifact is a set of *additional workloads* for the
//! SPEC CPU 2017 suite, many produced by procedural generators (the mcf
//! city/bus-schedule generator, the deepsjeng position picker, the leela
//! game culler, the x264 video preparation script, …). This crate rebuilds
//! one seeded, parameterized generator per benchmark family, so researchers
//! can mint as many workloads as their methodology needs — the exact
//! capability the paper argues FDO evaluation requires.
//!
//! Every generator is deterministic in its seed and parameters. Each module
//! provides:
//!
//! * a `*Gen` parameter struct with a `generate(seed)` method, and
//! * an `alberta_set(scale)` constructor returning the named standard set
//!   used by the Table II reproduction (workload counts mirror the paper),
//!   plus `train(scale)` and `refrate(scale)` canonical inputs.
//!
//! [`Scale`] shrinks or grows every workload so the same experiments run
//! as fast unit tests, medium integration tests, or full benchmark runs.

pub mod chess;
pub mod compress;
pub mod csrc;
pub mod fem;
pub mod flow;
pub mod fluid;
pub mod go;
pub mod mesh;
pub mod molecule;
pub mod netsim;
pub mod pde;
pub mod raytrace;
pub mod sudoku;
pub mod video;
pub mod weather;
pub mod xmlgen;

mod rng;

pub use rng::SeededRng;

/// Global size multiplier for workload generation.
///
/// The SPEC suite distinguishes `test` (smoke), `train` (FDO profiling) and
/// `ref` (measurement) input sizes; our scale plays the same role for every
/// generated workload set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Tiny inputs for unit tests (sub-second full-suite runs).
    Test,
    /// Medium inputs for integration tests and quick experiments.
    #[default]
    Train,
    /// Full-size inputs for benchmark regeneration.
    Ref,
}

impl Scale {
    /// Multiplies a base size by the scale factor (Test ×1, Train ×4,
    /// Ref ×16), saturating at `usize::MAX`.
    pub fn apply(self, base: usize) -> usize {
        base.saturating_mul(self.factor())
    }

    /// The raw multiplier.
    pub fn factor(self) -> usize {
        match self {
            Scale::Test => 1,
            Scale::Train => 4,
            Scale::Ref => 16,
        }
    }

    /// The next scale down, or `None` at [`Scale::Test`]. Resilient
    /// harnesses use this to retry a failed run on smaller inputs.
    pub fn reduced(self) -> Option<Scale> {
        match self {
            Scale::Test => None,
            Scale::Train => Some(Scale::Test),
            Scale::Ref => Some(Scale::Train),
        }
    }
}

/// A named workload: the unit the characterization harness iterates over.
#[derive(Debug, Clone, PartialEq)]
pub struct Named<W> {
    /// Workload name, unique within a benchmark's set (e.g. `alberta.3`).
    pub name: String,
    /// The workload payload.
    pub workload: W,
}

impl<W> Named<W> {
    /// Creates a named workload.
    pub fn new(name: impl Into<String>, workload: W) -> Self {
        Named {
            name: name.into(),
            workload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_are_ordered() {
        assert!(Scale::Test.factor() < Scale::Train.factor());
        assert!(Scale::Train.factor() < Scale::Ref.factor());
        assert_eq!(Scale::Test.apply(100), 100);
        assert_eq!(Scale::Train.apply(100), 400);
        assert_eq!(Scale::Ref.apply(100), 1600);
    }

    #[test]
    fn scale_apply_saturates() {
        assert_eq!(Scale::Ref.apply(usize::MAX / 2), usize::MAX);
    }

    #[test]
    fn named_constructor() {
        let n = Named::new("alberta.1", 42u32);
        assert_eq!(n.name, "alberta.1");
        assert_eq!(n.workload, 42);
    }
}
