//! Workload generator for `523.xalancbmk_r` — XML documents plus an
//! XSLT-subset stylesheet.
//!
//! The paper's xalanc workloads came from XSLTMark and XMark: the team
//! wrote "a script to produce new random XML files with different sizes
//! but with the same format so that they could be processed with the same
//! .xls file", and combined eighteen XMark queries into one stylesheet.
//! This generator mirrors both halves: [`XmlGen`] emits random documents
//! over a fixed auction-like schema (sites/people/items, like XMark), and
//! [`standard_stylesheet`] provides the matching multi-template
//! transformation program consumed by the mini-xalan engine.

use crate::{Named, Scale, SeededRng};

/// A xalancbmk workload: document text plus stylesheet text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlWorkload {
    /// The XML document.
    pub document: String,
    /// The stylesheet program (mini-XSLT source, see `alberta-benchmarks`
    /// `minixalan` for the grammar).
    pub stylesheet: String,
}

impl XmlWorkload {
    /// Fault-injection hook: deterministically truncates the document at
    /// a seeded-picked tag opener, leaving a dangling `<` with no closing
    /// `>` — the classic torn-download corruption an XML pipeline must
    /// reject rather than crash on.
    ///
    /// No-op (returns `false`) when the document contains no tag.
    pub fn truncate_document(&mut self, seed: u64) -> bool {
        let openers: Vec<usize> = self
            .document
            .char_indices()
            .filter(|&(_, c)| c == '<')
            .map(|(i, _)| i)
            .collect();
        if openers.is_empty() {
            return false;
        }
        let cut = openers[(seed % openers.len() as u64) as usize];
        self.document.truncate(cut + 1);
        true
    }
}

/// Parameters of the XML document generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XmlGen {
    /// Number of `<item>` records.
    pub items: usize,
    /// Number of `<person>` records.
    pub people: usize,
    /// Maximum nesting depth of `<category>` wrappers around items.
    pub max_depth: usize,
    /// Average length of text payloads in characters.
    pub text_len: usize,
}

impl XmlGen {
    /// Standard configuration scaled by `scale`.
    pub fn standard(scale: Scale) -> Self {
        XmlGen {
            items: scale.apply(120),
            people: scale.apply(40),
            max_depth: 4,
            text_len: 40,
        }
    }

    /// Generates a document over the fixed auction schema.
    ///
    /// # Panics
    ///
    /// Panics if `items` and `people` are both zero.
    pub fn generate(&self, seed: u64) -> String {
        assert!(
            self.items + self.people > 0,
            "document must contain at least one record"
        );
        let mut rng = SeededRng::new(seed);
        let mut out = String::with_capacity((self.items + self.people) * 160);
        out.push_str("<auction>\n");
        out.push_str(" <people>\n");
        for i in 0..self.people {
            let name = random_word(&mut rng);
            let city = random_word(&mut rng);
            out.push_str(&format!(
                "  <person id=\"p{i}\"><name>{name}</name><city>{city}</city><rating>{}</rating></person>\n",
                rng.below(10)
            ));
        }
        out.push_str(" </people>\n <items>\n");
        for i in 0..self.items {
            let depth = 1 + rng.below(self.max_depth.max(1) as u64) as usize;
            for d in 0..depth {
                out.push_str(&format!(
                    "{}<category name=\"c{}\">\n",
                    "  ".repeat(d + 1),
                    rng.below(8)
                ));
            }
            let seller = if self.people > 0 {
                rng.below(self.people as u64)
            } else {
                0
            };
            out.push_str(&format!(
                "{}<item id=\"i{i}\" seller=\"p{seller}\"><price>{}</price><desc>{}</desc></item>\n",
                "  ".repeat(depth + 1),
                rng.below(100_000),
                random_text(&mut rng, self.text_len),
            ));
            for d in (0..depth).rev() {
                out.push_str(&format!("{}</category>\n", "  ".repeat(d + 1)));
            }
        }
        out.push_str(" </items>\n</auction>\n");
        out
    }
}

fn random_word(rng: &mut SeededRng) -> String {
    const WORDS: [&str; 16] = [
        "aster", "birch", "cedar", "delta", "ember", "fjord", "grove", "heath", "islet", "jetty",
        "knoll", "larch", "mesa", "nadir", "oasis", "pines",
    ];
    (*rng.pick(&WORDS)).to_owned()
}

fn random_text(rng: &mut SeededRng, len: usize) -> String {
    let mut s = String::with_capacity(len + 8);
    while s.len() < len {
        s.push_str(&random_word(rng));
        s.push(' ');
    }
    s.truncate(len);
    s
}

/// The fixed stylesheet shared by every workload (like XSLTMark's single
/// `.xls` applied to documents of different sizes). The grammar is the
/// mini-XSLT accepted by `minixalan`: one `template <pattern> { ... }`
/// rule per line-group with `value-of`, `for-each`, `if`, and literal
/// output actions.
pub fn standard_stylesheet() -> String {
    "\
template auction {\n\
  emit <report>\n\
  apply people\n\
  apply items\n\
  emit </report>\n\
}\n\
template people {\n\
  emit <sellers>\n\
  for-each person {\n\
    if @rating > 5 {\n\
      emit <seller>\n\
      value-of name\n\
      value-of city\n\
      emit </seller>\n\
    }\n\
  }\n\
  emit </sellers>\n\
}\n\
template items {\n\
  emit <listing>\n\
  for-each item {\n\
    if @price > 50000 {\n\
      emit <expensive>\n\
      value-of price\n\
      emit </expensive>\n\
    }\n\
    value-of desc\n\
  }\n\
  emit </listing>\n\
}\n\
template category {\n\
  apply *\n\
}\n"
    .to_owned()
}

/// The Alberta workload set: the paper's Table II row for xalancbmk lists
/// 8 workloads — five from XSLT benchmarks plus size variants. We generate
/// 8 documents of widely varying size and shape against the one shared
/// stylesheet.
pub fn alberta_set(scale: Scale) -> Vec<Named<XmlWorkload>> {
    let base = XmlGen::standard(scale);
    // Sizes deliberately span two orders of magnitude, like the paper's
    // mix of short XSLTMark inputs and the combined XMark workload: the
    // smallest documents are cache-resident, the largest are not.
    let variants: [(usize, usize, usize); 8] = [
        (base.items / 8 + 1, base.people / 8 + 1, 2),
        (base.items / 2, base.people, 3),
        (base.items, base.people / 2, 4),
        (base.items, base.people, 4),
        (base.items * 4, base.people / 4, 1),
        (base.items / 4 + 1, base.people * 2, 6),
        (base.items * 8, base.people, 5),
        (base.items * 16, base.people * 4, 3),
    ];
    variants
        .iter()
        .enumerate()
        .map(|(i, &(items, people, max_depth))| {
            let gen = XmlGen {
                items,
                people,
                max_depth,
                text_len: base.text_len,
            };
            Named::new(
                format!("alberta.{i}"),
                XmlWorkload {
                    document: gen.generate(0x3A1 + i as u64),
                    stylesheet: standard_stylesheet(),
                },
            )
        })
        .collect()
}

/// Canonical training workload: a small document.
pub fn train(scale: Scale) -> Named<XmlWorkload> {
    let mut gen = XmlGen::standard(scale);
    gen.items /= 4;
    gen.people /= 4;
    Named::new(
        "train",
        XmlWorkload {
            document: gen.generate(0x7241),
            stylesheet: standard_stylesheet(),
        },
    )
}

/// Canonical reference workload: a large document.
pub fn refrate(scale: Scale) -> Named<XmlWorkload> {
    let mut gen = XmlGen::standard(scale);
    gen.items *= 2;
    Named::new(
        "refrate",
        XmlWorkload {
            document: gen.generate(0x43F),
            stylesheet: standard_stylesheet(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_is_well_formed_enough() {
        let gen = XmlGen::standard(Scale::Test);
        let doc = gen.generate(1);
        assert!(doc.starts_with("<auction>"));
        assert!(doc.trim_end().ends_with("</auction>"));
        // Tag balance: opens equal closes for every element name we emit.
        // Open patterns include the following delimiter so that `<item `
        // does not also count `<items>`.
        for (open, close) in [
            ("<person ", "</person>"),
            ("<item ", "</item>"),
            ("<category ", "</category>"),
            ("<people>", "</people>"),
            ("<items>", "</items>"),
        ] {
            assert_eq!(
                doc.matches(open).count(),
                doc.matches(close).count(),
                "unbalanced {open}"
            );
        }
    }

    #[test]
    fn record_counts_match_parameters() {
        let gen = XmlGen {
            items: 17,
            people: 5,
            max_depth: 3,
            text_len: 20,
        };
        let doc = gen.generate(2);
        assert_eq!(doc.matches("<item ").count(), 17);
        assert_eq!(doc.matches("<person ").count(), 5);
    }

    #[test]
    fn nesting_depth_bounded() {
        let gen = XmlGen {
            items: 50,
            people: 1,
            max_depth: 2,
            text_len: 10,
        };
        let doc = gen.generate(3);
        let mut depth = 0usize;
        let mut max_depth = 0usize;
        for line in doc.lines() {
            let t = line.trim();
            if t.starts_with("<category") {
                depth += 1;
                max_depth = max_depth.max(depth);
            } else if t.starts_with("</category") {
                depth -= 1;
            }
        }
        assert!(max_depth <= 2);
        assert_eq!(depth, 0);
    }

    #[test]
    fn alberta_set_varies_size() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 8, "Table II lists 8 xalancbmk workloads");
        let sizes: Vec<usize> = set.iter().map(|w| w.workload.document.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(
            max > &(min * 3),
            "sizes should span a wide range: {sizes:?}"
        );
    }

    #[test]
    fn stylesheet_is_shared_and_nonempty() {
        let set = alberta_set(Scale::Test);
        for w in &set {
            assert_eq!(w.workload.stylesheet, standard_stylesheet());
        }
        assert!(standard_stylesheet().contains("template auction"));
    }

    #[test]
    fn determinism() {
        let gen = XmlGen::standard(Scale::Test);
        assert_eq!(gen.generate(9), gen.generate(9));
        assert_ne!(gen.generate(9), gen.generate(10));
    }
}
