//! Workload generator for `541.leela_r` — incomplete Go games.
//!
//! The paper's leela workloads are SGF games from the No-Name Go Server
//! archive with "moves culled from the end of the game so that the games
//! are incomplete"; board size and cull count vary between workloads, and
//! each workload holds exactly six positions. With no NNGS archive, a game
//! is specified as a seeded sequence of plausible random moves that the
//! mini-leela engine replays on its own board (guaranteeing legality) —
//! the same way the chess workloads operate. The paper's three board-size
//! choices and the cull knob are preserved.

use crate::{Named, Scale, SeededRng};

/// Supported board sizes (the paper's generator offers three).
pub const BOARD_SIZES: [u8; 3] = [9, 13, 19];

/// One incomplete game to be played to completion by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GameSpec {
    /// Board side length (9, 13 or 19).
    pub board_size: u8,
    /// Seed for the prefix move sequence.
    pub seed: u64,
    /// Number of prefix half-moves replayed before the engine takes over.
    pub prefix_moves: u32,
    /// Monte-Carlo playouts per engine move.
    pub playouts: u32,
    /// Maximum number of moves the engine plays to "finish" the game.
    pub moves_to_play: u32,
}

/// A leela workload: six incomplete games.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoWorkload {
    /// The games, played in order.
    pub games: Vec<GameSpec>,
}

/// Parameters of the Go workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoGen {
    /// Games per workload (the paper uses six).
    pub games_per_workload: usize,
    /// Playouts per move.
    pub playouts: u32,
    /// How many moves the engine plays per game.
    pub moves_to_play: u32,
}

impl GoGen {
    /// Standard configuration scaled by `scale`.
    pub fn standard(scale: Scale) -> Self {
        GoGen {
            games_per_workload: 6,
            playouts: scale.apply(24) as u32,
            moves_to_play: 6 + scale.factor() as u32,
        }
    }

    /// Generates one workload. Board sizes and prefix lengths vary
    /// between games, like the archive games the paper sampled.
    ///
    /// # Panics
    ///
    /// Panics if `games_per_workload` is zero.
    pub fn generate(&self, seed: u64) -> GoWorkload {
        assert!(self.games_per_workload > 0);
        let mut rng = SeededRng::new(seed);
        let games = (0..self.games_per_workload)
            .map(|_| {
                let board_size = *rng.pick(&BOARD_SIZES);
                // Mid-game: fill roughly 15–50% of the board before culling.
                let points = board_size as u32 * board_size as u32;
                let prefix = rng.range((points / 6) as i64, (points / 2) as i64) as u32;
                GameSpec {
                    board_size,
                    seed: rng.next_u64(),
                    prefix_moves: prefix,
                    playouts: self.playouts,
                    moves_to_play: self.moves_to_play,
                }
            })
            .collect();
        GoWorkload { games }
    }
}

/// The nine Alberta workloads (paper: "nine additional workloads …
/// each of the new workloads contains exactly six Go positions").
pub fn alberta_set(scale: Scale) -> Vec<Named<GoWorkload>> {
    let gen = GoGen::standard(scale);
    (0..9)
        .map(|i| Named::new(format!("alberta.{i}"), gen.generate(0x60 + i)))
        .collect()
}

/// Canonical training workload: two small-board games.
pub fn train(scale: Scale) -> Named<GoWorkload> {
    let mut gen = GoGen::standard(scale);
    gen.games_per_workload = 2;
    gen.playouts /= 2;
    Named::new("train", gen.generate(0x7241))
}

/// Canonical reference workload.
pub fn refrate(scale: Scale) -> Named<GoWorkload> {
    let gen = GoGen::standard(scale);
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn games_use_supported_board_sizes() {
        let gen = GoGen::standard(Scale::Test);
        let w = gen.generate(1);
        assert_eq!(w.games.len(), 6);
        for g in &w.games {
            assert!(BOARD_SIZES.contains(&g.board_size));
            let points = g.board_size as u32 * g.board_size as u32;
            assert!(g.prefix_moves <= points / 2);
            assert!(g.prefix_moves >= points / 6);
        }
    }

    #[test]
    fn alberta_set_matches_paper_count() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 9);
        assert!(set.iter().all(|w| w.workload.games.len() == 6));
    }

    #[test]
    fn set_spans_multiple_board_sizes() {
        let set = alberta_set(Scale::Test);
        let mut sizes: Vec<u8> = set
            .iter()
            .flat_map(|w| w.workload.games.iter().map(|g| g.board_size))
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        assert!(sizes.len() >= 2, "workloads should vary board size");
    }

    #[test]
    fn determinism_and_distinctness() {
        let gen = GoGen::standard(Scale::Test);
        assert_eq!(gen.generate(3), gen.generate(3));
        assert_ne!(gen.generate(3), gen.generate(4));
    }

    #[test]
    fn scale_increases_playouts() {
        assert!(GoGen::standard(Scale::Ref).playouts > GoGen::standard(Scale::Test).playouts);
    }
}
