//! Workload generator for `526.blender_r` — 3-D scenes for the
//! rasterizing renderer.
//!
//! The paper's thirteen blender workloads come from two open movie
//! projects and vary "maximum runtime memory, start rendering at different
//! frames, and also … the number of frames rendered". Our mini-blender
//! rasterizes triangle meshes with a z-buffer; a workload is a generated
//! mesh collection (the ".blend file") plus the frame window — the same
//! knobs.

use crate::{Named, Scale, SeededRng};

/// A triangle mesh: vertices plus index triples.
#[derive(Debug, Clone, PartialEq)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<(f64, f64, f64)>,
    /// Triangles as vertex-index triples.
    pub triangles: Vec<(u32, u32, u32)>,
    /// Base shade in `[0, 1]`.
    pub shade: f64,
    /// Per-frame rotation speed around the y axis (radians/frame).
    pub spin: f64,
}

impl TriMesh {
    /// Builds a UV-sphere mesh with the given tessellation.
    ///
    /// # Panics
    ///
    /// Panics if `rings < 2` or `segments < 3`.
    pub fn sphere(center: (f64, f64, f64), radius: f64, rings: usize, segments: usize) -> Self {
        assert!(rings >= 2 && segments >= 3, "tessellation too coarse");
        let mut vertices = Vec::new();
        for r in 0..=rings {
            let phi = std::f64::consts::PI * r as f64 / rings as f64;
            for s in 0..segments {
                let theta = 2.0 * std::f64::consts::PI * s as f64 / segments as f64;
                vertices.push((
                    center.0 + radius * phi.sin() * theta.cos(),
                    center.1 + radius * phi.cos(),
                    center.2 + radius * phi.sin() * theta.sin(),
                ));
            }
        }
        let mut triangles = Vec::new();
        let seg = segments as u32;
        for r in 0..rings as u32 {
            for s in 0..seg {
                let a = r * seg + s;
                let b = r * seg + (s + 1) % seg;
                let c = (r + 1) * seg + s;
                let d = (r + 1) * seg + (s + 1) % seg;
                triangles.push((a, b, c));
                triangles.push((b, d, c));
            }
        }
        TriMesh {
            vertices,
            triangles,
            shade: 0.8,
            spin: 0.0,
        }
    }

    /// Validates index bounds.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.vertices.len() as u32;
        for (i, &(a, b, c)) in self.triangles.iter().enumerate() {
            if a >= n || b >= n || c >= n {
                return Err(format!("triangle {i} references missing vertex"));
            }
        }
        Ok(())
    }
}

/// A blender workload: scene meshes plus the frame window.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshScene {
    /// The meshes.
    pub meshes: Vec<TriMesh>,
    /// Output width in pixels.
    pub width: usize,
    /// Output height in pixels.
    pub height: usize,
    /// First frame to render.
    pub start_frame: u32,
    /// Number of frames to render.
    pub frames: u32,
}

impl MeshScene {
    /// Total triangle count across meshes.
    pub fn triangle_count(&self) -> usize {
        self.meshes.iter().map(|m| m.triangles.len()).sum()
    }
}

/// Parameters of the mesh-scene generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshGen {
    /// Number of objects.
    pub objects: usize,
    /// Tessellation level (rings/segments of each sphere).
    pub tessellation: usize,
    /// Render width.
    pub width: usize,
    /// Render height.
    pub height: usize,
    /// Frames rendered.
    pub frames: u32,
}

impl MeshGen {
    /// Standard configuration scaled by `scale`.
    pub fn standard(scale: Scale) -> Self {
        let f = (scale.factor() as f64).sqrt();
        MeshGen {
            objects: 4,
            tessellation: 8,
            width: (48.0 * f) as usize,
            height: (32.0 * f) as usize,
            frames: 2 + scale.factor() as u32 / 2,
        }
    }

    /// Generates a scene.
    ///
    /// # Panics
    ///
    /// Panics if `objects == 0` or `frames == 0`.
    pub fn generate(&self, seed: u64) -> MeshScene {
        assert!(self.objects > 0, "need at least one object");
        assert!(self.frames > 0, "need at least one frame");
        let mut rng = SeededRng::new(seed);
        let meshes = (0..self.objects)
            .map(|_| {
                let mut m = TriMesh::sphere(
                    (
                        rng.float(-4.0, 4.0),
                        rng.float(-2.0, 2.0),
                        rng.float(6.0, 14.0),
                    ),
                    rng.float(0.5, 1.6),
                    self.tessellation.max(2),
                    (self.tessellation * 3 / 2).max(3),
                );
                m.shade = rng.float(0.3, 1.0);
                m.spin = rng.float(-0.3, 0.3);
                m
            })
            .collect();
        MeshScene {
            meshes,
            width: self.width,
            height: self.height,
            start_frame: rng.below(20) as u32,
            frames: self.frames,
        }
    }
}

/// The 13 blender workloads the paper ships (Table II lists 16 including
/// SPEC's; we sweep object count × tessellation × frame count to 16).
pub fn alberta_set(scale: Scale) -> Vec<Named<MeshScene>> {
    let base = MeshGen::standard(scale);
    let mut out = Vec::new();
    let mut i = 0u64;
    for &objects in &[1usize, 4, 10, 20] {
        for &tess in &[4usize, 8] {
            for &frames_mult in &[1u32, 3] {
                let gen = MeshGen {
                    objects,
                    tessellation: tess,
                    frames: base.frames * frames_mult,
                    ..base
                };
                out.push(Named::new(
                    format!("alberta.o{objects}.t{tess}.f{frames_mult}"),
                    gen.generate(0xB1E + i),
                ));
                i += 1;
            }
        }
    }
    out
}

/// Canonical training workload: a single low-poly object.
pub fn train(scale: Scale) -> Named<MeshScene> {
    let mut gen = MeshGen::standard(scale);
    gen.objects = 1;
    gen.tessellation = 4;
    Named::new("train", gen.generate(0x7241))
}

/// Canonical reference workload: a dense scene.
pub fn refrate(scale: Scale) -> Named<MeshScene> {
    let mut gen = MeshGen::standard(scale);
    gen.objects = 8;
    gen.tessellation = 12;
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_mesh_is_valid_and_closed_enough() {
        let m = TriMesh::sphere((0.0, 0.0, 0.0), 1.0, 6, 9);
        m.validate().unwrap();
        assert_eq!(m.vertices.len(), 7 * 9);
        assert_eq!(m.triangles.len(), 6 * 9 * 2);
        // Every vertex is on the sphere.
        for &(x, y, z) in &m.vertices {
            let r = (x * x + y * y + z * z).sqrt();
            assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn generated_scene_validates() {
        let gen = MeshGen::standard(Scale::Test);
        let s = gen.generate(1);
        assert_eq!(s.meshes.len(), gen.objects);
        for m in &s.meshes {
            m.validate().unwrap();
        }
        assert!(s.triangle_count() > 0);
    }

    #[test]
    fn tessellation_controls_triangle_count() {
        let coarse = MeshGen {
            tessellation: 4,
            ..MeshGen::standard(Scale::Test)
        }
        .generate(2);
        let fine = MeshGen {
            tessellation: 12,
            ..MeshGen::standard(Scale::Test)
        }
        .generate(2);
        assert!(fine.triangle_count() > coarse.triangle_count() * 4);
    }

    #[test]
    fn alberta_set_has_sixteen_scenes() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 16, "Table II lists 16 blender workloads");
        let counts: Vec<usize> = set.iter().map(|w| w.workload.triangle_count()).collect();
        assert!(counts.iter().max().unwrap() > &(counts.iter().min().unwrap() * 10));
    }

    #[test]
    fn determinism() {
        let gen = MeshGen::standard(Scale::Test);
        assert_eq!(gen.generate(9), gen.generate(9));
    }

    #[test]
    #[should_panic(expected = "tessellation too coarse")]
    fn degenerate_sphere_panics() {
        let _ = TriMesh::sphere((0.0, 0.0, 0.0), 1.0, 1, 2);
    }
}
