//! Workload generator for `511.povray_r` — ray-tracing scenes.
//!
//! The paper organizes its seven povray workloads into three categories:
//! *collection* (moderately complex geometry of simple primitives),
//! *lumpy* (a single object over a checkered plane lit by two spotlights,
//! stressing the FPU), and *primitive* (built-in primitives emphasizing
//! reflection, refraction and aperture). This generator produces scenes in
//! each category for the mini-povray ray tracer.

use crate::{Named, Scale, SeededRng};

/// Surface material of a scene object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Base color (r, g, b) in `[0, 1]`.
    pub color: (f64, f64, f64),
    /// Specular reflectivity in `[0, 1]`.
    pub reflectivity: f64,
    /// Transparency in `[0, 1]`; transparent surfaces refract.
    pub transparency: f64,
    /// Refractive index (used when `transparency > 0`).
    pub ior: f64,
    /// Checker texture toggle (povray's classic plane texture).
    pub checker: bool,
}

impl Material {
    /// Matte gray default.
    pub fn matte() -> Self {
        Material {
            color: (0.7, 0.7, 0.7),
            reflectivity: 0.0,
            transparency: 0.0,
            ior: 1.0,
            checker: false,
        }
    }
}

/// Scene geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Sphere: center and radius.
    Sphere {
        /// Center.
        center: (f64, f64, f64),
        /// Radius.
        radius: f64,
    },
    /// Infinite horizontal plane at height `y`.
    Plane {
        /// Height.
        y: f64,
    },
    /// Axis-aligned box.
    Box {
        /// Minimum corner.
        min: (f64, f64, f64),
        /// Maximum corner.
        max: (f64, f64, f64),
    },
}

/// One object: shape plus material.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneObject {
    /// Geometry.
    pub shape: Shape,
    /// Surface.
    pub material: Material,
}

/// A point/spot light.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Light {
    /// Position.
    pub position: (f64, f64, f64),
    /// Intensity in `[0, ∞)`.
    pub intensity: f64,
}

/// A povray workload: scene plus render settings.
#[derive(Debug, Clone, PartialEq)]
pub struct RayScene {
    /// The objects.
    pub objects: Vec<SceneObject>,
    /// The lights.
    pub lights: Vec<Light>,
    /// Output width in pixels.
    pub width: usize,
    /// Output height in pixels.
    pub height: usize,
    /// Maximum recursion depth for reflection/refraction rays.
    pub max_bounces: u32,
    /// Paper category this scene belongs to.
    pub category: SceneCategory,
}

/// The paper's three workload categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneCategory {
    /// Real-world-ish collections of simple primitives.
    Collection,
    /// Single object over a checkered plane with two spotlights.
    Lumpy,
    /// Primitives stressing reflection/refraction.
    Primitive,
}

/// Parameters of the scene generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayGen {
    /// Render width.
    pub width: usize,
    /// Render height.
    pub height: usize,
    /// Objects in collection scenes.
    pub collection_objects: usize,
    /// Maximum ray bounces.
    pub max_bounces: u32,
}

impl RayGen {
    /// Standard configuration scaled by `scale` (resolution scales).
    pub fn standard(scale: Scale) -> Self {
        let f = (scale.factor() as f64).sqrt();
        RayGen {
            width: (48.0 * f) as usize,
            height: (32.0 * f) as usize,
            collection_objects: 12,
            max_bounces: 4,
        }
    }

    /// Generates a scene of the requested category.
    pub fn generate(&self, category: SceneCategory, seed: u64) -> RayScene {
        let mut rng = SeededRng::new(seed);
        let mut objects = Vec::new();
        let mut lights = Vec::new();
        match category {
            SceneCategory::Collection => {
                objects.push(SceneObject {
                    shape: Shape::Plane { y: 0.0 },
                    material: Material::matte(),
                });
                for _ in 0..self.collection_objects {
                    let mat = Material {
                        color: (rng.unit(), rng.unit(), rng.unit()),
                        reflectivity: if rng.chance(0.3) {
                            rng.float(0.1, 0.5)
                        } else {
                            0.0
                        },
                        transparency: 0.0,
                        ior: 1.0,
                        checker: false,
                    };
                    let c = (
                        rng.float(-6.0, 6.0),
                        rng.float(0.4, 3.0),
                        rng.float(4.0, 14.0),
                    );
                    if rng.chance(0.5) {
                        objects.push(SceneObject {
                            shape: Shape::Sphere {
                                center: c,
                                radius: rng.float(0.3, 1.2),
                            },
                            material: mat,
                        });
                    } else {
                        let s = rng.float(0.3, 1.0);
                        objects.push(SceneObject {
                            shape: Shape::Box {
                                min: (c.0 - s, c.1 - s, c.2 - s),
                                max: (c.0 + s, c.1 + s, c.2 + s),
                            },
                            material: mat,
                        });
                    }
                }
                lights.push(Light {
                    position: (0.0, 12.0, 0.0),
                    intensity: 1.0,
                });
            }
            SceneCategory::Lumpy => {
                // Single blobby object (cluster of spheres) over a
                // checkered plane, two spotlights — the paper's recipe.
                objects.push(SceneObject {
                    shape: Shape::Plane { y: 0.0 },
                    material: Material {
                        checker: true,
                        ..Material::matte()
                    },
                });
                let lumps = 5 + rng.below(6) as usize;
                for _ in 0..lumps {
                    objects.push(SceneObject {
                        shape: Shape::Sphere {
                            center: (
                                rng.float(-1.0, 1.0),
                                rng.float(1.0, 2.4),
                                rng.float(7.0, 9.0),
                            ),
                            radius: rng.float(0.5, 1.1),
                        },
                        material: Material {
                            color: (0.8, 0.6, 0.3),
                            reflectivity: 0.15,
                            ..Material::matte()
                        },
                    });
                }
                lights.push(Light {
                    position: (-6.0, 10.0, 2.0),
                    intensity: 0.8,
                });
                lights.push(Light {
                    position: (6.0, 10.0, 2.0),
                    intensity: 0.8,
                });
            }
            SceneCategory::Primitive => {
                objects.push(SceneObject {
                    shape: Shape::Plane { y: 0.0 },
                    material: Material {
                        checker: true,
                        reflectivity: 0.2,
                        ..Material::matte()
                    },
                });
                // A mirrored sphere and a glass sphere: reflection +
                // refraction stress.
                objects.push(SceneObject {
                    shape: Shape::Sphere {
                        center: (-1.6, 1.5, 8.0),
                        radius: 1.5,
                    },
                    material: Material {
                        color: (0.9, 0.9, 0.9),
                        reflectivity: 0.9,
                        ..Material::matte()
                    },
                });
                objects.push(SceneObject {
                    shape: Shape::Sphere {
                        center: (1.6, 1.5, 7.0),
                        radius: 1.5,
                    },
                    material: Material {
                        color: (0.95, 0.95, 1.0),
                        reflectivity: 0.1,
                        transparency: 0.85,
                        ior: rng.float(1.3, 1.7),
                        checker: false,
                    },
                });
                lights.push(Light {
                    position: (0.0, 9.0, 0.0),
                    intensity: 1.2,
                });
            }
        }
        RayScene {
            objects,
            lights,
            width: self.width,
            height: self.height,
            max_bounces: self.max_bounces,
            category,
        }
    }
}

/// The paper's seven povray workloads (Table II lists 10 including SPEC's;
/// we ship 10: four collection, three lumpy, three primitive).
pub fn alberta_set(scale: Scale) -> Vec<Named<RayScene>> {
    let gen = RayGen::standard(scale);
    let mut out = Vec::new();
    for i in 0..4u64 {
        out.push(Named::new(
            format!("alberta.collection.{i}"),
            gen.generate(SceneCategory::Collection, 0xC0_11 + i),
        ));
    }
    for i in 0..3u64 {
        out.push(Named::new(
            format!("alberta.lumpy.{i}"),
            gen.generate(SceneCategory::Lumpy, 0x10_3B + i),
        ));
    }
    for i in 0..3u64 {
        out.push(Named::new(
            format!("alberta.primitive.{i}"),
            gen.generate(SceneCategory::Primitive, 0x9414 + i),
        ));
    }
    out
}

/// Canonical training workload: small collection scene.
pub fn train(scale: Scale) -> Named<RayScene> {
    let mut gen = RayGen::standard(scale);
    gen.collection_objects = 4;
    Named::new("train", gen.generate(SceneCategory::Collection, 0x7241))
}

/// Canonical reference workload: primitive scene at full bounce depth.
pub fn refrate(scale: Scale) -> Named<RayScene> {
    let gen = RayGen::standard(scale);
    Named::new("refrate", gen.generate(SceneCategory::Primitive, 0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lumpy_matches_paper_recipe() {
        let gen = RayGen::standard(Scale::Test);
        let s = gen.generate(SceneCategory::Lumpy, 1);
        assert_eq!(s.lights.len(), 2, "two spotlights");
        let planes = s
            .objects
            .iter()
            .filter(|o| matches!(o.shape, Shape::Plane { .. }))
            .count();
        assert_eq!(planes, 1);
        assert!(s.objects[0].material.checker, "checkered plane");
    }

    #[test]
    fn primitive_scene_has_reflective_and_refractive_objects() {
        let gen = RayGen::standard(Scale::Test);
        let s = gen.generate(SceneCategory::Primitive, 2);
        assert!(s.objects.iter().any(|o| o.material.reflectivity > 0.5));
        assert!(s.objects.iter().any(|o| o.material.transparency > 0.5));
    }

    #[test]
    fn collection_object_count_matches_config() {
        let gen = RayGen {
            collection_objects: 7,
            ..RayGen::standard(Scale::Test)
        };
        let s = gen.generate(SceneCategory::Collection, 3);
        assert_eq!(s.objects.len(), 8, "7 primitives + ground plane");
    }

    #[test]
    fn alberta_set_covers_all_categories() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 10, "Table II lists 10 povray workloads");
        for cat in [
            SceneCategory::Collection,
            SceneCategory::Lumpy,
            SceneCategory::Primitive,
        ] {
            assert!(set.iter().any(|w| w.workload.category == cat));
        }
    }

    #[test]
    fn resolution_scales() {
        let t = RayGen::standard(Scale::Test);
        let r = RayGen::standard(Scale::Ref);
        assert!(r.width > t.width);
    }

    #[test]
    fn determinism() {
        let gen = RayGen::standard(Scale::Test);
        assert_eq!(
            gen.generate(SceneCategory::Collection, 9),
            gen.generate(SceneCategory::Collection, 9)
        );
    }
}
