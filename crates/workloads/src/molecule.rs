//! Workload generator for `544.nab_r` — protein-like molecular systems.
//!
//! The paper's seven nab workloads model forces in seven proteins pulled
//! from the Protein Data Bank. Without PDB access we generate protein-like
//! chains directly: a self-avoiding random walk on a jittered lattice
//! gives residue positions; bonds connect neighbours; angles span bond
//! pairs; partial charges alternate along the chain. The force-field
//! terms the mini-nab evaluates (bond, angle, Lennard-Jones, Coulomb with
//! cutoff) see exactly the structural variety real proteins would induce.

use crate::{Named, Scale, SeededRng};

/// One atom (residue bead) of the generated molecule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Position in Å-like units.
    pub position: (f64, f64, f64),
    /// Partial charge.
    pub charge: f64,
    /// Lennard-Jones σ (collision diameter).
    pub sigma: f64,
    /// Lennard-Jones ε (well depth).
    pub epsilon: f64,
}

/// A bond between two atom indices with rest length and stiffness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bond {
    /// First atom.
    pub a: u32,
    /// Second atom.
    pub b: u32,
    /// Rest length.
    pub length: f64,
    /// Force constant.
    pub k: f64,
}

/// An angle term over three consecutive atoms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Angle {
    /// Outer atom.
    pub a: u32,
    /// Vertex atom.
    pub b: u32,
    /// Outer atom.
    pub c: u32,
    /// Rest angle in radians.
    pub theta0: f64,
    /// Force constant.
    pub k: f64,
}

/// A nab workload: the molecular system plus evaluation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Molecule {
    /// Atoms.
    pub atoms: Vec<Atom>,
    /// Bond terms.
    pub bonds: Vec<Bond>,
    /// Angle terms.
    pub angles: Vec<Angle>,
    /// Nonbonded cutoff radius.
    pub cutoff: f64,
    /// Molecular-dynamics steps to run.
    pub steps: usize,
}

impl Molecule {
    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the molecule has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

/// Parameters of the molecule generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoleculeGen {
    /// Residues (atoms) in the chain.
    pub residues: usize,
    /// Chain compactness in `[0, 1]`: 0 = extended, 1 = tightly folded.
    pub compactness: f64,
    /// Nonbonded cutoff.
    pub cutoff: f64,
    /// MD steps.
    pub steps: usize,
}

impl MoleculeGen {
    /// Standard configuration scaled by `scale`.
    pub fn standard(scale: Scale) -> Self {
        MoleculeGen {
            residues: scale.apply(60),
            compactness: 0.5,
            cutoff: 9.0,
            steps: 2 + scale.factor(),
        }
    }

    /// Generates the molecule via a self-avoiding walk.
    ///
    /// # Panics
    ///
    /// Panics if `residues < 3`.
    pub fn generate(&self, seed: u64) -> Molecule {
        assert!(self.residues >= 3, "need at least three residues");
        let mut rng = SeededRng::new(seed);
        let bond_len = 3.8; // Cα–Cα distance
        let mut atoms: Vec<Atom> = Vec::with_capacity(self.residues);
        let mut pos = (0.0, 0.0, 0.0);
        for i in 0..self.residues {
            atoms.push(Atom {
                position: pos,
                charge: if i % 2 == 0 { 0.35 } else { -0.35 } * rng.float(0.5, 1.5),
                sigma: rng.float(3.2, 4.2),
                epsilon: rng.float(0.05, 0.3),
            });
            // Next direction: biased toward the origin when compact (folds
            // back on itself), with retry-based self-avoidance.
            let mut placed = false;
            for _ in 0..32 {
                let dir = random_unit(&mut rng);
                let pull = self.compactness * 0.5;
                let to_center = normalize((-pos.0, -pos.1, -pos.2));
                let d = normalize((
                    dir.0 + pull * to_center.0,
                    dir.1 + pull * to_center.1,
                    dir.2 + pull * to_center.2,
                ));
                let candidate = (
                    pos.0 + d.0 * bond_len,
                    pos.1 + d.1 * bond_len,
                    pos.2 + d.2 * bond_len,
                );
                let clash = atoms
                    .iter()
                    .any(|a| dist2(a.position, candidate) < (bond_len * 0.7).powi(2));
                if !clash {
                    pos = candidate;
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Escape outward when boxed in; keeps generation total.
                let d = normalize((pos.0 + 1e-3, pos.1 + 2e-3, pos.2 + 3e-3));
                pos = (
                    pos.0 + d.0 * bond_len,
                    pos.1 + d.1 * bond_len,
                    pos.2 + d.2 * bond_len,
                );
            }
        }
        let bonds = (0..self.residues - 1)
            .map(|i| Bond {
                a: i as u32,
                b: i as u32 + 1,
                length: bond_len,
                k: 300.0,
            })
            .collect();
        let angles = (0..self.residues.saturating_sub(2))
            .map(|i| Angle {
                a: i as u32,
                b: i as u32 + 1,
                c: i as u32 + 2,
                theta0: 1.9,
                k: 50.0,
            })
            .collect();
        Molecule {
            atoms,
            bonds,
            angles,
            cutoff: self.cutoff,
            steps: self.steps,
        }
    }
}

fn random_unit(rng: &mut SeededRng) -> (f64, f64, f64) {
    loop {
        let v = (
            rng.float(-1.0, 1.0),
            rng.float(-1.0, 1.0),
            rng.float(-1.0, 1.0),
        );
        let n2 = v.0 * v.0 + v.1 * v.1 + v.2 * v.2;
        if n2 > 1e-4 && n2 <= 1.0 {
            return normalize(v);
        }
    }
}

fn normalize(v: (f64, f64, f64)) -> (f64, f64, f64) {
    let n = (v.0 * v.0 + v.1 * v.1 + v.2 * v.2).sqrt().max(1e-12);
    (v.0 / n, v.1 / n, v.2 / n)
}

fn dist2(a: (f64, f64, f64), b: (f64, f64, f64)) -> f64 {
    let d = (a.0 - b.0, a.1 - b.1, a.2 - b.2);
    d.0 * d.0 + d.1 * d.1 + d.2 * d.2
}

/// The paper's seven proteins → seven generated chains of varying length
/// and fold compactness; Table II lists 11 nab workloads, so four cutoff
/// variants are added.
pub fn alberta_set(scale: Scale) -> Vec<Named<Molecule>> {
    let base = MoleculeGen::standard(scale);
    let mut out = Vec::new();
    let proteins: [(usize, f64); 7] = [
        (base.residues / 2, 0.2),
        (base.residues / 2, 0.8),
        (base.residues, 0.2),
        (base.residues, 0.5),
        (base.residues, 0.8),
        (base.residues * 2, 0.4),
        (base.residues * 2, 0.7),
    ];
    for (i, &(residues, compactness)) in proteins.iter().enumerate() {
        let gen = MoleculeGen {
            residues,
            compactness,
            ..base
        };
        out.push(Named::new(
            format!("alberta.protein{i}"),
            gen.generate(0x0AB + i as u64),
        ));
    }
    for (j, cutoff) in [6.0f64, 8.0, 12.0, 16.0].iter().enumerate() {
        let gen = MoleculeGen {
            cutoff: *cutoff,
            ..base
        };
        out.push(Named::new(
            format!("alberta.cutoff{cutoff}"),
            gen.generate(0x0B8 + j as u64),
        ));
    }
    out
}

/// Canonical training workload: a short chain.
pub fn train(scale: Scale) -> Named<Molecule> {
    let mut gen = MoleculeGen::standard(scale);
    gen.residues = (gen.residues / 2).max(3);
    Named::new("train", gen.generate(0x7241))
}

/// Canonical reference workload: a long, folded chain.
pub fn refrate(scale: Scale) -> Named<Molecule> {
    let mut gen = MoleculeGen::standard(scale);
    gen.residues *= 2;
    gen.compactness = 0.7;
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_topology_is_consistent() {
        let gen = MoleculeGen::standard(Scale::Test);
        let m = gen.generate(1);
        assert_eq!(m.len(), gen.residues);
        assert!(!m.is_empty());
        assert_eq!(m.bonds.len(), gen.residues - 1);
        assert_eq!(m.angles.len(), gen.residues - 2);
        for b in &m.bonds {
            assert!((b.a as usize) < m.len() && (b.b as usize) < m.len());
        }
    }

    #[test]
    fn bonded_atoms_are_near_rest_length() {
        let gen = MoleculeGen::standard(Scale::Test);
        let m = gen.generate(2);
        for b in &m.bonds {
            let d = dist2(
                m.atoms[b.a as usize].position,
                m.atoms[b.b as usize].position,
            )
            .sqrt();
            assert!((d - b.length).abs() < 0.1, "bond stretched to {d}");
        }
    }

    #[test]
    fn self_avoidance_mostly_holds() {
        let gen = MoleculeGen::standard(Scale::Test);
        let m = gen.generate(3);
        let mut clashes = 0;
        for i in 0..m.len() {
            for j in i + 2..m.len() {
                if dist2(m.atoms[i].position, m.atoms[j].position) < 2.0f64.powi(2) {
                    clashes += 1;
                }
            }
        }
        assert!(
            clashes * 20 < m.len(),
            "{clashes} steric clashes in {} residues",
            m.len()
        );
    }

    #[test]
    fn compact_chains_have_smaller_radius_of_gyration() {
        let base = MoleculeGen {
            residues: 120,
            ..MoleculeGen::standard(Scale::Test)
        };
        let rg = |compactness: f64| {
            let m = MoleculeGen {
                compactness,
                ..base
            }
            .generate(7);
            let n = m.len() as f64;
            let cx = m.atoms.iter().map(|a| a.position.0).sum::<f64>() / n;
            let cy = m.atoms.iter().map(|a| a.position.1).sum::<f64>() / n;
            let cz = m.atoms.iter().map(|a| a.position.2).sum::<f64>() / n;
            (m.atoms
                .iter()
                .map(|a| dist2(a.position, (cx, cy, cz)))
                .sum::<f64>()
                / n)
                .sqrt()
        };
        assert!(rg(0.9) < rg(0.0), "folded chain must be more compact");
    }

    #[test]
    fn alberta_set_has_eleven_systems() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 11, "Table II lists 11 nab workloads");
    }

    #[test]
    fn determinism() {
        let gen = MoleculeGen::standard(Scale::Test);
        assert_eq!(gen.generate(5), gen.generate(5));
        assert_ne!(gen.generate(5), gen.generate(6));
    }

    #[test]
    #[should_panic(expected = "at least three residues")]
    fn tiny_chain_panics() {
        let mut gen = MoleculeGen::standard(Scale::Test);
        gen.residues = 2;
        let _ = gen.generate(0);
    }
}
