//! Workload generator for `557.xz_r` — byte streams with controlled
//! compressibility and dictionary pressure.
//!
//! The paper's xz contribution is the discovery that the relationship
//! between *file size* and *dictionary size* skews execution between the
//! match-finder and the literal coder: repeating a file short enough to fit
//! in the sliding-window dictionary turns compression into dictionary
//! lookups. Its eight workloads therefore span very compressible and
//! barely compressible data, both smaller and larger than the dictionary.
//! This generator reproduces all four quadrants with two knobs:
//! [`CompressGen::entropy`] and the size/dictionary ratio.

use crate::{Named, Scale, SeededRng};

/// An xz workload: the bytes to round-trip plus the dictionary size the
//  compressor should use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressWorkload {
    /// Input bytes (decompressed form).
    pub data: Vec<u8>,
    /// Sliding-window dictionary size in bytes.
    pub dict_bytes: usize,
}

/// How the generated data is structured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataKind {
    /// A short phrase repeated verbatim — maximally compressible.
    Repetitive {
        /// Length of the repeated phrase.
        phrase_len: usize,
    },
    /// Markov-chain text with word-like statistics — moderately
    /// compressible, like logs or prose.
    Text,
    /// Uniform random bytes — incompressible.
    Noise,
    /// Text with a fraction of noise blocks interleaved.
    Mixed {
        /// Fraction of noise blocks in `[0, 1]`.
        noise_fraction: f64,
    },
}

/// Parameters of the compression workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressGen {
    /// Output size in bytes.
    pub size: usize,
    /// Data structure/entropy profile.
    pub kind: DataKind,
    /// Dictionary size in bytes.
    pub dict_bytes: usize,
}

impl CompressGen {
    /// Generates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `dict_bytes` is zero.
    pub fn generate(&self, seed: u64) -> CompressWorkload {
        assert!(self.size > 0, "size must be positive");
        assert!(self.dict_bytes > 0, "dictionary must be positive");
        let mut rng = SeededRng::new(seed);
        let data = match self.kind {
            DataKind::Repetitive { phrase_len } => {
                let phrase: Vec<u8> = (0..phrase_len.max(1))
                    .map(|_| b'a' + rng.below(26) as u8)
                    .collect();
                phrase.iter().cycle().take(self.size).copied().collect()
            }
            DataKind::Text => markov_text(&mut rng, self.size),
            DataKind::Noise => (0..self.size).map(|_| rng.below(256) as u8).collect(),
            DataKind::Mixed { noise_fraction } => {
                let mut out = Vec::with_capacity(self.size);
                let block = 512;
                while out.len() < self.size {
                    let remaining = self.size - out.len();
                    let n = block.min(remaining);
                    if rng.chance(noise_fraction) {
                        out.extend((0..n).map(|_| rng.below(256) as u8));
                    } else {
                        out.extend(markov_text(&mut rng, n));
                    }
                }
                out
            }
        };
        CompressWorkload {
            data,
            dict_bytes: self.dict_bytes,
        }
    }

    /// Shannon entropy estimate of the generated data in bits/byte,
    /// useful for asserting generator behaviour.
    pub fn entropy(data: &[u8]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut counts = [0u64; 256];
        for &b in data {
            counts[b as usize] += 1;
        }
        let n = data.len() as f64;
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }
}

/// Word-like Markov text: words drawn from a Zipf-ish vocabulary joined by
/// spaces with sentence structure.
fn markov_text(rng: &mut SeededRng, size: usize) -> Vec<u8> {
    const VOCAB: [&str; 24] = [
        "the",
        "of",
        "and",
        "to",
        "in",
        "benchmark",
        "workload",
        "cache",
        "branch",
        "cycle",
        "time",
        "run",
        "input",
        "data",
        "loop",
        "code",
        "memory",
        "miss",
        "rate",
        "mean",
        "suite",
        "spec",
        "alberta",
        "profile",
    ];
    let mut out = Vec::with_capacity(size + 16);
    let mut sentence_len = 0;
    while out.len() < size {
        // Zipf-ish: favour early vocabulary entries.
        let r = rng.unit() * rng.unit();
        let idx = (r * VOCAB.len() as f64) as usize;
        out.extend_from_slice(VOCAB[idx.min(VOCAB.len() - 1)].as_bytes());
        sentence_len += 1;
        if sentence_len > 8 && rng.chance(0.3) {
            out.extend_from_slice(b". ");
            sentence_len = 0;
        } else {
            out.push(b' ');
        }
    }
    out.truncate(size);
    out
}

/// Default dictionary size used by the standard sets (64 KiB at Test
/// scale; the mini-xz default).
pub fn standard_dict(scale: Scale) -> usize {
    scale.apply(16 * 1024)
}

/// The eight Alberta workloads: {repetitive, text, noise, mixed} ×
/// {smaller than dictionary, larger than dictionary} — exactly the design
/// space the paper says its eight xz workloads cover. The Table II row for
/// xz lists 12 workloads (the Alberta eight plus SPEC's own); we ship 12
/// by adding four intermediate points.
pub fn alberta_set(scale: Scale) -> Vec<Named<CompressWorkload>> {
    let dict = standard_dict(scale);
    let small = dict / 2;
    let large = dict * 4;
    let kinds: [(&str, DataKind); 4] = [
        ("repetitive", DataKind::Repetitive { phrase_len: 37 }),
        ("text", DataKind::Text),
        ("noise", DataKind::Noise),
        (
            "mixed",
            DataKind::Mixed {
                noise_fraction: 0.4,
            },
        ),
    ];
    let mut out = Vec::new();
    for (i, (kname, kind)) in kinds.iter().enumerate() {
        for (sname, size) in [("small", small), ("large", large)] {
            let gen = CompressGen {
                size,
                kind: *kind,
                dict_bytes: dict,
            };
            out.push(Named::new(
                format!("alberta.{kname}.{sname}"),
                gen.generate(0xA20 + i as u64),
            ));
        }
    }
    // Four intermediate sizes on text data to reach the paper's 12.
    for (j, mult) in [1usize, 2, 3, 6].iter().enumerate() {
        let gen = CompressGen {
            size: dict * mult,
            kind: DataKind::Mixed {
                noise_fraction: 0.15,
            },
            dict_bytes: dict,
        };
        out.push(Named::new(
            format!("alberta.sweep.{mult}x"),
            gen.generate(0xB30 + j as u64),
        ));
    }
    out
}

/// Canonical training workload: medium text, dictionary-sized.
pub fn train(scale: Scale) -> Named<CompressWorkload> {
    let dict = standard_dict(scale);
    let gen = CompressGen {
        size: dict,
        kind: DataKind::Text,
        dict_bytes: dict,
    };
    Named::new("train", gen.generate(0x7241))
}

/// Canonical reference workload: large mixed data.
pub fn refrate(scale: Scale) -> Named<CompressWorkload> {
    let dict = standard_dict(scale);
    let gen = CompressGen {
        size: dict * 6,
        kind: DataKind::Mixed {
            noise_fraction: 0.3,
        },
        dict_bytes: dict,
    };
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(kind: DataKind) -> CompressWorkload {
        CompressGen {
            size: 8192,
            kind,
            dict_bytes: 4096,
        }
        .generate(1)
    }

    #[test]
    fn entropy_ordering_matches_kinds() {
        // Order-0 byte entropy cannot see repetition structure, so the
        // repetitive kind is checked for exact periodicity instead.
        let rep = gen(DataKind::Repetitive { phrase_len: 37 });
        for (i, &b) in rep.data.iter().enumerate().skip(37) {
            assert_eq!(b, rep.data[i - 37], "phrase must repeat verbatim");
        }
        let text = CompressGen::entropy(&gen(DataKind::Text).data);
        let noise = CompressGen::entropy(&gen(DataKind::Noise).data);
        assert!(text < noise, "text {text} < noise {noise}");
        assert!(noise > 7.5, "uniform bytes approach 8 bits/byte");
        assert!(text < 5.0, "word-like text is far from uniform");
    }

    #[test]
    fn mixed_interpolates() {
        let lo = CompressGen::entropy(
            &gen(DataKind::Mixed {
                noise_fraction: 0.1,
            })
            .data,
        );
        let hi = CompressGen::entropy(
            &gen(DataKind::Mixed {
                noise_fraction: 0.9,
            })
            .data,
        );
        assert!(lo < hi);
    }

    #[test]
    fn sizes_are_exact() {
        for kind in [
            DataKind::Repetitive { phrase_len: 10 },
            DataKind::Text,
            DataKind::Noise,
            DataKind::Mixed {
                noise_fraction: 0.5,
            },
        ] {
            assert_eq!(gen(kind).data.len(), 8192);
        }
    }

    #[test]
    fn alberta_set_covers_both_sides_of_dictionary() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 12, "Table II lists 12 xz workloads");
        let dict = standard_dict(Scale::Test);
        assert!(set.iter().any(|w| w.workload.data.len() < dict));
        assert!(set.iter().any(|w| w.workload.data.len() > dict));
    }

    #[test]
    fn determinism() {
        let g = CompressGen {
            size: 1000,
            kind: DataKind::Text,
            dict_bytes: 512,
        };
        assert_eq!(g.generate(7), g.generate(7));
        assert_ne!(g.generate(7), g.generate(8));
    }

    #[test]
    fn entropy_of_empty_is_zero() {
        assert_eq!(CompressGen::entropy(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_panics() {
        let _ = CompressGen {
            size: 0,
            kind: DataKind::Noise,
            dict_bytes: 1,
        }
        .generate(0);
    }
}
