//! Workload generator for `502.gcc_r` — single-compilation-unit mini-C
//! programs.
//!
//! The real gcc benchmark consumes one preprocessed C file; the paper's
//! workloads combine publicly available single-file programs with
//! multi-file code bases merged by the `OneFile` tool. This generator
//! plays the role of the "publicly available programs": it emits random
//! but *well-defined, terminating* programs in the mini-C subset compiled
//! by the `minigcc` benchmark. [`MultiFileGen`] additionally produces
//! multi-file programs (with deliberately colliding `static` identifiers)
//! as input for the `alberta-onefile` merger.
//!
//! ## The mini-C subset
//!
//! ```c
//! int g = 3;            // scalar globals (optionally static)
//! int buf[64];          // global arrays
//! static int helper(int a, int b) { ... }
//! int main() { return helper(1, 2); }
//! ```
//!
//! Statements: declarations, assignments, array stores, `if`/`else`,
//! bounded `while` loops, `return`. Expressions: integer arithmetic,
//! comparisons, logical ops, calls, array loads. Every generated loop has
//! a structurally guaranteed constant trip count, so all programs halt.

use crate::{Named, Scale, SeededRng};

/// A single-compilation-unit gcc workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CSource {
    /// The program text.
    pub source: String,
}

/// One file of a multi-file program (OneFile input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CFile {
    /// File name, e.g. `util.c`.
    pub name: String,
    /// File contents.
    pub source: String,
}

/// A multi-file program: compile order is the vector order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiFileProgram {
    /// The files; exactly one defines `main`.
    pub files: Vec<CFile>,
}

/// Parameters of the single-file program generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CSourceGen {
    /// Number of functions besides `main`.
    pub functions: usize,
    /// Statements per function body (before nesting).
    pub statements_per_fn: usize,
    /// Maximum loop trip count.
    pub max_trip_count: u32,
    /// Maximum expression depth.
    pub max_expr_depth: usize,
    /// Number of global scalars.
    pub globals: usize,
    /// Global array length (0 disables arrays).
    pub array_len: usize,
}

impl CSourceGen {
    /// Standard configuration scaled by `scale`.
    pub fn standard(scale: Scale) -> Self {
        CSourceGen {
            functions: 4 + 2 * scale.factor(),
            statements_per_fn: 6,
            max_trip_count: scale.apply(40) as u32,
            max_expr_depth: 3,
            globals: 4,
            array_len: 64,
        }
    }

    /// Generates a program.
    ///
    /// # Panics
    ///
    /// Panics if `functions` is zero.
    pub fn generate(&self, seed: u64) -> CSource {
        assert!(self.functions > 0, "need at least one function");
        let mut rng = SeededRng::new(seed);
        let mut e = Emitter {
            gen: *self,
            out: String::new(),
            loop_var: 0,
            calls_left: 0,
            in_loop: false,
        };
        for g in 0..self.globals {
            e.out
                .push_str(&format!("int g{g} = {};\n", rng.range(-9, 9)));
        }
        if self.array_len > 0 {
            e.out.push_str(&format!("int buf[{}];\n", self.array_len));
        }
        // Acyclic call graph: function i may call any function j > i, so
        // the leaf is emitted last and recursion is impossible.
        for i in 0..self.functions {
            e.emit_function(i, &mut rng);
        }
        // main calls every function and folds results so nothing is dead.
        e.out.push_str("int main() {\n  int acc = 0;\n");
        for i in 0..self.functions {
            let a = rng.range(1, 7);
            let b = rng.range(1, 7);
            e.out.push_str(&format!("  acc = acc + f{i}({a}, {b});\n"));
        }
        e.out.push_str("  return acc;\n}\n");
        CSource { source: e.out }
    }
}

struct Emitter {
    gen: CSourceGen,
    out: String,
    loop_var: usize,
    /// Call sites left for the current function. Each function may call
    /// only its successor and only once, outside loops: this keeps the
    /// dynamic call count quadratic in program size instead of
    /// exponential (a chain of call-in-loop sites would otherwise
    /// multiply trip counts).
    calls_left: u32,
    in_loop: bool,
}

impl Emitter {
    fn emit_function(&mut self, index: usize, rng: &mut SeededRng) {
        let stat = if rng.chance(0.3) { "static " } else { "" };
        self.calls_left = 1;
        self.in_loop = false;
        self.out
            .push_str(&format!("{stat}int f{index}(int a, int b) {{\n"));
        self.out.push_str("  int x = a;\n  int y = b;\n");
        for _ in 0..self.gen.statements_per_fn {
            self.emit_statement(index, rng, 1);
        }
        let ret = self.expr(index, rng, self.gen.max_expr_depth);
        self.out.push_str(&format!("  return {ret};\n}}\n"));
    }

    fn emit_statement(&mut self, fn_index: usize, rng: &mut SeededRng, indent: usize) {
        let pad = "  ".repeat(indent);
        match rng.below(5) {
            0 => {
                // Bounded loop with a fresh induction variable. Loop
                // bodies never contain calls (see `calls_left`).
                let v = self.loop_var;
                self.loop_var += 1;
                let trips = 1 + rng.below(self.gen.max_trip_count.max(1) as u64);
                self.in_loop = true;
                let body = self.expr(fn_index, rng, 2);
                self.in_loop = false;
                self.out.push_str(&format!(
                    "{pad}int i{v} = 0;\n{pad}while (i{v} < {trips}) {{\n{pad}  x = x + ({body});\n{pad}  i{v} = i{v} + 1;\n{pad}}}\n"
                ));
            }
            1 => {
                let cond = self.cond(fn_index, rng);
                let t = self.expr(fn_index, rng, 2);
                let f = self.expr(fn_index, rng, 2);
                self.out.push_str(&format!(
                    "{pad}if ({cond}) {{\n{pad}  y = {t};\n{pad}}} else {{\n{pad}  y = {f};\n{pad}}}\n"
                ));
            }
            2 if self.gen.array_len > 0 => {
                let idx_base = rng.below(self.gen.array_len as u64);
                let val = self.expr(fn_index, rng, 2);
                self.out.push_str(&format!(
                    "{pad}buf[({idx_base} + x) % {}] = {val};\n",
                    self.gen.array_len
                ));
                self.out.push_str(&format!(
                    "{pad}y = y + buf[({} + y) % {}];\n",
                    rng.below(self.gen.array_len as u64),
                    self.gen.array_len
                ));
            }
            3 if self.gen.globals > 0 => {
                let g = rng.below(self.gen.globals as u64);
                let val = self.expr(fn_index, rng, 2);
                self.out.push_str(&format!("{pad}g{g} = ({val}) % 1000;\n"));
            }
            _ => {
                let val = self.expr(fn_index, rng, self.gen.max_expr_depth);
                self.out.push_str(&format!("{pad}x = {val};\n"));
            }
        }
    }

    fn cond(&mut self, fn_index: usize, rng: &mut SeededRng) -> String {
        let lhs = self.expr(fn_index, rng, 1);
        let op = *rng.pick(&["<", ">", "<=", ">=", "==", "!="]);
        let rhs = rng.range(-20, 20);
        format!("({lhs}) {op} {rhs}")
    }

    fn expr(&mut self, fn_index: usize, rng: &mut SeededRng, depth: usize) -> String {
        if depth == 0 {
            return match rng.below(4) {
                0 => "x".to_owned(),
                1 => "y".to_owned(),
                2 if self.gen.globals > 0 => format!("g{}", rng.below(self.gen.globals as u64)),
                _ => rng.range(-50, 50).to_string(),
            };
        }
        match rng.below(6) {
            0 | 1 => {
                let lhs = self.expr(fn_index, rng, depth - 1);
                let rhs = self.expr(fn_index, rng, depth - 1);
                let op = *rng.pick(&["+", "-", "*"]);
                format!("({lhs} {op} {rhs})")
            }
            2 => {
                // Division/modulo guarded against zero and overflow by the
                // mini-C semantics (div by 0 yields 0 in minigcc), but we
                // still prefer non-zero constant divisors.
                let lhs = self.expr(fn_index, rng, depth - 1);
                let d = rng.range(2, 9);
                let op = *rng.pick(&["/", "%"]);
                format!("({lhs} {op} {d})")
            }
            3 if fn_index + 1 < self.gen.functions && self.calls_left > 0 && !self.in_loop => {
                // Forward call to the immediate successor only: acyclic
                // and at most one dynamic call per caller execution.
                self.calls_left -= 1;
                let callee = fn_index + 1;
                let a = self.expr(fn_index, rng, depth.saturating_sub(2));
                format!("f{callee}({a}, y)")
            }
            4 if self.gen.array_len > 0 => {
                format!(
                    "buf[({} + x) % {}]",
                    rng.below(self.gen.array_len as u64),
                    self.gen.array_len
                )
            }
            _ => self.expr(fn_index, rng, 0),
        }
    }
}

/// Parameters of the multi-file generator (OneFile input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiFileGen {
    /// Number of files besides the `main` file.
    pub files: usize,
    /// Functions per file.
    pub functions_per_file: usize,
    /// Whether files deliberately reuse the same `static` identifier
    /// names (the collision case OneFile must mangle).
    pub colliding_statics: bool,
}

impl MultiFileGen {
    /// Standard configuration.
    pub fn standard() -> Self {
        MultiFileGen {
            files: 3,
            functions_per_file: 3,
            colliding_statics: true,
        }
    }

    /// Generates a multi-file program. Each non-main file defines
    /// `static int helper(...)` (same name in every file when
    /// `colliding_statics`) plus public functions `<file>_f<i>`. The main
    /// file calls every public function.
    ///
    /// # Panics
    ///
    /// Panics if `files` or `functions_per_file` is zero.
    pub fn generate(&self, seed: u64) -> MultiFileProgram {
        assert!(self.files > 0 && self.functions_per_file > 0);
        let mut rng = SeededRng::new(seed);
        let mut files = Vec::with_capacity(self.files + 1);
        let mut public_fns = Vec::new();
        for f in 0..self.files {
            let mut src = String::new();
            let (helper_name, counter_name) = if self.colliding_statics {
                ("helper".to_owned(), "counter".to_owned())
            } else {
                (format!("helper_u{f}"), format!("counter_u{f}"))
            };
            let k = rng.range(1, 9);
            src.push_str(&format!(
                "static int {counter_name} = {};\nstatic int {helper_name}(int v) {{\n  return v * {k} + {counter_name};\n}}\n",
                rng.range(0, 5)
            ));
            for i in 0..self.functions_per_file {
                let name = format!("unit{f}_f{i}");
                let c = rng.range(1, 6);
                src.push_str(&format!(
                    "int {name}(int a) {{\n  {counter_name} = {counter_name} + 1;\n  return {helper_name}(a) + {c};\n}}\n"
                ));
                public_fns.push(name);
            }
            files.push(CFile {
                name: format!("unit{f}.c"),
                source: src,
            });
        }
        let mut main_src = String::new();
        for name in &public_fns {
            main_src.push_str(&format!("extern int {name}(int a);\n"));
        }
        main_src.push_str("int main() {\n  int acc = 0;\n");
        for (i, name) in public_fns.iter().enumerate() {
            main_src.push_str(&format!("  acc = acc + {name}({});\n", i as i64 + 1));
        }
        main_src.push_str("  return acc;\n}\n");
        files.push(CFile {
            name: "main.c".to_owned(),
            source: main_src,
        });
        MultiFileProgram { files }
    }
}

/// The 19 gcc workloads of Table II: generated programs spanning an order
/// of magnitude in size and structure.
pub fn alberta_set(scale: Scale) -> Vec<Named<CSource>> {
    let base = CSourceGen::standard(scale);
    (0..19)
        .map(|i| {
            let gen = CSourceGen {
                functions: base.functions + i % 7,
                statements_per_fn: 3 + (i * 2) % 9,
                max_trip_count: base.max_trip_count * (1 + (i as u32 % 3)),
                max_expr_depth: 2 + i % 3,
                globals: 2 + i % 5,
                array_len: if i % 3 == 0 { 0 } else { 32 << (i % 3) },
            };
            Named::new(format!("alberta.{i}"), gen.generate(0x6CC + i as u64))
        })
        .collect()
}

/// Canonical training workload: a small program.
pub fn train(scale: Scale) -> Named<CSource> {
    let mut gen = CSourceGen::standard(scale);
    gen.functions = (gen.functions / 2).max(1);
    gen.statements_per_fn = 3;
    Named::new("train", gen.generate(0x7241))
}

/// Canonical reference workload: a large program.
pub fn refrate(scale: Scale) -> Named<CSource> {
    let mut gen = CSourceGen::standard(scale);
    gen.functions *= 2;
    gen.statements_per_fn = 9;
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_has_expected_shape() {
        let gen = CSourceGen::standard(Scale::Test);
        let src = gen.generate(1).source;
        assert!(src.contains("int main()"));
        for i in 0..gen.functions {
            assert!(
                src.contains(&format!("int f{i}(int a, int b)")),
                "missing f{i}"
            );
        }
        // Braces balance.
        assert_eq!(src.matches('{').count(), src.matches('}').count());
    }

    #[test]
    fn loops_are_bounded_by_construction() {
        let gen = CSourceGen::standard(Scale::Test);
        let src = gen.generate(2).source;
        // Every while header compares a fresh induction variable against a
        // literal and the body increments it; spot-check the pattern.
        for line in src.lines() {
            if let Some(rest) = line.trim().strip_prefix("while (") {
                assert!(
                    rest.starts_with('i'),
                    "loop must use an induction variable: {line}"
                );
            }
        }
    }

    #[test]
    fn determinism_and_distinctness() {
        let gen = CSourceGen::standard(Scale::Test);
        assert_eq!(gen.generate(3), gen.generate(3));
        assert_ne!(gen.generate(3), gen.generate(4));
    }

    #[test]
    fn alberta_set_spans_sizes() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 19, "Table II lists 19 gcc workloads");
        let sizes: Vec<usize> = set.iter().map(|w| w.workload.source.len()).collect();
        assert!(sizes.iter().max().unwrap() > &(sizes.iter().min().unwrap() * 2));
    }

    #[test]
    fn multifile_program_has_collisions_and_one_main() {
        let prog = MultiFileGen::standard().generate(5);
        assert_eq!(prog.files.len(), 4);
        let mains = prog
            .files
            .iter()
            .filter(|f| f.source.contains("int main()"))
            .count();
        assert_eq!(mains, 1);
        let helper_defs = prog
            .files
            .iter()
            .filter(|f| f.source.contains("static int helper(int v)"))
            .count();
        assert_eq!(helper_defs, 3, "every unit redefines static helper");
    }

    #[test]
    fn multifile_without_collisions_uses_unique_names() {
        let gen = MultiFileGen {
            colliding_statics: false,
            ..MultiFileGen::standard()
        };
        let prog = gen.generate(6);
        for (f, file) in prog.files.iter().enumerate().take(gen.files) {
            assert!(file.source.contains(&format!("helper_u{f}")));
        }
    }
}
