//! Workload generator for `505.mcf_r` — single-depot vehicle scheduling as
//! a minimum-cost-flow instance.
//!
//! The paper describes the most elaborate of the Alberta generators: it
//! builds "a map for a city with various levels of density and
//! connectivity", uses "a circadian cycle to schedule the number of buses
//! running throughout the day", and derives from it a single-depot vehicle
//! scheduling problem whose deadhead transitions the MCF benchmark
//! optimizes. This module follows the same pipeline:
//!
//! 1. place stops on a grid-with-jitter city map;
//! 2. draw timetabled trips whose per-hour frequency follows a circadian
//!    curve (morning and evening peaks);
//! 3. connect trips that a single vehicle can serve back-to-back
//!    (deadhead arcs, cost = travel distance + idle time);
//! 4. emit the classic min-cost-flow formulation: one node per trip plus a
//!    depot source/sink, fleet cost on depot arcs, deadhead cost on
//!    connection arcs.
//!
//! The resulting [`FlowInstance`] is guaranteed feasible: every trip can
//! always be served by a fresh vehicle straight from the depot (the
//! failure mode the paper says their "initial effort" ran into is thereby
//! excluded by construction).

use crate::{Named, Scale, SeededRng};

/// One directed arc of a min-cost-flow network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arc {
    /// Tail node index.
    pub from: u32,
    /// Head node index.
    pub to: u32,
    /// Arc capacity (upper bound on flow).
    pub capacity: i64,
    /// Per-unit flow cost.
    pub cost: i64,
}

/// A minimum-cost-flow instance in node/arc form with per-node supplies.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowInstance {
    /// Number of nodes; node indices are `0..node_count`.
    pub node_count: u32,
    /// Supply (positive) or demand (negative) of each node; sums to zero.
    pub supplies: Vec<i64>,
    /// The arcs.
    pub arcs: Vec<Arc>,
}

impl FlowInstance {
    /// Checks structural invariants: balanced supplies, in-range arc
    /// endpoints, non-negative capacities.
    pub fn validate(&self) -> Result<(), String> {
        if self.supplies.len() != self.node_count as usize {
            return Err(format!(
                "supply vector length {} != node count {}",
                self.supplies.len(),
                self.node_count
            ));
        }
        let balance: i64 = self.supplies.iter().sum();
        if balance != 0 {
            return Err(format!("supplies sum to {balance}, expected 0"));
        }
        for (i, arc) in self.arcs.iter().enumerate() {
            if arc.from >= self.node_count || arc.to >= self.node_count {
                return Err(format!("arc {i} endpoint out of range"));
            }
            if arc.capacity < 0 {
                return Err(format!("arc {i} has negative capacity"));
            }
        }
        Ok(())
    }

    /// Fault-injection hook: deterministically disconnects the network by
    /// deleting every arc touching one seeded-picked demand node, leaving
    /// its demand unservable. The instance still passes [`validate`]'s
    /// structural checks (balanced supplies, in-range endpoints) but is
    /// infeasible, which is exactly the class of degenerate input a
    /// production workload service must survive.
    ///
    /// No-op (returns `false`) when the instance has no demand node.
    ///
    /// [`validate`]: FlowInstance::validate
    pub fn disconnect(&mut self, seed: u64) -> bool {
        let demand_nodes: Vec<u32> = (0..self.node_count)
            .filter(|&i| self.supplies[i as usize] < 0)
            .collect();
        if demand_nodes.is_empty() {
            return false;
        }
        let victim = demand_nodes[(seed % demand_nodes.len() as u64) as usize];
        self.arcs
            .retain(|arc| arc.from != victim && arc.to != victim);
        true
    }
}

/// A timetabled trip on the generated city map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trip {
    /// Departure stop index.
    pub from_stop: u32,
    /// Arrival stop index.
    pub to_stop: u32,
    /// Departure time in minutes from midnight.
    pub depart_min: u32,
    /// Arrival time in minutes from midnight.
    pub arrive_min: u32,
}

/// The vehicle-scheduling problem before conversion to min-cost flow;
/// exposed so tests and examples can inspect the generator's city model.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleProblem {
    /// Stop coordinates on the city map (arbitrary distance units).
    pub stops: Vec<(f64, f64)>,
    /// The trips to be covered, sorted by departure time.
    pub trips: Vec<Trip>,
    /// Cost of dispatching one vehicle from the depot.
    pub fleet_cost: i64,
}

/// Parameters of the city/schedule generator.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowGen {
    /// Number of stops on the map.
    pub stops: usize,
    /// Number of timetabled trips per day.
    pub trips: usize,
    /// Map side length in distance units (≈ minutes of deadhead travel).
    pub city_size: f64,
    /// Maximum idle minutes a vehicle waits between two linked trips.
    pub max_layover_min: u32,
    /// Relative strength of the circadian rush-hour peaks in `[0, 1]`.
    pub peakiness: f64,
    /// Cost of putting one more vehicle on the road.
    pub fleet_cost: i64,
}

impl FlowGen {
    /// The generator configuration used for the standard Alberta set.
    pub fn standard(scale: Scale) -> Self {
        FlowGen {
            stops: 12 + 2 * scale.factor(),
            trips: scale.apply(60),
            city_size: 40.0,
            max_layover_min: 45,
            peakiness: 0.7,
            fleet_cost: 5_000,
        }
    }

    /// Relative trip frequency for a given hour of day: a double-peaked
    /// circadian curve (maxima near 08:00 and 17:30, trough overnight).
    pub fn circadian_weight(&self, hour: f64) -> f64 {
        let peak = |center: f64, width: f64| {
            let d = (hour - center) / width;
            (-d * d).exp()
        };
        let base = 0.15;
        base + self.peakiness * (peak(8.0, 2.0) + peak(17.5, 2.5))
    }

    /// Generates the intermediate vehicle-scheduling problem.
    ///
    /// # Panics
    ///
    /// Panics if `stops < 2` or `trips == 0`.
    pub fn generate_schedule(&self, seed: u64) -> ScheduleProblem {
        assert!(self.stops >= 2, "need at least two stops");
        assert!(self.trips > 0, "need at least one trip");
        let mut rng = SeededRng::new(seed);

        // Grid-with-jitter city map: roughly uniform coverage with local
        // irregularity, like real street networks.
        let side = (self.stops as f64).sqrt().ceil() as usize;
        let cell = self.city_size / side as f64;
        let mut stops = Vec::with_capacity(self.stops);
        for i in 0..self.stops {
            let gx = (i % side) as f64;
            let gy = (i / side) as f64;
            stops.push((
                (gx + rng.float(0.15, 0.85)) * cell,
                (gy + rng.float(0.15, 0.85)) * cell,
            ));
        }

        // Sample departure hours from the circadian distribution by
        // rejection over the 04:00–26:00 service window.
        let mut trips = Vec::with_capacity(self.trips);
        let max_w = self.circadian_weight(8.0).max(self.circadian_weight(17.5));
        while trips.len() < self.trips {
            let hour = rng.float(4.0, 26.0);
            let wrapped = if hour >= 24.0 { hour - 24.0 } else { hour };
            if rng.unit() * max_w > self.circadian_weight(wrapped) {
                continue;
            }
            let from_stop = rng.below(self.stops as u64) as u32;
            let mut to_stop = rng.below(self.stops as u64) as u32;
            if to_stop == from_stop {
                to_stop = (to_stop + 1) % self.stops as u32;
            }
            let depart_min = (hour * 60.0) as u32;
            let travel = distance(stops[from_stop as usize], stops[to_stop as usize]);
            // Route service is slower than deadhead driving.
            let duration = (travel * 1.6) as u32 + rng.below(15) as u32 + 5;
            trips.push(Trip {
                from_stop,
                to_stop,
                depart_min,
                arrive_min: depart_min + duration,
            });
        }
        trips.sort_by_key(|t| (t.depart_min, t.from_stop, t.to_stop));
        ScheduleProblem {
            stops,
            trips,
            fleet_cost: self.fleet_cost,
        }
    }

    /// Generates the min-cost-flow formulation of a scheduling problem.
    pub fn generate(&self, seed: u64) -> FlowInstance {
        let problem = self.generate_schedule(seed);
        problem_to_flow(&problem, self.max_layover_min)
    }
}

fn distance(a: (f64, f64), b: (f64, f64)) -> f64 {
    // Manhattan distance: vehicles drive a street grid.
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

/// Converts a scheduling problem into the classic MCF formulation.
///
/// Nodes: `2t` trip nodes (out/in split per trip) plus depot source `2t`
/// and depot sink `2t + 1`. Each trip must receive exactly one vehicle:
/// modelled by supply 1 at its out-node and demand 1 at its in-node, with
/// deadhead/depot arcs carrying vehicles between them.
pub fn problem_to_flow(problem: &ScheduleProblem, max_layover_min: u32) -> FlowInstance {
    let t = problem.trips.len() as u32;
    let source = 2 * t;
    let sink = 2 * t + 1;
    let node_count = 2 * t + 2;
    let mut arcs = Vec::new();
    let mut supplies = vec![0i64; node_count as usize];

    for (i, trip) in problem.trips.iter().enumerate() {
        let i = i as u32;
        // Vehicle leaves trip i's end (out-node 2i) and must arrive at some
        // trip's start (in-node 2j+1) or the depot sink.
        supplies[(2 * i) as usize] = 1;
        supplies[(2 * i + 1) as usize] = -1;
        // Fresh vehicle from depot.
        arcs.push(Arc {
            from: source,
            to: 2 * i + 1,
            capacity: 1,
            cost: problem.fleet_cost,
        });
        // Vehicle retires to depot after the trip.
        arcs.push(Arc {
            from: 2 * i,
            to: sink,
            capacity: 1,
            cost: 0,
        });
        // Deadhead links to compatible later trips.
        for (j, next) in problem.trips.iter().enumerate().skip(i as usize + 1) {
            let deadhead = distance(
                problem.stops[trip.to_stop as usize],
                problem.stops[next.from_stop as usize],
            );
            let ready = trip.arrive_min + deadhead.ceil() as u32;
            if next.depart_min >= ready && next.depart_min - ready <= max_layover_min {
                let idle = next.depart_min - ready;
                arcs.push(Arc {
                    from: 2 * i,
                    to: 2 * j as u32 + 1,
                    capacity: 1,
                    cost: deadhead.ceil() as i64 * 10 + idle as i64,
                });
            }
        }
    }
    // Depot circulation arc so vehicle count balances.
    arcs.push(Arc {
        from: source,
        to: sink,
        capacity: t as i64,
        cost: 0,
    });
    supplies[source as usize] = t as i64;
    supplies[sink as usize] = -(t as i64);

    FlowInstance {
        node_count,
        supplies,
        arcs,
    }
}

/// The three automatically generated Alberta workloads plus, at the tail,
/// nothing else — mirroring the paper's "three new automatically generated
/// workloads" for mcf. The paper's Table II characterizes mcf over 7
/// workloads; our standard set therefore includes 7 seeds.
pub fn alberta_set(scale: Scale) -> Vec<Named<FlowInstance>> {
    let gen = FlowGen::standard(scale);
    (0..7)
        .map(|i| Named::new(format!("alberta.{i}"), gen.generate(0x4C0 + i)))
        .collect()
}

/// The canonical training workload (a mid-density weekday).
pub fn train(scale: Scale) -> Named<FlowInstance> {
    let mut gen = FlowGen::standard(scale);
    gen.trips /= 2;
    Named::new("train", gen.generate(0x7241))
}

/// The canonical reference workload (a dense weekday).
pub fn refrate(scale: Scale) -> Named<FlowInstance> {
    let mut gen = FlowGen::standard(scale);
    gen.trips = gen.trips * 3 / 2;
    Named::new("refrate", gen.generate(0x43F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_instance_is_valid() {
        let gen = FlowGen::standard(Scale::Test);
        for seed in 0..5 {
            let inst = gen.generate(seed);
            inst.validate().expect("instance must validate");
            assert!(inst.node_count > 2);
            assert!(!inst.arcs.is_empty());
        }
    }

    #[test]
    fn every_trip_reachable_from_depot() {
        let gen = FlowGen::standard(Scale::Test);
        let inst = gen.generate(42);
        let t = (inst.node_count - 2) / 2;
        let source = 2 * t;
        for i in 0..t {
            assert!(
                inst.arcs
                    .iter()
                    .any(|a| a.from == source && a.to == 2 * i + 1),
                "trip {i} lacks a depot arc — instance could be infeasible"
            );
        }
    }

    #[test]
    fn deadhead_arcs_respect_time_feasibility() {
        let gen = FlowGen::standard(Scale::Test);
        let problem = gen.generate_schedule(7);
        let inst = problem_to_flow(&problem, gen.max_layover_min);
        let t = problem.trips.len() as u32;
        for arc in &inst.arcs {
            if arc.from < 2 * t && arc.to < 2 * t && arc.from % 2 == 0 && arc.to % 2 == 1 {
                let i = (arc.from / 2) as usize;
                let j = (arc.to / 2) as usize;
                assert!(
                    problem.trips[j].depart_min >= problem.trips[i].arrive_min,
                    "vehicle departs before it arrives"
                );
            }
        }
    }

    #[test]
    fn circadian_curve_has_rush_hour_peaks() {
        let gen = FlowGen::standard(Scale::Test);
        let morning = gen.circadian_weight(8.0);
        let night = gen.circadian_weight(2.0);
        let noon = gen.circadian_weight(12.5);
        assert!(morning > noon, "morning peak above midday");
        assert!(noon > night, "midday above the small hours");
    }

    #[test]
    fn circadian_shapes_departures() {
        let gen = FlowGen::standard(Scale::Train);
        let problem = gen.generate_schedule(9);
        let in_peak = problem
            .trips
            .iter()
            .filter(|t| {
                let h = t.depart_min as f64 / 60.0 % 24.0;
                (7.0..10.0).contains(&h) || (16.0..19.5).contains(&h)
            })
            .count();
        // 5.5 peak hours out of a 22-hour service window would be 25%
        // under a uniform distribution; the circadian bias must push well
        // past that.
        assert!(
            in_peak * 100 / problem.trips.len() > 35,
            "only {in_peak}/{} trips in peaks",
            problem.trips.len()
        );
    }

    #[test]
    fn determinism() {
        let gen = FlowGen::standard(Scale::Test);
        assert_eq!(gen.generate(5), gen.generate(5));
        assert_ne!(gen.generate(5), gen.generate(6));
    }

    #[test]
    fn alberta_set_has_seven_distinct_workloads() {
        let set = alberta_set(Scale::Test);
        assert_eq!(set.len(), 7);
        for w in &set {
            w.workload.validate().unwrap();
        }
        assert_ne!(set[0].workload, set[1].workload);
    }

    #[test]
    fn train_is_smaller_than_refrate() {
        let t = train(Scale::Test);
        let r = refrate(Scale::Test);
        assert!(t.workload.node_count < r.workload.node_count);
    }

    #[test]
    fn trips_sorted_by_departure() {
        let gen = FlowGen::standard(Scale::Test);
        let p = gen.generate_schedule(3);
        for w in p.trips.windows(2) {
            assert!(w[0].depart_min <= w[1].depart_min);
        }
    }
}
