//! A minimal, deterministic property-testing harness.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! `proptest` from crates.io. This crate implements the small slice of the
//! proptest surface the repository's tests use — [`Strategy`], [`any`],
//! `prop::collection::vec`, the [`proptest!`] macro, and the
//! `prop_assert*` macros — on top of a seeded xoshiro generator. The
//! workspace renames it to `proptest` in `[workspace.dependencies]`, so
//! test files keep the upstream idiom and can migrate back to the real
//! crate without edits.
//!
//! Differences from proptest, by design:
//!
//! * **No shrinking.** A failing case reports the seed-derived case index;
//!   reruns are deterministic, so the failure reproduces as-is.
//! * **Deterministic case streams.** Each test's RNG is seeded from the
//!   test's name (plus an optional `QUICKPROP_SEED` environment override),
//!   so runs are bit-reproducible across machines.
//! * **Strategies are samplers.** A [`Strategy`] is just "draw a value
//!   from a distribution"; there is no value tree.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator driving every property test (xoshiro256++
/// seeded through SplitMix64, same construction as
/// `alberta_workloads::SeededRng`, duplicated to keep this crate
/// dependency-free).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        TestRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Creates the generator for a named test: FNV-1a of the test name,
    /// XORed with `QUICKPROP_SEED` when that environment variable is set
    /// (letting CI sweep different case streams without code changes).
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        if let Ok(v) = std::env::var("QUICKPROP_SEED") {
            if let Ok(extra) = v.parse::<u64>() {
                h ^= extra;
            }
        }
        TestRng::new(h)
    }

    /// Raw u64 draw.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = (self.next_u64() as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration. Mirrors `proptest::test_runner::ProptestConfig`
/// in name and in the one field these tests set.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A sampler of values: the unit the [`proptest!`] macro draws arguments
/// from.
pub trait Strategy {
    /// The type of the sampled value.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a whole-domain default strategy, à la `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: a sign-symmetric exponential spread, which is
        // what the numeric properties here actually want to sweep.
        let mag = (rng.unit() * 64.0).exp2() - 1.0;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // ASCII printable: the only char domain the tests exercise.
        (0x20 + rng.below(0x5f) as u8) as char
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The `prop::` namespace mirrored from proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy producing `Vec`s with lengths drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = Strategy::sample(&self.size, rng);
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// A vector of `size.start..size.end` elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeBound>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into().0,
            }
        }

        /// Length specification for [`vec`]: a range or an exact size.
        #[derive(Debug, Clone)]
        pub struct SizeBound(pub(crate) Range<usize>);

        impl From<Range<usize>> for SizeBound {
            fn from(r: Range<usize>) -> Self {
                SizeBound(r)
            }
        }

        impl From<usize> for SizeBound {
            fn from(n: usize) -> Self {
                SizeBound(n..n + 1)
            }
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Asserts a condition inside a property (plain `assert!` here: there is
/// no shrinking machinery to hand the failure to).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { … }`
/// becomes a `#[test]` running the body over a deterministic case stream.
///
/// Supports the `#![proptest_config(…)]` inner attribute and per-test
/// outer attributes (`#[test]`, doc comments) exactly where proptest
/// expects them.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__quickprop_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__quickprop_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __quickprop_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    let __run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                        eprintln!(
                            "quickprop: property {} failed at case {} of {} (deterministic; rerun reproduces it)",
                            stringify!($name), __case, __config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn named_rng_is_deterministic() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        let distinct = (0..32).filter(|_| a.next_u64() != c.next_u64()).count();
        assert!(distinct > 28);
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let u = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&u));
            let f = Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = Strategy::sample(&(-5i32..6), &mut rng);
            assert!((-5..6).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0u8..255, 2..9), &mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn tuple_strategy_samples_componentwise() {
        let mut rng = TestRng::new(3);
        let (a, b, c) = Strategy::sample(&(0u32..4, 10i64..20, 0.0f64..1.0), &mut rng);
        assert!(a < 4);
        assert!((10..20).contains(&b));
        assert!((0.0..1.0).contains(&c));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: arguments bind, bodies run, asserts fire.
        #[test]
        fn macro_binds_arguments(x in 1u64..100, ys in prop::collection::vec(0.0f64..1.0, 1..8)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(!ys.is_empty());
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(x, 0);
        }

        #[test]
        fn macro_supports_any(b in any::<bool>(), byte in any::<u8>()) {
            let _ = (b, byte);
        }
    }
}
