//! Microbenchmarks of the substrate layers: branch predictors, cache
//! hierarchy, the geometric statistics, and the workload generators.

use alberta_profile::{Profiler, SampleConfig};
use alberta_stats::variation::TopDownRatios;
use alberta_stats::TopDownSummary;
use alberta_uarch::{Cache, CacheConfig, MemoryHierarchy, PredictorKind};
use alberta_workloads::{chess, compress, csrc, flow, sudoku, xmlgen, Scale};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor");
    tune(&mut group);
    for kind in [
        PredictorKind::Bimodal { bits: 14 },
        PredictorKind::Gshare { bits: 14 },
        PredictorKind::Tournament { bits: 14 },
    ] {
        let mut p = kind.build();
        group.bench_function(p.name(), |b| {
            b.iter(|| {
                let mut wrong = 0u32;
                for i in 0..100_000u64 {
                    let taken = (i / 3) % 5 != 0;
                    if !p.observe((i % 97) as u32, taken) {
                        wrong += 1;
                    }
                }
                black_box(wrong)
            })
        });
    }
    group.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    tune(&mut group);
    group.bench_function("l1_sequential", |b| {
        let mut cache = Cache::new(CacheConfig::l1d());
        b.iter(|| {
            for i in 0..100_000u64 {
                cache.access((i * 8) % (1 << 14));
            }
            black_box(cache.stats().hits)
        })
    });
    group.bench_function("hierarchy_random", |b| {
        let mut h = MemoryHierarchy::new();
        b.iter(|| {
            let mut addr = 0xDEADu64;
            for _ in 0..100_000 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
                h.access(addr % (1 << 26));
            }
            black_box(h.l2_stats().misses)
        })
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    tune(&mut group);
    let runs: Vec<TopDownRatios> = (0..1000)
        .map(|i| {
            let t = (i as f64) / 1000.0;
            let f = 0.1 + 0.05 * t;
            let b = 0.4 - 0.1 * t;
            let s = 0.1 + 0.02 * t;
            TopDownRatios::new(f, b, s, 1.0 - f - b - s).expect("valid")
        })
        .collect();
    group.bench_function("topdown_summary_1000", |b| {
        b.iter(|| TopDownSummary::from_runs(black_box(&runs)).expect("non-empty"))
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    tune(&mut group);
    group.bench_function("mcf_city_schedule", |b| {
        let gen = flow::FlowGen::standard(Scale::Test);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(gen.generate(seed).arcs.len())
        })
    });
    group.bench_function("gcc_source", |b| {
        let gen = csrc::CSourceGen::standard(Scale::Test);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(gen.generate(seed).source.len())
        })
    });
    group.bench_function("xml_document", |b| {
        let gen = xmlgen::XmlGen::standard(Scale::Test);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(gen.generate(seed).len())
        })
    });
    group.bench_function("sudoku_puzzle", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(sudoku::generate_puzzle(seed, 30).clue_count())
        })
    });
    group.bench_function("chess_workload", |b| {
        let gen = chess::ChessGen::standard(Scale::Test);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(gen.generate(seed).positions.len())
        })
    });
    group.bench_function("xz_mixed_data", |b| {
        let gen = compress::CompressGen {
            size: 64 * 1024,
            kind: compress::DataKind::Mixed {
                noise_fraction: 0.3,
            },
            dict_bytes: 16 * 1024,
        };
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(gen.generate(seed).data.len())
        })
    });
    group.finish();
}

fn bench_profiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiler");
    tune(&mut group);
    for (name, sampling) in [
        ("dense", SampleConfig::default()),
        ("sparse", SampleConfig::sparse()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = Profiler::new(sampling);
                let f = p.register_function("kernel", 512);
                p.enter(f);
                for i in 0..100_000u64 {
                    p.branch((i % 31) as u32, i % 3 == 0);
                    p.load(i * 64 % (1 << 22));
                    p.retire(2);
                }
                p.exit();
                black_box(p.finish().totals.retired_ops)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_predictors,
    bench_caches,
    bench_stats,
    bench_generators,
    bench_profiler
);
criterion_main!(benches);
