//! Table II benchmark: the cost of characterizing each mini-benchmark.
//!
//! One Criterion benchmark per Table II row. Each iteration runs the
//! benchmark's cheapest canonical workload (train) through the full
//! pipeline — instrumented execution, Top-Down analysis — which is the
//! unit of work the `table2` binary repeats over every workload.

use alberta_core::{Profiler, SampleConfig, Suite, TopDownModel};
use alberta_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_table2_rows(c: &mut Criterion) {
    let suite = Suite::new(Scale::Test);
    let model = TopDownModel::reference();
    let mut group = c.benchmark_group("table2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for benchmark in suite.benchmarks() {
        group.bench_function(benchmark.short_name(), |b| {
            b.iter(|| {
                let mut profiler = Profiler::new(SampleConfig::default());
                let out = benchmark
                    .run("train", &mut profiler)
                    .expect("train workload runs");
                let report = model.analyze(&profiler.finish());
                (out.checksum, report.cycles.to_bits())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2_rows);
criterion_main!(benches);
