//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **predictor choice** — does swapping the branch predictor change the
//!   Top-Down analysis cost (and, via the reported ratios, the Table II
//!   row)?
//! * **event sampling rate** — dense vs sparse profiling of the same
//!   benchmark run;
//! * **xz dictionary-vs-file size** — the paper's memoization/dictionary
//!   discovery, as a parameter sweep.

use alberta_benchmarks::minixz;
use alberta_core::{MachineConfig, PredictorKind, Profiler, SampleConfig, Suite, TopDownModel};
use alberta_workloads::compress::{CompressGen, DataKind};
use alberta_workloads::Scale;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
}

/// Ablation (a): characterize xz under three predictors.
fn bench_predictor_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_predictor");
    tune(&mut group);
    for (name, kind) in [
        ("bimodal", PredictorKind::Bimodal { bits: 14 }),
        ("gshare", PredictorKind::Gshare { bits: 14 }),
        ("tournament", PredictorKind::Tournament { bits: 14 }),
    ] {
        let suite =
            Suite::new(Scale::Test).with_model(TopDownModel::new(MachineConfig::default(), kind));
        group.bench_function(name, |b| {
            b.iter(|| {
                let c = suite.characterize("xz").expect("characterization");
                black_box(c.topdown.mu_g_v.to_bits())
            })
        });
    }
    group.finish();
}

/// Ablation (b): dense vs sparse event sampling for the same pipeline.
fn bench_sampling_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sampling");
    tune(&mut group);
    for (name, sampling) in [
        ("dense_1to1", SampleConfig::default()),
        ("sparse_1to4", SampleConfig::sparse()),
    ] {
        let suite = Suite::new(Scale::Test).with_sampling(sampling);
        group.bench_function(name, |b| {
            b.iter(|| {
                let c = suite.characterize("omnetpp").expect("characterization");
                black_box(c.topdown.mu_g_v.to_bits())
            })
        });
    }
    group.finish();
}

/// Ablation (c): the xz dictionary sweep — compression cost as the file
/// size crosses the dictionary size (the paper's 557.xz_r discovery).
fn bench_dictionary_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_xz_dictionary");
    tune(&mut group);
    let dict = 16 * 1024;
    for mult in [1usize, 2, 4, 8] {
        let data = CompressGen {
            size: dict * mult,
            kind: DataKind::Mixed {
                noise_fraction: 0.2,
            },
            dict_bytes: dict,
        }
        .generate(7)
        .data;
        group.bench_with_input(
            BenchmarkId::new("file_over_dict", mult),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut p = Profiler::new(SampleConfig::sparse());
                    let packed = minixz::compress(data, dict, &mut p);
                    let _ = p.finish();
                    black_box(packed.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_predictor_ablation,
    bench_sampling_ablation,
    bench_dictionary_sweep
);
criterion_main!(benches);
