//! FDO pipeline benchmarks: profile collection, profile-guided
//! recompilation, and the measurement run.

use alberta_fdo::programs::{classifier_program, Distribution, InputGen};
use alberta_fdo::FdoPipeline;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fdo(c: &mut Criterion) {
    let source = classifier_program(4, &[1, 4, 20, 48]);
    let pipeline = FdoPipeline::new(&source).expect("program compiles");
    let train = InputGen {
        len: 96,
        distribution: Distribution::SkewLow,
    }
    .generate(1);
    let eval = InputGen {
        len: 96,
        distribution: Distribution::Uniform,
    }
    .generate(2);

    let mut group = c.benchmark_group("fdo");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("baseline_measure", |b| {
        b.iter(|| black_box(pipeline.measure_baseline(&eval).expect("runs").cycles))
    });
    group.bench_function("collect_profile", |b| {
        b.iter(|| {
            black_box(
                pipeline
                    .collect_profile(std::slice::from_ref(&train))
                    .expect("runs")
                    .executed_ops(),
            )
        })
    });
    group.bench_function("full_fdo_cycle", |b| {
        b.iter(|| {
            black_box(
                pipeline
                    .measure_fdo(std::slice::from_ref(&train), &eval)
                    .expect("runs")
                    .cycles,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fdo);
criterion_main!(benches);
