//! Replay-engine microbenchmark: the scalar reference engine vs the
//! batched struct-of-arrays engine over the same synthetic trace.
//!
//! This is the wall-clock view of the speed gate (`timing
//! --speed-only`); the equivalence assertion lives in
//! [`alberta_bench::speed::measure`] and in the shadow-model tests.

use alberta_bench::speed::synthetic_profile;
use alberta_profile::EventChunks;
use alberta_uarch::{MachineConfig, PredictorKind, ReplayState, TopDownModel};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

const EVENTS: usize = 1 << 18;

fn bench_replay(c: &mut Criterion) {
    let profile = synthetic_profile(EVENTS);
    let cfg = MachineConfig::default();
    let predictor = PredictorKind::Gshare { bits: 12 };
    let model = TopDownModel::new(cfg, predictor);
    let fn_base = model.code_layout(&profile);
    let probe_counts = model.probe_table(&profile);

    let mut group = c.benchmark_group("replay");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut state = ReplayState::new(&cfg, predictor);
            black_box(state.replay(&cfg, &profile, profile.trace.events(), &fn_base))
        })
    });

    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut state = ReplayState::new(&cfg, predictor);
            black_box(state.replay_batched(
                &profile.chunks,
                (0, profile.chunks.len()),
                &probe_counts,
                &fn_base,
            ))
        })
    });

    // The capture-time transposition, for context: paid once per run at
    // `Profiler::finish`, not on the replay path.
    group.bench_function("transpose", |b| {
        b.iter(|| black_box(EventChunks::from_trace(&profile.trace)))
    });

    // Per-kind kernels in isolation, for attributing batched time.
    let slices = profile.chunks.kind_ranges(0, profile.chunks.len());
    group.bench_function("kernel_branches", |b| {
        b.iter(|| {
            let mut p = predictor.build();
            black_box(p.observe_batch(slices.branch_sites, slices.branch_takens))
        })
    });
    group.bench_function("kernel_memory", |b| {
        b.iter(|| {
            let mut h = alberta_uarch::MemoryHierarchy::with_configs(
                cfg.l1d,
                cfg.l2,
                cfg.l3,
                cfg.dtlb_entries,
                cfg.dram,
            );
            black_box(h.access_many(slices.mem_addrs))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
