//! Figure benchmarks: the cost of regenerating Figure 1 (Top-Down stacks
//! for xalancbmk vs xz) and Figure 2 (method-coverage variation for
//! deepsjeng vs xz) from scratch.

use alberta_core::figures::{fig1_series, fig2_series};
use alberta_core::Suite;
use alberta_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fig1(c: &mut Criterion) {
    let suite = Suite::new(Scale::Test);
    let mut group = c.benchmark_group("fig1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for name in ["xalancbmk", "xz"] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let chara = suite.characterize(name).expect("characterization");
                let series = fig1_series(&chara);
                (series.stacks.len(), series.visual_variation().to_bits())
            })
        });
    }
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let suite = Suite::new(Scale::Test);
    let mut group = c.benchmark_group("fig2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    // Figure 2's left panel is deepsjeng; its full characterization is the
    // most expensive in the suite, so the bench uses the train workload
    // pair via xz (right panel) plus a reduced deepsjeng series.
    group.bench_function("xz", |b| {
        b.iter(|| {
            let chara = suite.characterize("xz").expect("characterization");
            let series = fig2_series(&chara);
            series.method_ranges().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1, bench_fig2);
criterion_main!(benches);
