//! CLI contract tests for the bench binaries: exit codes must follow
//! the repo convention (0 success, 1 regression/gate failure, 2 usage
//! error) so CI pipelines can branch on them.

use alberta_report::{SuiteReport, SCHEMA_VERSION};
use alberta_workloads::Scale;
use std::path::PathBuf;
use std::process::Command;

fn bench_diff() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench-diff"))
}

fn empty_report(dir: &std::path::Path, name: &str) -> PathBuf {
    let report = SuiteReport {
        schema_version: SCHEMA_VERSION,
        scale: Scale::Test,
        benchmarks: Vec::new(),
    };
    let path = dir.join(name);
    alberta_report::save(&report, &path).expect("write report");
    path
}

/// `--threshold` must be validated before any file is touched: a
/// malformed value is a usage error (exit 2) even with nonexistent
/// report paths.
#[test]
fn bench_diff_rejects_malformed_thresholds_with_exit_2() {
    for bad in ["-5", "NaN", "inf", "-inf", "five"] {
        let status = bench_diff()
            .args(["a.json", "b.json", "--threshold", bad])
            .status()
            .expect("spawn bench-diff");
        assert_eq!(
            status.code(),
            Some(2),
            "--threshold {bad:?} must exit 2 (usage error)"
        );
    }
}

/// A missing threshold value is also a usage error, not a panic.
#[test]
fn bench_diff_rejects_missing_threshold_value_with_exit_2() {
    let status = bench_diff()
        .args(["a.json", "b.json", "--threshold"])
        .status()
        .expect("spawn bench-diff");
    assert_eq!(status.code(), Some(2));
}

/// Valid thresholds proceed to the diff: comparing a report against
/// itself finds no regression and exits 0.
#[test]
fn bench_diff_accepts_valid_threshold_and_clean_diff_exits_0() {
    let dir = std::env::temp_dir().join(format!("bench-diff-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let report = empty_report(&dir, "same.json");
    let status = bench_diff()
        .args([&report, &report])
        .args(["--threshold", "2.5"])
        .status()
        .expect("spawn bench-diff");
    assert_eq!(status.code(), Some(0), "identical reports must not regress");
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_report() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench-report"))
}

/// Worker-count and executor flags are validated before any sweep
/// starts: `--jobs 0` used to silently collapse to serial and must now
/// be a usage error, in every binary that takes the flag.
#[test]
fn bench_report_rejects_bad_exec_flags_with_exit_2() {
    let cases: &[&[&str]] = &[
        &["test", "--jobs", "0"],
        &["test", "--jobs", "many"],
        &["test", "--exec", "fibers"],
        &["test", "--exec", "serial", "--jobs", "4"],
        &["test", "--chaos", "0"],
        &["test", "--chaos", "some"],
        &["test", "--chaos-seed", "7"],
    ];
    for args in cases {
        let status = bench_report()
            .args(*args)
            .status()
            .expect("spawn bench-report");
        assert_eq!(status.code(), Some(2), "args {args:?} must exit 2");
    }
}

/// A malformed `ALBERTA_JOBS` environment is reported with the
/// offending value as a usage error, not a panic mid-sweep.
#[test]
fn bench_report_rejects_malformed_jobs_env_with_exit_2() {
    for bad in ["0", "-3", "lots"] {
        let output = bench_report()
            .args(["test"])
            .env("ALBERTA_JOBS", bad)
            .output()
            .expect("spawn bench-report");
        assert_eq!(
            output.status.code(),
            Some(2),
            "ALBERTA_JOBS={bad:?} must exit 2"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(bad),
            "the error must name the offending value, got: {stderr}"
        );
    }
}

/// Wrong operand counts are usage errors.
#[test]
fn bench_diff_rejects_wrong_operand_count_with_exit_2() {
    for operands in [
        &[][..],
        &["only.json"][..],
        &["a.json", "b.json", "c.json"][..],
    ] {
        let status = bench_diff()
            .args(operands)
            .status()
            .expect("spawn bench-diff");
        assert_eq!(status.code(), Some(2), "operands {operands:?}");
    }
}
