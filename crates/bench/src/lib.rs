//! Shared helpers for the experiment-regeneration binaries and benches.

use alberta_workloads::Scale;

/// Parses the first non-flag CLI argument as a scale (`test`, `train`,
/// `ref`); defaults to `Scale::Test` so every binary completes in
/// seconds.
pub fn scale_from_args() -> Scale {
    match std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .as_deref()
    {
        Some("train") => Scale::Train,
        Some("ref") => Scale::Ref,
        _ => Scale::Test,
    }
}

/// True when the named `--flag` appears anywhere on the command line.
pub fn flag_from_args(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}
