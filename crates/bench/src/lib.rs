//! Shared helpers for the experiment-regeneration binaries and benches.
//!
//! Argument handling is strict: an unrecognized scale or a malformed
//! `--jobs` value terminates the binary with an error listing the valid
//! choices. Silently mapping a typo (`Ref`, `tset`) to `Scale::Test`
//! used to waste an entire sweep at the wrong scale.

use alberta_core::{ExecPolicy, PhaseSampling, SamplingPolicy};
use alberta_workloads::Scale;

pub mod speed;

// Re-exported so every binary can hook the hidden worker mode with one
// `alberta_bench::maybe_worker()` call at the top of `main` — under
// `--exec processes` the supervisor re-executes the *current* binary,
// so each binary must be able to come up as a worker.
pub use alberta_core::maybe_worker;

/// Prints a usage error and terminates with exit code 2 — the code the
/// binaries reserve for "the invocation was wrong" as opposed to "the
/// comparison found a regression" (1).
pub fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Flags that consume the next argument as their value. Keep in sync
/// with the binaries: a flag missing from this list would leak its
/// value into the positionals and be misread as a scale.
const VALUE_FLAGS: &[&str] = &[
    "--jobs",
    "--exec",
    "--chaos",
    "--chaos-seed",
    "--out",
    "--threshold",
    "--out-dir",
    "--top-k",
    "--lanes",
    "--sample-interval",
    "--sample-k",
    "--sample-seed",
    "--bound",
    "--speed-out",
    "--listen",
    "--cache-dir",
    "--hosts",
    "--host-exec",
    "--host-jobs",
    "--addr",
    "--requests",
    "--clients",
    "--seed",
    "--latency-out",
    "--sweep-out",
    "--deterministic-out",
    "--volatile-out",
    "--timeline",
    "--l3-size",
    "--l3-ways",
    "--l3-line",
    "--dram-banks",
    "--dram-row",
];

/// The positional (non-flag) arguments, with flag *values* excluded:
/// `--jobs 4` contributes neither token.
fn positional_args() -> Vec<String> {
    let mut positionals = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if VALUE_FLAGS.contains(&arg.as_str()) {
            // The value belongs to the flag; value_from_args consumes it.
            let _ = args.next();
        } else if !arg.starts_with("--") {
            positionals.push(arg);
        }
    }
    positionals
}

/// The positional arguments after the optional leading scale — the
/// file operands of `bench-diff BASE NEW`.
pub fn operands_from_args() -> Vec<String> {
    positional_args()
}

/// The value of `--flag VALUE` / `--flag=VALUE`, if the flag appears.
/// A flag present without a value terminates with a usage error.
pub fn value_from_args(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            return Some(args.next().unwrap_or_else(|| {
                usage_error(&format!("{flag} requires a value, e.g. {flag} <value>"))
            }));
        }
        if let Some(value) = arg.strip_prefix(&format!("{flag}=")) {
            return Some(value.to_owned());
        }
    }
    None
}

/// Parses the first positional CLI argument as a scale (`test`, `train`,
/// `ref`); defaults to [`Scale::Test`] when absent so every binary
/// completes in seconds. An unrecognized scale terminates with an error
/// listing the valid scales — never a silent fall-back to test scale.
pub fn scale_from_args() -> Scale {
    match positional_args().first().map(String::as_str) {
        None => Scale::Test,
        Some("test") => Scale::Test,
        Some("train") => Scale::Train,
        Some("ref") => Scale::Ref,
        Some(other) => usage_error(&format!(
            "unknown scale {other:?}; valid scales are: test, train, ref"
        )),
    }
}

/// Parses `--exec serial|threads|processes` and `--jobs N` into an
/// execution policy, falling back to the `ALBERTA_JOBS` environment
/// variable and then to serial. A malformed or zero worker count
/// terminates with a usage error — `--jobs 0` used to silently collapse
/// to serial, masking the typo. Call this *before*
/// [`Suite::new`](alberta_core::Suite::new) so a malformed environment
/// surfaces as a usage error rather than a panic.
pub fn exec_from_args() -> ExecPolicy {
    // Validate the environment up front even when --jobs overrides it —
    // Suite::new consults ALBERTA_JOBS too and panics on garbage.
    let env_policy = match ExecPolicy::from_env() {
        Ok(policy) => policy,
        Err(message) => usage_error(&message),
    };
    let jobs = value_from_args("--jobs").map(|value| match value.parse::<usize>() {
        Ok(0) => usage_error(&format!(
            "--jobs expects a positive worker count, got {value:?} \
             (zero workers cannot execute anything)"
        )),
        Ok(n) => n,
        Err(_) => usage_error(&format!(
            "--jobs expects a positive worker count, got {value:?}"
        )),
    });
    match value_from_args("--exec").as_deref() {
        None => match jobs {
            Some(n) => ExecPolicy::with_jobs(n),
            None => env_policy.unwrap_or_default(),
        },
        Some("serial") => {
            if let Some(n) = jobs.filter(|&n| n > 1) {
                usage_error(&format!(
                    "--exec serial runs one task at a time; --jobs {n} conflicts \
                     (use --exec threads or --exec processes for parallelism)"
                ));
            }
            ExecPolicy::serial()
        }
        Some("threads") => match jobs.or(env_policy.map(|p| p.jobs())) {
            Some(n) => ExecPolicy::with_jobs(n),
            None => ExecPolicy::parallel(),
        },
        Some("processes") => match jobs.or(env_policy.map(|p| p.jobs())) {
            Some(n) => ExecPolicy::processes_with_jobs(n),
            None => ExecPolicy::processes(),
        },
        Some(other) => usage_error(&format!(
            "unknown execution policy {other:?}; valid policies are: serial, threads, processes"
        )),
    }
}

/// Parses the chaos-injection flags of `bench-report`: `--chaos N`
/// scatters `N` seeded process faults (worker crashes, hangs, corrupt
/// results) over the sweep, `--chaos-seed SEED` picks the scatter
/// (default 0). Returns `None` when chaos is not requested; malformed
/// values, or `--chaos-seed` without `--chaos`, terminate with a usage
/// error.
pub fn chaos_from_args() -> Option<(usize, u64)> {
    let count = value_from_args("--chaos");
    let seed = value_from_args("--chaos-seed");
    let Some(count) = count else {
        if seed.is_some() {
            usage_error("--chaos-seed without --chaos N has nothing to seed");
        }
        return None;
    };
    let count = match count.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => usage_error(&format!(
            "--chaos expects a positive fault count, got {count:?}"
        )),
    };
    let seed = match seed {
        None => 0,
        Some(value) => match value.parse::<u64>() {
            Ok(n) => n,
            Err(_) => usage_error(&format!("--chaos-seed expects an integer, got {value:?}")),
        },
    };
    Some((count, seed))
}

/// True when the named `--flag` appears anywhere on the command line.
pub fn flag_from_args(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

/// Parses the phase-sampling flags into a [`SamplingPolicy`]. `--sample`
/// enables phase-sampled measurement with default parameters;
/// `--sample-interval OPS`, `--sample-k N`, and `--sample-seed SEED`
/// override individual parameters (each implies `--sample`). With none
/// of the flags present, every run is measured in full. Malformed or
/// zero values terminate with a usage error (exit 2).
pub fn sampling_from_args() -> SamplingPolicy {
    let interval = value_from_args("--sample-interval");
    let k = value_from_args("--sample-k");
    let seed = value_from_args("--sample-seed");
    if !flag_from_args("--sample") && interval.is_none() && k.is_none() && seed.is_none() {
        return SamplingPolicy::Full;
    }
    let mut config = PhaseSampling::default();
    if let Some(value) = interval {
        config.interval_work = match value.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => usage_error(&format!(
                "--sample-interval expects a positive retired-op count, got {value:?}"
            )),
        };
    }
    if let Some(value) = k {
        config.k = match value.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => usage_error(&format!(
                "--sample-k expects a positive cluster count, got {value:?}"
            )),
        };
    }
    if let Some(value) = seed {
        config.seed = match value.parse::<u64>() {
            Ok(n) => n,
            _ => usage_error(&format!("--sample-seed expects an integer, got {value:?}")),
        };
    }
    SamplingPolicy::Phase(config)
}
