//! Shared helpers for the experiment-regeneration binaries and benches.

use alberta_workloads::Scale;

/// Parses the first CLI argument as a scale (`test`, `train`, `ref`);
/// defaults to `Scale::Test` so every binary completes in seconds.
pub fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("train") => Scale::Train,
        Some("ref") => Scale::Ref,
        _ => Scale::Test,
    }
}
