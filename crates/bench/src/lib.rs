//! Shared helpers for the experiment-regeneration binaries and benches.
//!
//! Argument handling is strict: an unrecognized scale or a malformed
//! `--jobs` value terminates the binary with an error listing the valid
//! choices. Silently mapping a typo (`Ref`, `tset`) to `Scale::Test`
//! used to waste an entire sweep at the wrong scale.

use alberta_core::{ExecPolicy, PhaseSampling, SamplingPolicy};
use alberta_workloads::Scale;

/// Prints a usage error and terminates with exit code 2 — the code the
/// binaries reserve for "the invocation was wrong" as opposed to "the
/// comparison found a regression" (1).
pub fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Flags that consume the next argument as their value. Keep in sync
/// with the binaries: a flag missing from this list would leak its
/// value into the positionals and be misread as a scale.
const VALUE_FLAGS: &[&str] = &[
    "--jobs",
    "--out",
    "--threshold",
    "--out-dir",
    "--top-k",
    "--lanes",
    "--sample-interval",
    "--sample-k",
    "--sample-seed",
    "--bound",
];

/// The positional (non-flag) arguments, with flag *values* excluded:
/// `--jobs 4` contributes neither token.
fn positional_args() -> Vec<String> {
    let mut positionals = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if VALUE_FLAGS.contains(&arg.as_str()) {
            // The value belongs to the flag; value_from_args consumes it.
            let _ = args.next();
        } else if !arg.starts_with("--") {
            positionals.push(arg);
        }
    }
    positionals
}

/// The positional arguments after the optional leading scale — the
/// file operands of `bench-diff BASE NEW`.
pub fn operands_from_args() -> Vec<String> {
    positional_args()
}

/// The value of `--flag VALUE` / `--flag=VALUE`, if the flag appears.
/// A flag present without a value terminates with a usage error.
pub fn value_from_args(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            return Some(args.next().unwrap_or_else(|| {
                usage_error(&format!("{flag} requires a value, e.g. {flag} <value>"))
            }));
        }
        if let Some(value) = arg.strip_prefix(&format!("{flag}=")) {
            return Some(value.to_owned());
        }
    }
    None
}

/// Parses the first positional CLI argument as a scale (`test`, `train`,
/// `ref`); defaults to [`Scale::Test`] when absent so every binary
/// completes in seconds. An unrecognized scale terminates with an error
/// listing the valid scales — never a silent fall-back to test scale.
pub fn scale_from_args() -> Scale {
    match positional_args().first().map(String::as_str) {
        None => Scale::Test,
        Some("test") => Scale::Test,
        Some("train") => Scale::Train,
        Some("ref") => Scale::Ref,
        Some(other) => usage_error(&format!(
            "unknown scale {other:?}; valid scales are: test, train, ref"
        )),
    }
}

/// Parses `--jobs N` / `--jobs=N` into an execution policy, falling back
/// to the `ALBERTA_JOBS` environment variable and then to serial. A
/// malformed count terminates with an error. Call this *before*
/// [`Suite::new`](alberta_core::Suite::new) so a malformed environment
/// surfaces as a usage error rather than a panic.
pub fn exec_from_args() -> ExecPolicy {
    // Validate the environment up front even when --jobs overrides it —
    // Suite::new consults ALBERTA_JOBS too and panics on garbage.
    let env_policy = match ExecPolicy::from_env() {
        Ok(policy) => policy,
        Err(message) => usage_error(&message),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value =
            if arg == "--jobs" {
                Some(args.next().unwrap_or_else(|| {
                    usage_error("--jobs requires a thread count, e.g. --jobs 4")
                }))
            } else {
                arg.strip_prefix("--jobs=").map(str::to_owned)
            };
        if let Some(value) = value {
            return match value.parse::<usize>() {
                Ok(n) => ExecPolicy::with_jobs(n),
                Err(_) => usage_error(&format!("--jobs expects a thread count, got {value:?}")),
            };
        }
    }
    env_policy.unwrap_or_default()
}

/// True when the named `--flag` appears anywhere on the command line.
pub fn flag_from_args(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

/// Parses the phase-sampling flags into a [`SamplingPolicy`]. `--sample`
/// enables phase-sampled measurement with default parameters;
/// `--sample-interval OPS`, `--sample-k N`, and `--sample-seed SEED`
/// override individual parameters (each implies `--sample`). With none
/// of the flags present, every run is measured in full. Malformed or
/// zero values terminate with a usage error (exit 2).
pub fn sampling_from_args() -> SamplingPolicy {
    let interval = value_from_args("--sample-interval");
    let k = value_from_args("--sample-k");
    let seed = value_from_args("--sample-seed");
    if !flag_from_args("--sample") && interval.is_none() && k.is_none() && seed.is_none() {
        return SamplingPolicy::Full;
    }
    let mut config = PhaseSampling::default();
    if let Some(value) = interval {
        config.interval_work = match value.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => usage_error(&format!(
                "--sample-interval expects a positive retired-op count, got {value:?}"
            )),
        };
    }
    if let Some(value) = k {
        config.k = match value.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => usage_error(&format!(
                "--sample-k expects a positive cluster count, got {value:?}"
            )),
        };
    }
    if let Some(value) = seed {
        config.seed = match value.parse::<u64>() {
            Ok(n) => n,
            _ => usage_error(&format!("--sample-seed expects an integer, got {value:?}")),
        };
    }
    SamplingPolicy::Phase(config)
}
