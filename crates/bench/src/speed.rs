//! Self-hosted replay speed gate: scalar vs batched detailed-measurement
//! engine on one synthetic profile.
//!
//! The detailed-measurement rewrite (batched struct-of-arrays replay in
//! `alberta-uarch`) is justified purely by throughput, so the repo
//! tracks its own speed the same way it tracks its own modelled cycles:
//! `timing --speed-only --speed-out SPEED_test.json` measures
//! replayed-events-per-second for both engines on a deterministic
//! synthetic trace and emits a small canonical JSON document committed
//! next to `BENCH_test.json`. CI regenerates and *tracks* the figure
//! (uploads it as an artifact) without gating on it — wall-clock is
//! machine-dependent — while the correctness half of the contract is a
//! hard assertion here: both engines must produce identical
//! [`ReplayCounts`] before any timing is reported.

use alberta_core::json::Value;
use alberta_profile::{Profile, Profiler, SampleConfig};
use alberta_uarch::{MachineConfig, PredictorKind, ReplayCounts, ReplayState, TopDownModel};
use std::time::Instant;

/// Schema version of the `SPEED_*.json` document.
pub const SPEED_SCHEMA_VERSION: u64 = 1;

/// Deterministic splitmix64 — the repo's standard seeded-stream helper,
/// re-rolled locally to keep the bench crate's lib dependency-light.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds a deterministic synthetic profile whose trace mirrors what the
/// mini-benchmarks actually produce: mostly-biased branches over a
/// modest site working set, memory accesses dominated by an L1-resident
/// hot set with streaming and cold tails, and occasional calls — with
/// the *interleaving* of kinds data-dependent, which is exactly the
/// pattern that defeats the host branch predictor in the scalar
/// engine's per-event `match`. `target_events` approximates the
/// retained trace length; the config retains every event (no dilution,
/// no decimation), so the trace is the full event stream.
pub fn synthetic_profile(target_events: usize) -> Profile {
    let config = SampleConfig {
        trace_capacity: (2 * target_events).next_power_of_two(),
        ..SampleConfig::default()
    };
    let mut prof = Profiler::new(config);
    let fns: Vec<_> = (0..32)
        .map(|i| prof.register_function(&format!("fn{i:02}"), 64 + 96 * i as u32))
        .collect();
    let mut rng = 0x5eed_u64;
    prof.enter(fns[0]);
    // Each loop iteration emits ~3.8 trace events on average, with the
    // exact kind sequence decided by the random stream.
    let iterations = target_events / 4;
    for i in 0..iterations {
        let r = splitmix(&mut rng);
        // A loop-exit-style branch (heavily taken) over many sites.
        prof.branch((r % 509) as u32, !r.is_multiple_of(16));
        // Hot data: sequential fields of a record in a 4 KiB structure
        // (L1-resident, consecutive accesses share a line). The region
        // sits away from the streaming buffer so the combined working
        // set stays within L1 associativity, as a tuned kernel's would.
        let record = (0x10_0000 + (r % (1 << 12))) & !63;
        prof.load(record);
        prof.load(record + 8);
        prof.load(record + 24);
        if r & 3 != 0 {
            // A patterned data-dependent branch plus a streaming access
            // over a 16 KiB circular buffer.
            prof.branch((i % 131) as u32, i % 3 != 0);
            prof.load((i as u64 * 64) % (1 << 14));
        }
        if r & 31 == 0 {
            // Cold tail (~3% of iterations): scattered stores and far
            // loads that miss deep into the hierarchy.
            prof.store(r % (1 << 20));
            prof.load(0x4000_0000 + (r >> 32) % (1 << 14));
        }
        prof.retire(6);
        if r & 15 == 0 {
            let callee = fns[(r % 31 + 1) as usize];
            prof.enter(callee);
            prof.retire(2);
            prof.exit();
        }
    }
    prof.exit();
    prof.finish()
}

/// The detailed-measurement engine as it stood before the batched
/// rewrite, kept in the pre-rewrite style so the speed gate measures
/// what the rewrite actually bought: a per-event `match` over the
/// interleaved stream, a virtual predictor call per branch, a
/// timestamp-LRU cache with a global clock and per-access statistics
/// folds, and a per-call fetch-probe length computation. When the
/// memory model grew an L3 and a DRAM row-buffer layer, this engine
/// was extended with the same levels in the same idiom (an extra
/// stamp-LRU cache plus a scalar open-row table) so it keeps doubling
/// as a third independent reference in the equivalence assertion —
/// three engines, one set of counts.
mod baseline {
    use alberta_profile::{Event, Profile};
    use alberta_uarch::{CacheConfig, DramConfig, MachineConfig, PredictorKind, ReplayCounts};

    /// Set-associative cache with timestamp-LRU (the pre-rewrite
    /// implementation).
    struct StampCache {
        tags: Vec<u64>,
        stamps: Vec<u64>,
        clock: u64,
        set_mask: u64,
        line_shift: u32,
        ways: usize,
        line_bytes: u64,
        hits: u64,
        misses: u64,
    }

    impl StampCache {
        fn new(config: CacheConfig) -> Self {
            let sets = config.size_bytes / (config.line_bytes * config.ways);
            StampCache {
                tags: vec![u64::MAX; (sets * config.ways) as usize],
                stamps: vec![0; (sets * config.ways) as usize],
                clock: 0,
                set_mask: sets - 1,
                line_shift: config.line_bytes.trailing_zeros(),
                ways: config.ways as usize,
                line_bytes: config.line_bytes,
                hits: 0,
                misses: 0,
            }
        }

        fn access(&mut self, addr: u64) -> bool {
            self.clock += 1;
            let line = addr >> self.line_shift;
            let set = (line & self.set_mask) as usize;
            let base = set * self.ways;
            let mut victim = base;
            let mut oldest = u64::MAX;
            for i in base..base + self.ways {
                if self.tags[i] == line {
                    self.stamps[i] = self.clock;
                    self.hits += 1;
                    return true;
                }
                if self.stamps[i] < oldest {
                    oldest = self.stamps[i];
                    victim = i;
                }
            }
            self.tags[victim] = line;
            self.stamps[victim] = self.clock;
            self.misses += 1;
            false
        }
    }

    /// Open-page DRAM replica: one open row per bank, scalar lookups.
    struct StampDram {
        open_rows: Vec<u64>,
        row_shift: u32,
        bank_mask: u64,
    }

    impl StampDram {
        fn new(config: DramConfig) -> Self {
            StampDram {
                open_rows: vec![u64::MAX; config.banks as usize],
                row_shift: config.row_bytes.trailing_zeros(),
                bank_mask: config.banks - 1,
            }
        }

        fn access(&mut self, addr: u64) -> bool {
            let row = addr >> self.row_shift;
            let bank = (row & self.bank_mask) as usize;
            let hit = self.open_rows[bank] == row;
            self.open_rows[bank] = row;
            hit
        }
    }

    pub(super) struct BaselineState {
        predictor: Box<dyn alberta_uarch::BranchPredictor>,
        dtlb: StampCache,
        l1d: StampCache,
        l2: StampCache,
        l3: StampCache,
        dram: StampDram,
        icache: StampCache,
    }

    impl BaselineState {
        pub(super) fn new(cfg: &MachineConfig, predictor: PredictorKind) -> Self {
            BaselineState {
                predictor: predictor.build(),
                dtlb: StampCache::new(CacheConfig {
                    size_bytes: cfg.dtlb_entries * 4096,
                    line_bytes: 4096,
                    ways: 4,
                }),
                l1d: StampCache::new(cfg.l1d),
                l2: StampCache::new(cfg.l2),
                l3: StampCache::new(cfg.l3),
                dram: StampDram::new(cfg.dram),
                icache: StampCache::new(cfg.icache),
            }
        }

        pub(super) fn replay(
            &mut self,
            cfg: &MachineConfig,
            profile: &Profile,
            events: &[Event],
            fn_base: &[u64],
        ) -> ReplayCounts {
            let line = self.icache.line_bytes;
            let mut counts = ReplayCounts::default();
            for event in events {
                match *event {
                    Event::Branch { site, taken } => {
                        counts.branches += 1;
                        if !self.predictor.observe(site, taken) {
                            counts.mispredicts += 1;
                        }
                    }
                    Event::Load { addr } | Event::Store { addr } => {
                        counts.mem += 1;
                        let tlb_hit = self.dtlb.access(addr);
                        if !self.l1d.access(addr) {
                            if self.l2.access(addr) {
                                counts.l2_hits += 1;
                            } else if self.l3.access(addr) {
                                counts.l3_hits += 1;
                            } else {
                                counts.dram_accesses += 1;
                                counts.row_hits += u64::from(self.dram.access(addr));
                            }
                        }
                        counts.tlb_misses += u64::from(!tlb_hit);
                    }
                    Event::Call { callee } => {
                        counts.calls += 1;
                        let base = fn_base[callee.0 as usize];
                        let len = (profile.functions[callee.0 as usize].code_bytes as u64)
                            .min(cfg.fetch_probe_bytes)
                            .max(1);
                        let mut offset = 0;
                        while offset < len {
                            counts.fetch_probes += 1;
                            if !self.icache.access(base + offset) {
                                counts.icache_misses += 1;
                            }
                            offset += line;
                        }
                    }
                    Event::Return => {}
                }
            }
            counts
        }
    }
}

/// One engine-vs-engine measurement, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedReport {
    /// Events in the replayed trace (branches + memory + calls).
    pub events: u64,
    /// Timed repetitions per engine.
    pub reps: u32,
    /// Shipped batched engine throughput in replayed events per second.
    /// The chunk transposition is not included: the capture layer builds
    /// the chunks once at `Profiler::finish`, so the production
    /// `estimate` path never pays it either.
    pub replay_events_per_sec: u64,
    /// Live scalar shadow engine ([`ReplayState::replay`]) throughput.
    pub scalar_events_per_sec: u64,
    /// Pre-rewrite engine throughput (frozen stamp-LRU + per-event
    /// dispatch replica).
    pub baseline_events_per_sec: u64,
    /// `replay / baseline` — what the rewrite bought end to end.
    pub speedup_vs_baseline: f64,
    /// `replay / scalar` — batching alone, on today's shared substrate.
    pub speedup_vs_scalar: f64,
}

impl SpeedReport {
    /// Canonical JSON rendering (same layer as the suite reports).
    pub fn to_json(&self) -> String {
        let round2 = |x: f64| (x * 100.0).round() / 100.0;
        Value::Object(vec![
            (
                "schema_version".to_owned(),
                Value::UInt(SPEED_SCHEMA_VERSION),
            ),
            ("events".to_owned(), Value::UInt(self.events)),
            ("reps".to_owned(), Value::UInt(self.reps as u64)),
            (
                "replay_events_per_sec".to_owned(),
                Value::UInt(self.replay_events_per_sec),
            ),
            (
                "scalar_events_per_sec".to_owned(),
                Value::UInt(self.scalar_events_per_sec),
            ),
            (
                "baseline_events_per_sec".to_owned(),
                Value::UInt(self.baseline_events_per_sec),
            ),
            (
                "speedup_vs_baseline".to_owned(),
                Value::Float(round2(self.speedup_vs_baseline)),
            ),
            (
                "speedup_vs_scalar".to_owned(),
                Value::Float(round2(self.speedup_vs_scalar)),
            ),
        ])
        .render()
    }
}

/// Measures all three replay engines over `reps` fresh-state replays of
/// a `target_events`-event synthetic trace.
///
/// Panics if any engine disagrees on any [`ReplayCounts`] field — the
/// speed figures are meaningless unless the engines are equivalent.
pub fn measure(target_events: usize, reps: u32) -> SpeedReport {
    let profile = synthetic_profile(target_events);
    let cfg = MachineConfig::default();
    let predictor = PredictorKind::Gshare { bits: 12 };
    let model = TopDownModel::new(cfg, predictor);
    let fn_base = model.code_layout(&profile);
    let probe_counts = model.probe_table(&profile);
    let events = profile.trace.events();

    let baseline_run = || {
        let mut state = baseline::BaselineState::new(&cfg, predictor);
        state.replay(&cfg, &profile, events, &fn_base)
    };
    let scalar_run = || {
        let mut state = ReplayState::new(&cfg, predictor);
        state.replay(&cfg, &profile, events, &fn_base)
    };
    let batched_run = || {
        let mut state = ReplayState::new(&cfg, predictor);
        state.replay_batched(
            &profile.chunks,
            (0, profile.chunks.len()),
            &probe_counts,
            &fn_base,
        )
    };

    // Correctness first: identical counts or no speed figure at all.
    let baseline_counts = baseline_run();
    let scalar_counts = scalar_run();
    let batched_counts = batched_run();
    assert_eq!(
        scalar_counts, baseline_counts,
        "scalar shadow engine diverged from the pre-rewrite baseline"
    );
    assert_eq!(
        scalar_counts, batched_counts,
        "batched replay diverged from the scalar reference engine"
    );

    let time = |run: &dyn Fn() -> ReplayCounts| {
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(run());
        }
        start.elapsed().as_secs_f64()
    };
    // Warm each path once (counted above), then time.
    let replayed = scalar_counts.events() * reps as u64;
    let per_sec = |secs: f64| (replayed as f64 / secs.max(f64::EPSILON)) as u64;
    let baseline_events_per_sec = per_sec(time(&baseline_run));
    let scalar_events_per_sec = per_sec(time(&scalar_run));
    let replay_events_per_sec = per_sec(time(&batched_run));
    SpeedReport {
        events: scalar_counts.events(),
        reps,
        replay_events_per_sec,
        scalar_events_per_sec,
        baseline_events_per_sec,
        speedup_vs_baseline: replay_events_per_sec as f64 / baseline_events_per_sec.max(1) as f64,
        speedup_vs_scalar: replay_events_per_sec as f64 / scalar_events_per_sec.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_profile_fills_the_trace() {
        let profile = synthetic_profile(10_000);
        assert!(profile.trace.len() >= 9_000, "trace should be near-full");
        assert_eq!(profile.trace.weight(), 1, "speed profile must not decimate");
        profile.validate().expect("synthetic profile validates");
    }

    #[test]
    fn measure_reports_equivalent_engines() {
        let report = measure(20_000, 2);
        assert!(report.events > 0);
        assert!(report.baseline_events_per_sec > 0);
        assert!(report.scalar_events_per_sec > 0);
        assert!(report.replay_events_per_sec > 0);
        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("replay_events_per_sec"));
        assert!(json.contains("speedup_vs_baseline"));
    }
}
