//! The characterization-as-a-service daemon.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin alberta-serve -- \
//!     [--listen ADDR] [--cache-dir PATH] [--hosts N] \
//!     [--host-exec serial|threads|processes] [--host-jobs N]
//! ```
//!
//! Listens on `--listen` (default `127.0.0.1:0`, an ephemeral port) and
//! answers characterization requests over the line-delimited wire
//! protocol of `alberta_serve::wire`. Results come from the
//! content-addressed cache under `--cache-dir` (default
//! `serve-cache/`); misses are placed onto `--hosts` mock hosts by the
//! deterministic work-stealing scheduler and executed under
//! `--host-exec` (each host is its own worker pool; `processes` gives
//! every host a crash-isolated pool with heartbeats and redispatch).
//!
//! The bound address is printed to stdout as soon as the socket is
//! ready — CI and the tests parse that line instead of racing the
//! daemon with retries. The daemon exits when a client sends
//! `shutdown`.

use alberta_bench::{usage_error, value_from_args};
use alberta_core::ExecPolicy;
use alberta_serve::{Daemon, Engine, ResultCache, ServeConfig};

fn main() {
    // Under --host-exec processes the host pools re-execute this binary
    // in the hidden worker mode; intercept that before anything else.
    alberta_bench::maybe_worker();

    let listen = value_from_args("--listen").unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let cache_dir = value_from_args("--cache-dir").unwrap_or_else(|| "serve-cache".to_owned());
    let hosts = match value_from_args("--hosts") {
        None => 4,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => usage_error(&format!("--hosts expects a positive count, got {v:?}")),
        },
    };
    let host_jobs = match value_from_args("--host-jobs") {
        None => 2,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => usage_error(&format!("--host-jobs expects a positive count, got {v:?}")),
        },
    };
    let host_exec = match value_from_args("--host-exec").as_deref() {
        None | Some("serial") => ExecPolicy::serial(),
        Some("threads") => ExecPolicy::with_jobs(host_jobs),
        Some("processes") => ExecPolicy::processes_with_jobs(host_jobs),
        Some(other) => usage_error(&format!(
            "unknown --host-exec {other:?}; valid policies are: serial, threads, processes"
        )),
    };

    let config = ServeConfig {
        hosts,
        host_exec,
        ..ServeConfig::default()
    };
    let engine = Engine::new(config, ResultCache::new(&cache_dir));
    let daemon = match Daemon::bind(&listen, engine) {
        Ok(daemon) => daemon,
        Err(e) => usage_error(&format!("cannot listen on {listen}: {e}")),
    };
    let addr = daemon
        .local_addr()
        .unwrap_or_else(|e| usage_error(&format!("cannot resolve bound address: {e}")));
    // The readiness line CI and the tests wait for.
    println!("alberta-serve: listening on {addr}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!("alberta-serve: cache {cache_dir}, {hosts} host(s), exec {host_exec:?}");
    daemon.run();
    eprintln!("alberta-serve: shut down");
}
