//! Sweeps the suite and prints the memory-characterization table.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin table-mem \
//!     [test|train|ref] [--exec serial|threads|processes] [--jobs N] \
//!     [--out PATH] [--curves] \
//!     [--l3-size BYTES] [--l3-ways N] [--l3-line BYTES] \
//!     [--dram-banks N] [--dram-row BYTES]
//! ```
//!
//! Runs the resilient characterization pipeline over every benchmark
//! and renders the memory view of the sweep: per-workload MPKI at each
//! cache level, DRAM row-buffer hit rate, bytes read from DRAM, and the
//! exact line/page footprint. `--curves` additionally prints the
//! MPKI-vs-cache-size curves. The schema-versioned [`MemoryDocument`]
//! is persisted to `MEM_<scale>.json` (`--out PATH` to override) and is
//! bit-identical whether the sweep ran serially or under `--jobs N` —
//! CI gates it byte-for-byte against a committed golden.
//!
//! The geometry flags override the shared L3 and DRAM model. Overridden
//! geometry is validated as a whole before anything runs: an impossible
//! configuration (non-power-of-two set count, row smaller than a line)
//! terminates with exit code 2 and the offending values, instead of
//! panicking mid-sweep.

use alberta_bench::{
    exec_from_args, flag_from_args, scale_from_args, usage_error, value_from_args,
};
use alberta_core::{MachineConfig, Suite, TopDownModel};
use alberta_report::mem::MemoryDocument;
use alberta_report::view::{render_memory_table, render_mpki_curves};
use alberta_report::SuiteReport;
use alberta_uarch::PredictorKind;
use std::path::PathBuf;

fn scale_name(scale: alberta_workloads::Scale) -> &'static str {
    match scale {
        alberta_workloads::Scale::Test => "test",
        alberta_workloads::Scale::Train => "train",
        alberta_workloads::Scale::Ref => "ref",
    }
}

/// The value of a numeric geometry flag, when present.
fn geometry_value(flag: &str) -> Option<u64> {
    value_from_args(flag).map(|value| match value.parse::<u64>() {
        Ok(n) => n,
        Err(_) => usage_error(&format!("{flag} expects an integer, got {value:?}")),
    })
}

/// The reference machine with the CLI geometry overrides applied —
/// validated as a whole, so one bad flag reports the full offending
/// configuration rather than the first panic on the replay path.
fn machine_from_args() -> MachineConfig {
    let mut cfg = MachineConfig::default();
    if let Some(bytes) = geometry_value("--l3-size") {
        cfg.l3.size_bytes = bytes;
    }
    if let Some(ways) = geometry_value("--l3-ways") {
        cfg.l3.ways = ways;
    }
    if let Some(bytes) = geometry_value("--l3-line") {
        cfg.l3.line_bytes = bytes;
    }
    if let Some(banks) = geometry_value("--dram-banks") {
        cfg.dram.banks = banks;
    }
    if let Some(bytes) = geometry_value("--dram-row") {
        cfg.dram.row_bytes = bytes;
    }
    if let Err(problem) = cfg.validate() {
        eprintln!("table-mem: {problem}");
        std::process::exit(2);
    }
    cfg
}

fn main() {
    // Under --exec processes the supervisor re-executes this binary in
    // a hidden worker mode; that must be intercepted before any
    // argument parsing sees the worker flag.
    alberta_bench::maybe_worker();
    let scale = scale_from_args();
    let exec = exec_from_args();
    let machine = machine_from_args();
    let out = value_from_args("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("MEM_{}.json", scale_name(scale))));

    let suite = Suite::new(scale)
        .with_exec(exec)
        .with_model(TopDownModel::new(machine, PredictorKind::reference()));
    let results = suite.characterize_all_resilient_metered();
    for (r, _) in &results {
        for incident in r.incidents() {
            eprintln!(
                "table-mem: {}/{}: {:?}",
                r.short_name, incident.workload, incident.status
            );
        }
    }

    let mut report = SuiteReport::from_resilient(scale, &results);
    report.strip_telemetry();
    let document = MemoryDocument::from_report(&report);
    if let Err(e) = std::fs::write(&out, document.to_json()) {
        eprintln!("table-mem: {}: {e}", out.display());
        std::process::exit(1);
    }

    print!("{}", render_memory_table(&document));
    if flag_from_args("--curves") {
        println!();
        print!("{}", render_mpki_curves(&document));
    }

    let attempted: usize = report.benchmarks.iter().map(|b| b.attempted()).sum();
    let survived = document.rows.len();
    println!(
        "\ntable-mem: {survived}/{attempted} runs ok ({} scale) -> {}",
        scale_name(scale),
        out.display()
    );
    if survived < attempted {
        // The document still captures what happened, but a sweep that
        // lost runs should not look like a clean pass in CI logs.
        std::process::exit(3);
    }
}
