//! Internal tool: characterization wall time, serial vs parallel.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin timing \
//!     [test|train|ref] [--jobs N] [--sample]
//! ```
//!
//! Sweeps the whole suite once serially and once under the parallel
//! runner (`--jobs N`, defaulting to the available hardware
//! parallelism) and reports per-benchmark wall times — summed from the
//! per-run [`RunMetrics`](alberta_core::RunMetrics) telemetry — plus
//! the wall-clock speedup. Both sweeps must produce bit-identical
//! canonical reports; the binary asserts it on the serialized JSON, the
//! same guarantee CI enforces on `bench-report` artifacts. With
//! `--sample` both sweeps measure via phase sampling, so the assertion
//! covers the sampled pipeline too.

use alberta_bench::{exec_from_args, sampling_from_args, scale_from_args};
use alberta_core::{ExecPolicy, Suite};
use std::time::{Duration, Instant};

fn main() {
    let scale = scale_from_args();
    // For the speedup report a 1-thread "parallel" run is meaningless,
    // so the default here is the hardware parallelism rather than
    // serial; --jobs N still overrides it.
    let parallel = match exec_from_args() {
        ExecPolicy::Serial => ExecPolicy::parallel(),
        parallel => parallel,
    };
    let suite = Suite::new(scale)
        .with_exec(ExecPolicy::serial())
        .with_sampling_policy(sampling_from_args());

    let start = Instant::now();
    let serial_results = suite.characterize_all_metered().unwrap_or_else(|e| {
        eprintln!("timing: serial sweep failed: {e}");
        std::process::exit(1);
    });
    let serial_total = start.elapsed();

    println!("Per-benchmark serial characterization ({scale:?} scale):");
    for (c, metrics) in &serial_results {
        let wall: u64 = metrics.iter().map(|m| m.wall_nanos).sum();
        println!(
            "{:>12}  {:>3} workloads  {:>10.2?}",
            c.short_name,
            c.workload_count(),
            Duration::from_nanos(wall)
        );
    }

    let suite = suite.with_exec(parallel);
    let start = Instant::now();
    let parallel_results = suite.characterize_all_metered().unwrap_or_else(|e| {
        eprintln!("timing: parallel sweep failed: {e}");
        std::process::exit(1);
    });
    let parallel_total = start.elapsed();

    // The determinism guarantee, enforced end to end: after stripping
    // the volatile telemetry, the two sweeps must serialize to the very
    // same bytes.
    let canonical = |results: &[(
        alberta_core::Characterization,
        Vec<alberta_core::RunMetrics>,
    )]| {
        let mut report = alberta_report::SuiteReport::from_strict(scale, results);
        report.strip_telemetry();
        report.to_json()
    };
    assert_eq!(
        canonical(&serial_results),
        canonical(&parallel_results),
        "parallel sweep diverged from serial"
    );

    let speedup = serial_total.as_secs_f64() / parallel_total.as_secs_f64().max(f64::EPSILON);
    println!();
    println!("serial sweep    {serial_total:>10.2?}");
    println!(
        "parallel sweep  {parallel_total:>10.2?}  ({} workers)",
        parallel.jobs()
    );
    println!("speedup         {speedup:>9.2}x");
    println!("determinism     serial and parallel reports byte-identical");
}
