//! Internal tool: characterization wall time, serial vs threads vs
//! processes.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin timing \
//!     [test|train|ref] [--jobs N] [--sample]
//! ```
//!
//! Sweeps the whole suite three times — serially, under the thread pool,
//! and under the supervised process pool (`--jobs N` sizing both pools,
//! defaulting to the available hardware parallelism) — and reports
//! per-benchmark wall times, summed from the per-run
//! [`RunMetrics`](alberta_core::RunMetrics) telemetry, plus the
//! wall-clock speedup of each pool over serial. All three sweeps must
//! produce bit-identical canonical reports; the binary asserts it on the
//! serialized JSON, the same guarantee CI enforces on `bench-report`
//! artifacts. With `--sample` every sweep measures via phase sampling,
//! so the assertion covers the sampled pipeline too.
//!
//! With `--speed-only` the binary instead runs the replay-engine
//! microbenchmark (scalar vs batched detailed measurement, see
//! [`alberta_bench::speed`]) and skips the sweeps entirely;
//! `--speed-out FILE` additionally writes the canonical
//! `SPEED_*.json` document to `FILE`.

use alberta_bench::{exec_from_args, flag_from_args, sampling_from_args, scale_from_args};
use alberta_core::{ExecPolicy, Suite};
use std::time::{Duration, Instant};

/// Trace length and repetitions of the speed microbenchmark: large
/// enough that per-replay setup noise is negligible, small enough to
/// finish in a few seconds even under the scalar engine.
const SPEED_EVENTS: usize = 1 << 20;
const SPEED_REPS: u32 = 3;

fn run_speed_only() -> ! {
    let report = alberta_bench::speed::measure(SPEED_EVENTS, SPEED_REPS);
    println!(
        "replay speed    {} events, {} reps",
        report.events, report.reps
    );
    println!(
        "pre-rewrite     {:>12} events/s",
        report.baseline_events_per_sec
    );
    println!(
        "scalar shadow   {:>12} events/s",
        report.scalar_events_per_sec
    );
    println!(
        "batched engine  {:>12} events/s",
        report.replay_events_per_sec
    );
    println!(
        "speedup         {:>12.2}x vs pre-rewrite, {:.2}x vs shadow",
        report.speedup_vs_baseline, report.speedup_vs_scalar
    );
    if let Some(path) = alberta_bench::value_from_args("--speed-out") {
        std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("timing: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote          {path}");
    }
    std::process::exit(0);
}

fn main() {
    // Under --exec processes the supervisor re-executes this binary in
    // a hidden worker mode; that must be intercepted before any
    // argument parsing sees the worker flag.
    alberta_bench::maybe_worker();
    if flag_from_args("--speed-only") {
        run_speed_only();
    }
    let scale = scale_from_args();
    // For the speedup report a 1-worker pool is meaningless, so the
    // default here is the hardware parallelism rather than serial;
    // --jobs N still overrides it.
    let jobs = match exec_from_args() {
        ExecPolicy::Serial => ExecPolicy::parallel().jobs(),
        policy => policy.jobs(),
    };
    let suite = Suite::new(scale)
        .with_exec(ExecPolicy::serial())
        .with_sampling_policy(sampling_from_args());

    let sweep = |suite: &Suite, label: &str| {
        let start = Instant::now();
        let results = suite.characterize_all_metered().unwrap_or_else(|e| {
            eprintln!("timing: {label} sweep failed: {e}");
            std::process::exit(1);
        });
        (results, start.elapsed())
    };

    let (serial_results, serial_total) = sweep(&suite, "serial");

    println!("Per-benchmark serial characterization ({scale:?} scale):");
    for (c, metrics) in &serial_results {
        let wall: u64 = metrics.iter().map(|m| m.wall_nanos).sum();
        println!(
            "{:>12}  {:>3} workloads  {:>10.2?}",
            c.short_name,
            c.workload_count(),
            Duration::from_nanos(wall)
        );
    }

    let suite = suite.with_exec(ExecPolicy::with_jobs(jobs));
    let (thread_results, thread_total) = sweep(&suite, "threads");

    let suite = suite.with_exec(ExecPolicy::processes_with_jobs(jobs));
    let (process_results, process_total) = sweep(&suite, "processes");

    // The determinism guarantee, enforced end to end: after stripping
    // the volatile telemetry, all three sweeps must serialize to the
    // very same bytes.
    let canonical = |results: &[(
        alberta_core::Characterization,
        Vec<alberta_core::RunMetrics>,
    )]| {
        let mut report = alberta_report::SuiteReport::from_strict(scale, results);
        report.strip_telemetry();
        report.to_json()
    };
    let serial_json = canonical(&serial_results);
    assert_eq!(
        serial_json,
        canonical(&thread_results),
        "thread-pool sweep diverged from serial"
    );
    assert_eq!(
        serial_json,
        canonical(&process_results),
        "process-pool sweep diverged from serial"
    );

    let speedup =
        |total: Duration| serial_total.as_secs_f64() / total.as_secs_f64().max(f64::EPSILON);
    println!();
    println!("serial sweep     {serial_total:>10.2?}");
    println!(
        "thread sweep     {thread_total:>10.2?}  ({jobs} workers, {:.2}x)",
        speedup(thread_total)
    );
    println!(
        "process sweep    {process_total:>10.2?}  ({jobs} workers, {:.2}x)",
        speedup(process_total)
    );
    println!("determinism      serial, thread, and process reports byte-identical");
}
