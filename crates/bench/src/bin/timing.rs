//! Internal tool: characterization wall time, serial vs parallel.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin timing [test|train|ref] [--jobs N]
//! ```
//!
//! Prints per-benchmark serial wall times, then sweeps the whole suite
//! once serially and once under the parallel runner (`--jobs N`,
//! defaulting to the available hardware parallelism) and reports the
//! wall-clock speedup. Both sweeps produce bit-identical results; the
//! binary asserts it.

use alberta_bench::{exec_from_args, scale_from_args};
use alberta_core::{ExecPolicy, Suite};
use std::time::{Duration, Instant};

fn main() {
    let scale = scale_from_args();
    // For the speedup report a 1-thread "parallel" run is meaningless,
    // so the default here is the hardware parallelism rather than
    // serial; --jobs N still overrides it.
    let parallel = match exec_from_args() {
        ExecPolicy::Serial => ExecPolicy::parallel(),
        parallel => parallel,
    };
    let suite = Suite::new(scale).with_exec(ExecPolicy::serial());

    println!("Per-benchmark serial characterization ({scale:?} scale):");
    let mut serial_total = Duration::ZERO;
    let mut serial_results = Vec::new();
    for b in suite.benchmarks() {
        let start = Instant::now();
        match suite.characterize(b.short_name()) {
            Ok(c) => {
                let elapsed = start.elapsed();
                serial_total += elapsed;
                println!(
                    "{:>12}  {:>3} workloads  {:>10.2?}",
                    b.short_name(),
                    c.workload_count(),
                    elapsed
                );
                serial_results.push(c);
            }
            Err(e) => {
                eprintln!("timing: {} failed: {e}", b.short_name());
                std::process::exit(1);
            }
        }
    }

    let suite = suite.with_exec(parallel);
    let start = Instant::now();
    let parallel_results = suite
        .characterize_all()
        .expect("parallel sweep matches the serial one");
    let parallel_total = start.elapsed();

    // The determinism guarantee, enforced: the parallel sweep must be
    // bit-identical to the serial per-benchmark runs.
    assert_eq!(serial_results.len(), parallel_results.len());
    for (s, p) in serial_results.iter().zip(&parallel_results) {
        assert_eq!(
            s.topdown.mu_g_v.to_bits(),
            p.topdown.mu_g_v.to_bits(),
            "{}: parallel sweep diverged from serial",
            s.short_name
        );
    }

    let speedup = serial_total.as_secs_f64() / parallel_total.as_secs_f64().max(f64::EPSILON);
    println!();
    println!("serial sweep    {serial_total:>10.2?}");
    println!(
        "parallel sweep  {parallel_total:>10.2?}  ({} workers)",
        parallel.jobs()
    );
    println!("speedup         {speedup:>9.2}x");
    println!("determinism     serial and parallel sweeps bit-identical");
}
