//! Internal tool: per-benchmark characterization wall time.

use alberta_core::Suite;
use alberta_workloads::Scale;
use std::time::Instant;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("train") => Scale::Train,
        Some("ref") => Scale::Ref,
        _ => Scale::Test,
    };
    let suite = Suite::new(scale);
    for b in suite.benchmarks() {
        let start = Instant::now();
        match suite.characterize(b.short_name()) {
            Ok(c) => println!(
                "{:>12}  {:>3} workloads  {:>8.2?}",
                b.short_name(),
                c.workload_count(),
                start.elapsed()
            ),
            Err(e) => println!("{:>12}  FAILED: {e}", b.short_name()),
        }
    }
}
