//! Compares two structured run reports and gates on regressions.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin bench-diff -- \
//!     BASELINE.json NEW.json [--threshold PCT] [--check]
//! ```
//!
//! Prints the per-benchmark delta table (modelled refrate cycles,
//! `μg(V)`, `μg(M)`) plus the geometric mean of the cycle ratios, then
//! exits:
//!
//! * `0` — no regression;
//! * `1` — regression found: a structural one (status flip, lost
//!   workload or summary, scale mismatch), or — without `--check` — a
//!   numeric delta beyond `--threshold PCT` (default 5 %);
//! * `2` — usage or parse error (including an unsupported
//!   `schema_version`).
//!
//! `--check` is the CI mode: structural regressions fail, numeric
//! drift only warns. The modelled numbers move legitimately when
//! workloads or the machine model are retuned; losing a workload never
//! does.

use alberta_bench::{flag_from_args, operands_from_args, usage_error, value_from_args};
use alberta_report::{DiffOptions, ReportDiff, SuiteReport};
use std::path::Path;

fn load(path: &str) -> SuiteReport {
    match alberta_report::load(Path::new(path)) {
        Ok(report) => report,
        Err(e) => usage_error(&format!("{path}: {e}")),
    }
}

fn main() {
    // Under --exec processes the supervisor re-executes this binary in
    // a hidden worker mode; that must be intercepted before any
    // argument parsing sees the worker flag.
    alberta_bench::maybe_worker();
    let operands = operands_from_args();
    let [base_path, new_path] = operands.as_slice() else {
        usage_error("expected exactly two reports: bench-diff BASELINE.json NEW.json");
    };
    let threshold = match value_from_args("--threshold") {
        None => DiffOptions::default().threshold,
        Some(text) => match text.parse::<f64>() {
            Ok(pct) if pct >= 0.0 && pct.is_finite() => pct / 100.0,
            _ => usage_error(&format!(
                "--threshold expects a non-negative percentage, got {text:?}"
            )),
        },
    };
    let check = flag_from_args("--check");

    let base = load(base_path);
    let new = load(new_path);
    let diff = ReportDiff::compute(&base, &new, DiffOptions { threshold });

    println!("bench-diff: {base_path} -> {new_path}\n");
    print!("{}", diff.render());

    let over = diff.over_threshold();
    if !over.is_empty() {
        let verdict = if check { "warning" } else { "regression" };
        println!(
            "\n{verdict}: {} benchmark(s) drifted beyond {:.2}%:",
            over.len(),
            threshold * 100.0
        );
        for row in &over {
            println!(
                "  {} (max change {:+.2}%)",
                row.benchmark,
                row.max_relative_change() * 100.0
            );
        }
    }

    let structural = !diff.regressions.is_empty();
    let numeric = !check && !over.is_empty();
    if structural || numeric {
        println!(
            "\nbench-diff: FAIL ({} structural, {} over-threshold)",
            diff.regressions.len(),
            if check { 0 } else { over.len() }
        );
        std::process::exit(1);
    }
    if diff.is_clean() {
        println!("\nbench-diff: OK (reports identical)");
    } else {
        println!("\nbench-diff: OK (no regressions)");
    }
}
