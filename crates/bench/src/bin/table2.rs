//! Regenerates Table II: the per-benchmark behaviour-variation summary.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin table2 [test|train|ref]
//! ```

use alberta_bench::scale_from_args;
use alberta_core::tables;
use alberta_core::Suite;

fn main() {
    let scale = scale_from_args();
    let suite = Suite::new(scale);
    let table = tables::table2(&suite).expect("suite characterization");
    println!("Reproduced Table II ({scale:?} scale)\n");
    println!("{}", table.render());
    println!("\nMeasured vs paper (headline columns)\n");
    println!("{}", table.render_comparison());
}
