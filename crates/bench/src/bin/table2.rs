//! Regenerates Table II: the per-benchmark behaviour-variation summary.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin table2 \
//!     [test|train|ref] [--keep-going] [--exec serial|threads|processes] [--jobs N] [--sample]
//! ```
//!
//! By default the first failing benchmark aborts the regeneration. With
//! `--keep-going` the resilient pipeline runs instead: per-run failures
//! are reported on stderr, and the table is emitted over the surviving
//! runs with `n of m` workload annotations. `--jobs N` (with `--exec threads|processes`) fans the runs out
//! to N worker threads; the table is bit-identical either way.
//!
//! The table is rendered from a [`SuiteReport`] — the same structured
//! document `bench-report` persists — so the terminal output and the
//! JSON artifact share one source of truth.
//!
//! `--sample` (with the optional `--sample-interval`/`--sample-k`/
//! `--sample-seed` overrides) regenerates the table from phase-sampled
//! estimates instead of full measurement.

use alberta_bench::{exec_from_args, flag_from_args, sampling_from_args, scale_from_args};
use alberta_core::Suite;
use alberta_report::{view, SuiteReport};

fn main() {
    // Under --exec processes the supervisor re-executes this binary in
    // a hidden worker mode; that must be intercepted before any
    // argument parsing sees the worker flag.
    alberta_bench::maybe_worker();
    let scale = scale_from_args();
    let exec = exec_from_args();
    let suite = Suite::new(scale)
        .with_exec(exec)
        .with_sampling_policy(sampling_from_args());
    let mut report = if flag_from_args("--keep-going") {
        let results = suite.characterize_all_resilient_metered();
        for (r, _) in &results {
            for incident in r.incidents() {
                eprintln!(
                    "table2: {}/{}: {:?}",
                    r.short_name, incident.workload, incident.status
                );
            }
            if r.characterization.is_none() {
                eprintln!("table2: {}: no surviving runs, row omitted", r.short_name);
            }
        }
        SuiteReport::from_resilient(scale, &results)
    } else {
        let results = suite
            .characterize_all_metered()
            .expect("suite characterization (rerun with --keep-going to tolerate failures)");
        SuiteReport::from_strict(scale, &results)
    };
    report.strip_telemetry();
    let table = view::table2(&report);
    println!("Reproduced Table II ({scale:?} scale)\n");
    println!("{}", table.render());
    println!("\nMeasured vs paper (headline columns)\n");
    println!("{}", table.render_comparison());
}
