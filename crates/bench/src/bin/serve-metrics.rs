//! Telemetry scraper for a running `alberta-serve` daemon.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin serve-metrics -- \
//!     --addr HOST:PORT [--out PATH] [--json PATH] \
//!     [--deterministic-out PATH] [--volatile-out PATH] \
//!     [--timeline PATH] [--shutdown]
//! ```
//!
//! Fetches the daemon's two-plane metrics document and span log and
//! renders them every way the workspace consumes telemetry:
//!
//! * Prometheus text exposition to stdout, or to `--out`;
//! * the full canonical-JSON document to `--json`;
//! * the deterministic plane alone to `--deterministic-out` — the
//!   bytes CI compares against the committed golden;
//! * the volatile plane alone to `--volatile-out` — the artifact CI
//!   uploads without gating;
//! * the span log as a Chrome trace-event service timeline to
//!   `--timeline` (one lane per host, spans tagged by request ID; open
//!   it in `about:tracing` or Perfetto).
//!
//! `--shutdown` stops the daemon afterwards, so a CI job can scrape
//! and tear down in one invocation.
//!
//! Exit codes: 0 on success, 1 when the daemon misbehaves, 2 for usage
//! errors.

use alberta_bench::{flag_from_args, usage_error, value_from_args};
use alberta_report::render_service_timeline;
use alberta_serve::Client;

fn write_or_die(path: &str, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        usage_error(&format!("cannot write {path}: {e}"));
    }
}

fn main() {
    // Worker-mode hook first: under `--exec processes` elsewhere in the
    // workspace, supervisors re-execute the current binary.
    alberta_bench::maybe_worker();

    let addr = value_from_args("--addr")
        .unwrap_or_else(|| usage_error("--addr HOST:PORT is required (see alberta-serve)"));

    let mut client = Client::connect_named(&addr, Some("serve-metrics"), None)
        .unwrap_or_else(|e| usage_error(&e));
    let document = match client.metrics() {
        Ok(document) => document,
        Err(e) => {
            eprintln!("serve-metrics: metrics: {e}");
            std::process::exit(1);
        }
    };

    match value_from_args("--out") {
        Some(path) => {
            write_or_die(&path, &document.to_prometheus());
            println!("serve-metrics: Prometheus exposition -> {path}");
        }
        None => print!("{}", document.to_prometheus()),
    }
    if let Some(path) = value_from_args("--json") {
        write_or_die(&path, &document.to_json());
        println!("serve-metrics: metrics document -> {path}");
    }
    if let Some(path) = value_from_args("--deterministic-out") {
        write_or_die(&path, &document.deterministic_to_json());
        println!("serve-metrics: deterministic plane -> {path}");
    }
    if let Some(path) = value_from_args("--volatile-out") {
        write_or_die(&path, &document.volatile_to_json());
        println!("serve-metrics: volatile plane -> {path}");
    }

    if let Some(path) = value_from_args("--timeline") {
        let spans = match client.spans() {
            Ok(spans) => spans,
            Err(e) => {
                eprintln!("serve-metrics: spans: {e}");
                std::process::exit(1);
            }
        };
        match render_service_timeline(&spans) {
            Ok(trace) => {
                write_or_die(&path, &trace);
                println!("serve-metrics: service timeline -> {path}");
            }
            Err(e) => {
                eprintln!("serve-metrics: timeline: {e}");
                std::process::exit(1);
            }
        }
    }

    if flag_from_args("--shutdown") {
        // The daemon drains its handler threads on shutdown; close our
        // own connection first.
        drop(client);
        let client = Client::connect(&addr, None).unwrap_or_else(|e| usage_error(&e));
        if let Err(e) = client.shutdown() {
            eprintln!("serve-metrics: shutdown: {e}");
            std::process::exit(1);
        }
    }
}
