//! Runs the FDO methodology experiments the paper motivates: classic
//! train→ref evaluation vs cross-validation vs combined profiles, plus
//! the hidden-learning demonstration.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin fdo_eval
//! ```

use alberta_fdo::experiments::{classic_train_ref, cross_validate, hidden_learning};
use alberta_fdo::programs::{alberta_inputs, classifier_program, Distribution, InputGen};
use alberta_fdo::FdoPipeline;
use alberta_workloads::Named;

fn main() {
    // Under --exec processes the supervisor re-executes this binary in
    // a hidden worker mode; that must be intercepted before any
    // argument parsing sees the worker flag.
    alberta_bench::maybe_worker();
    let source = classifier_program(4, &[1, 4, 20, 48]);
    let pipeline = FdoPipeline::new(&source).expect("program compiles");
    let named = |name: &str, dist, seed| {
        Named::new(
            name,
            InputGen {
                len: 128,
                distribution: dist,
            }
            .generate(seed),
        )
    };

    println!("== Classic SPEC-style evaluation (train on one workload) ==");
    let train = named("train", Distribution::SkewLow, 1);
    let reference = named("refrate", Distribution::SkewLow, 2);
    let audit = alberta_inputs(128, 7);
    let classic =
        classic_train_ref(&pipeline, &train, &reference, &audit).expect("experiment runs");
    println!(
        "reported speedup (train→ref): {:.4}",
        classic.reported_speedup
    );
    println!("audited on the Alberta-style workload family:");
    for (name, s) in &classic.actual_speedups {
        println!("  {name:>24}  {s:.4}");
    }
    println!(
        "audit summary: mean {:.4}, min {:.4}, max {:.4}, range {:.4}",
        classic.summary.mean(),
        classic.summary.min(),
        classic.summary.max(),
        classic.summary.range()
    );

    println!("\n== Leave-one-out cross-validation (combined profiles) ==");
    let cv = cross_validate(&pipeline, &audit).expect("experiment runs");
    for fold in &cv.folds {
        println!(
            "  held out {:>24}  speedup {:.4}",
            fold.eval_name, fold.speedup
        );
    }
    println!(
        "cross-validated: mean {:.4} ± {:.4}",
        cv.summary.mean(),
        cv.summary.std_dev()
    );

    println!("\n== Hidden learning (tuning the inline budget) ==");
    let tune = vec![
        named("tune.low", Distribution::SkewLow, 7),
        named("tune.peak20", Distribution::Peak { center: 20 }, 8),
        named("tune.uniform", Distribution::Uniform, 9),
    ];
    let eval = vec![
        named("eval.high", Distribution::SkewHigh, 10),
        named("eval.peak80", Distribution::Peak { center: 80 }, 11),
        named("eval.bimodal", Distribution::Bimodal, 12),
    ];
    let h = hidden_learning(&pipeline, &[0, 1, 2, 4, 8, 16, 32], &tune, &eval)
        .expect("experiment runs");
    println!(
        "tuned on the eval set itself: budget {:>2} → reported mean speedup {:.4}",
        h.tuned_on_eval_budget, h.tuned_on_eval_speedup
    );
    println!(
        "tuned on held-out workloads:  budget {:>2} → honest mean speedup  {:.4}",
        h.tuned_held_out_budget, h.tuned_held_out_speedup
    );
    println!(
        "hidden-learning gap: {:.4}",
        h.tuned_on_eval_speedup - h.tuned_held_out_speedup
    );
}
