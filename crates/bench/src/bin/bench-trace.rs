//! Sweeps the suite and exports its observability artifacts: collapsed
//! call stacks, a trace-event timeline, and a hot-path-annotated report.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin bench-trace \
//!     [test|train|ref] [--exec serial|threads|processes] [--jobs N] [--out-dir DIR] [--top-k K] \
//!     [--lanes N] [--telemetry]
//! ```
//!
//! Runs the resilient characterization pipeline over every benchmark
//! and writes, into `--out-dir` (default `trace-<scale>/`):
//!
//! * `<benchmark>.<workload>.folded` — one collapsed-stack file per
//!   surviving run (`caller;callee count` lines), ready for flamegraph
//!   tooling (`inferno-flamegraph`, `flamegraph.pl`);
//! * `trace.json` — a Chrome trace-event timeline of the sweep,
//!   openable in `about:tracing` or <https://ui.perfetto.dev>. By
//!   default this is the deterministic *virtual* schedule over
//!   `--lanes N` lanes (default 4) of modelled time; with
//!   `--telemetry` it is the measured wall-clock schedule instead;
//! * `report.json` — the canonical suite report with each benchmark's
//!   `--top-k K` (default 10) hottest call paths embedded.
//!
//! Everything written without `--telemetry` is bit-identical whether
//! the sweep ran serially or under `--jobs N` — CI compares the two
//! byte for byte.

use alberta_bench::{
    exec_from_args, flag_from_args, scale_from_args, usage_error, value_from_args,
};
use alberta_core::Suite;
use alberta_report::{render_trace, SuiteReport, TraceMode, DEFAULT_LANES};
use std::path::{Path, PathBuf};

fn scale_name(scale: alberta_workloads::Scale) -> &'static str {
    match scale {
        alberta_workloads::Scale::Test => "test",
        alberta_workloads::Scale::Train => "train",
        alberta_workloads::Scale::Ref => "ref",
    }
}

/// Parses a `--flag N` positive integer, with a default.
fn count_arg(flag: &str, default: usize) -> usize {
    match value_from_args(flag) {
        None => default,
        Some(text) => match text.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => usage_error(&format!("{flag} expects a positive count, got {text:?}")),
        },
    }
}

fn write_artifact(path: &Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("bench-trace: {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn main() {
    // Under --exec processes the supervisor re-executes this binary in
    // a hidden worker mode; that must be intercepted before any
    // argument parsing sees the worker flag.
    alberta_bench::maybe_worker();
    let scale = scale_from_args();
    let exec = exec_from_args();
    let top_k = count_arg("--top-k", 10);
    let lanes = count_arg("--lanes", DEFAULT_LANES);
    let telemetry = flag_from_args("--telemetry");
    let out_dir = value_from_args("--out-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("trace-{}", scale_name(scale))));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("bench-trace: {}: {e}", out_dir.display());
        std::process::exit(1);
    }

    let suite = Suite::new(scale).with_exec(exec);
    let results = suite.characterize_all_resilient_metered();
    for (r, _) in &results {
        for incident in r.incidents() {
            eprintln!(
                "bench-trace: {}/{}: {:?}",
                r.short_name, incident.workload, incident.status
            );
        }
    }

    // One collapsed-stack file per surviving run, straight from the
    // exact call tree.
    let mut folded = 0usize;
    for (r, _) in &results {
        if let Some(c) = &r.characterization {
            for run in &c.runs {
                let path = out_dir.join(format!("{}.{}.folded", r.short_name, run.workload));
                write_artifact(&path, &run.paths.folded());
                folded += 1;
            }
        }
    }

    let mut report = SuiteReport::from_resilient(scale, &results);
    report.embed_hot_paths(&results, top_k);
    if !telemetry {
        report.strip_telemetry();
    }

    // The timeline renders from the report: virtual (deterministic)
    // lanes by default, the measured schedule when telemetry is kept.
    let mode = if telemetry {
        TraceMode::Telemetry
    } else {
        TraceMode::Virtual { lanes }
    };
    match render_trace(&report, mode) {
        Ok(text) => write_artifact(&out_dir.join("trace.json"), &text),
        Err(e) => {
            eprintln!("bench-trace: {e}");
            std::process::exit(1);
        }
    }

    if let Err(e) = alberta_report::save(&report, &out_dir.join("report.json")) {
        eprintln!("bench-trace: {e}");
        std::process::exit(1);
    }

    let attempted: usize = report.benchmarks.iter().map(|b| b.attempted()).sum();
    let survived: usize = report.benchmarks.iter().map(|b| b.survived()).sum();
    println!(
        "bench-trace: {survived}/{attempted} runs ok ({} scale), {folded} folded stacks, \
         top-{top_k} hot paths -> {}",
        scale_name(scale),
        out_dir.display()
    );
    if survived < attempted {
        // Artifacts for the surviving runs are still written, but a
        // sweep that lost runs should not look clean in CI logs.
        std::process::exit(3);
    }
}
