//! Regenerates Figure 1: Top-Down stacks per workload for
//! `523.xalancbmk_r` (left) and `557.xz_r` (right).
//!
//! ```text
//! cargo run --release -p alberta-bench --bin fig1 [test|train|ref]
//! ```

use alberta_bench::scale_from_args;
use alberta_core::figures::fig1_series;
use alberta_core::Suite;

fn main() {
    let scale = scale_from_args();
    let suite = Suite::new(scale);
    for name in ["xalancbmk", "xz"] {
        let c = suite.characterize(name).expect("characterization");
        let series = fig1_series(&c);
        println!("{}", series.render());
        println!("{}", series.render_numeric());
        println!(
            "visual variation score: {:.4}\n",
            series.visual_variation()
        );
    }
}
