//! Regenerates Figure 1: Top-Down stacks per workload for
//! `523.xalancbmk_r` (left) and `557.xz_r` (right).
//!
//! ```text
//! cargo run --release -p alberta-bench --bin fig1 [test|train|ref] [--jobs N]
//! ```
//!
//! Runs through the resilient pipeline: a failing workload costs one bar,
//! not the figure. Lost runs are reported on stderr and the plot title is
//! annotated `(n of m workloads)`. `--jobs N` runs the workloads on N
//! worker threads with bit-identical output.

use alberta_bench::{exec_from_args, scale_from_args};
use alberta_core::figures::fig1_series_resilient;
use alberta_core::Suite;

fn main() {
    let scale = scale_from_args();
    let exec = exec_from_args();
    let suite = Suite::new(scale).with_exec(exec);
    for name in ["xalancbmk", "xz"] {
        let r = suite
            .characterize_resilient(name)
            .expect("benchmark exists");
        for incident in r.incidents() {
            eprintln!("fig1: {name}/{}: {:?}", incident.workload, incident.status);
        }
        match fig1_series_resilient(&r) {
            Some(series) => {
                println!("{}", series.render());
                println!("{}", series.render_numeric());
                println!("visual variation score: {:.4}\n", series.visual_variation());
            }
            None => eprintln!("fig1: {name}: no surviving runs, figure omitted"),
        }
    }
}
