//! Evaluates phase-sampled characterization against full measurement.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin sample-eval \
//!     [test|train|ref] [--exec serial|threads|processes] [--jobs N] [--bound PCT] [--out PATH] \
//!     [--sample-interval OPS] [--sample-k N] [--sample-seed SEED]
//! ```
//!
//! Sweeps the suite twice — once measuring every run in full (ground
//! truth), once under the phase-sampled policy — and reports, per
//! benchmark, the largest Top-Down fraction estimation error, the
//! μg(M) coverage-summary error, and the detailed-measurement work
//! saved (`total_ops / detailed_ops`, aggregated over sampled runs).
//!
//! The evaluation is gated: if any benchmark's Top-Down fraction error
//! or μg(M) relative error exceeds the bound — `--bound PCT`, default
//! the committed `PHASE_ERROR_BOUND_PCT` — the binary exits 1; CI
//! enforces the same bound. `--out PATH` persists the sampled report
//! with per-run `estimate_error` fields embedded.

use alberta_bench::{
    exec_from_args, sampling_from_args, scale_from_args, usage_error, value_from_args,
};
use alberta_core::report::{format_table, Align};
use alberta_core::{SamplingPolicy, Suite, PHASE_ERROR_BOUND_PCT};
use alberta_report::SuiteReport;
use std::path::PathBuf;

fn main() {
    // Under --exec processes the supervisor re-executes this binary in
    // a hidden worker mode; that must be intercepted before any
    // argument parsing sees the worker flag.
    alberta_bench::maybe_worker();
    let scale = scale_from_args();
    let exec = exec_from_args();
    let policy = match sampling_from_args() {
        // sample-eval exists to evaluate sampling, so it is on by
        // default; the --sample-* flags only tune the parameters.
        SamplingPolicy::Full => SamplingPolicy::phase(),
        configured => configured,
    };
    let bound = value_from_args("--bound")
        .map(|value| match value.parse::<f64>() {
            Ok(pct) if pct.is_finite() && pct >= 0.0 => pct,
            _ => usage_error(&format!(
                "--bound expects a non-negative percentage, got {value:?}"
            )),
        })
        .unwrap_or(PHASE_ERROR_BOUND_PCT);

    let full_suite = Suite::new(scale).with_exec(exec);
    let full_results = full_suite.characterize_all_resilient_metered();
    let mut full = SuiteReport::from_resilient(scale, &full_results);
    full.strip_telemetry();

    let sampled_suite = Suite::new(scale)
        .with_exec(exec)
        .with_sampling_policy(policy);
    let sampled_results = sampled_suite.characterize_all_resilient_metered();
    let mut sampled = SuiteReport::from_resilient(scale, &sampled_results);
    sampled.strip_telemetry();
    sampled.embed_estimate_errors(&full);

    let header: Vec<String> = ["benchmark", "ratio err", "mu_g_m err", "work saved"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let mut rows = Vec::new();
    let mut worst_ratio = 0.0f64;
    let mut worst_mu_g_m = 0.0f64;
    let mut total_ops = 0u64;
    let mut detailed_ops = 0u64;
    for benchmark in &sampled.benchmarks {
        let ratio_err = benchmark
            .runs
            .iter()
            .filter_map(|r| r.sampling.as_ref()?.estimate_error)
            .fold(0.0f64, f64::max);
        let mu_g_m_err = match (
            &benchmark.summary,
            full.benchmark(&benchmark.spec_id)
                .and_then(|b| b.summary.as_ref()),
        ) {
            (Some(est), Some(truth)) if truth.mu_g_m > 0.0 => {
                (est.mu_g_m - truth.mu_g_m).abs() / truth.mu_g_m
            }
            _ => 0.0,
        };
        let (bench_total, bench_detailed) = benchmark
            .runs
            .iter()
            .filter_map(|r| r.sampling.as_ref())
            .fold((0u64, 0u64), |(t, d), s| {
                (t + s.total_ops, d + s.detailed_ops)
            });
        total_ops += bench_total;
        detailed_ops += bench_detailed;
        let saved = if bench_detailed == 0 {
            1.0
        } else {
            bench_total as f64 / bench_detailed as f64
        };
        worst_ratio = worst_ratio.max(ratio_err);
        worst_mu_g_m = worst_mu_g_m.max(mu_g_m_err);
        rows.push(vec![
            benchmark.short_name.clone(),
            format!("{:.2}pp", ratio_err * 100.0),
            format!("{:.2}%", mu_g_m_err * 100.0),
            format!("{saved:.1}x"),
        ]);
    }

    println!("Phase-sampled estimation vs full measurement ({scale:?} scale)\n");
    println!("{}", format_table(&header, &rows, Align::Right));
    let overall_saved = if detailed_ops == 0 {
        1.0
    } else {
        total_ops as f64 / detailed_ops as f64
    };
    println!();
    println!(
        "worst Top-Down fraction error  {:.2}pp",
        worst_ratio * 100.0
    );
    println!(
        "worst mu_g(M) error            {:.2}%",
        worst_mu_g_m * 100.0
    );
    println!("aggregate work saved           {overall_saved:.1}x");

    if let Some(path) = value_from_args("--out").map(PathBuf::from) {
        if let Err(e) = alberta_report::save(&sampled, &path) {
            eprintln!("sample-eval: {e}");
            std::process::exit(1);
        }
        println!("sampled report -> {}", path.display());
    }

    let worst = worst_ratio.max(worst_mu_g_m) * 100.0;
    if worst > bound {
        eprintln!(
            "sample-eval: estimation error {worst:.2} exceeds bound {bound:.2} \
             (percentage points)"
        );
        std::process::exit(1);
    }
    println!("bound check                    {worst:.2} <= {bound:.2} ok");
}
