//! Regenerates Figure 2: method-coverage variation across workloads for
//! `531.deepsjeng_r` (left) and `557.xz_r` (right).
//!
//! ```text
//! cargo run --release -p alberta-bench --bin fig2 [test|train|ref] [--jobs N]
//! ```
//!
//! Runs through the resilient pipeline: a failing workload costs one row,
//! not the figure. Lost runs are reported on stderr and the plot title is
//! annotated `(n of m workloads)`. `--jobs N` runs the workloads on N
//! worker threads with bit-identical output.

use alberta_bench::{exec_from_args, scale_from_args};
use alberta_core::figures::fig2_series_resilient;
use alberta_core::Suite;

fn main() {
    let scale = scale_from_args();
    let exec = exec_from_args();
    let suite = Suite::new(scale).with_exec(exec);
    for name in ["deepsjeng", "xz"] {
        let r = suite
            .characterize_resilient(name)
            .expect("benchmark exists");
        for incident in r.incidents() {
            eprintln!("fig2: {name}/{}: {:?}", incident.workload, incident.status);
        }
        match fig2_series_resilient(&r) {
            Some(series) => {
                println!("{}", series.render());
                println!("per-method range (max − min %):");
                for (method, range) in series.method_ranges() {
                    println!("  {method:>28}  {range:6.2}");
                }
                let c = r
                    .characterization
                    .as_ref()
                    .expect("series implies survivors");
                println!("μg(M) = {:.2}\n", c.coverage.mu_g_m);
            }
            None => eprintln!("fig2: {name}: no surviving runs, figure omitted"),
        }
    }
}
