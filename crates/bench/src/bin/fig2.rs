//! Regenerates Figure 2: method-coverage variation across workloads for
//! `531.deepsjeng_r` (left) and `557.xz_r` (right).
//!
//! ```text
//! cargo run --release -p alberta-bench --bin fig2 [test|train|ref]
//! ```

use alberta_bench::scale_from_args;
use alberta_core::figures::fig2_series;
use alberta_core::Suite;

fn main() {
    let scale = scale_from_args();
    let suite = Suite::new(scale);
    for name in ["deepsjeng", "xz"] {
        let c = suite.characterize(name).expect("characterization");
        let series = fig2_series(&c);
        println!("{}", series.render());
        println!("per-method range (max − min %):");
        for (method, range) in series.method_ranges() {
            println!("  {method:>28}  {range:6.2}");
        }
        println!("μg(M) = {:.2}\n", c.coverage.mu_g_m);
    }
}
