//! Regenerates Figure 2: method-coverage variation across workloads for
//! `531.deepsjeng_r` (left) and `557.xz_r` (right).
//!
//! ```text
//! cargo run --release -p alberta-bench --bin fig2 [test|train|ref] [--exec serial|threads|processes] [--jobs N]
//! ```
//!
//! Runs through the resilient pipeline: a failing workload costs one row,
//! not the figure. Lost runs are reported on stderr and the plot title is
//! annotated `(n of m workloads)`. `--jobs N` runs the workloads on N
//! worker threads with bit-identical output.
//!
//! The series is extracted from a [`SuiteReport`] — the same structured
//! document `bench-report` persists — so the figure and the JSON
//! artifact share one source of truth.

use alberta_bench::{exec_from_args, scale_from_args};
use alberta_core::Suite;
use alberta_report::{view, SuiteReport};

fn main() {
    // Under --exec processes the supervisor re-executes this binary in
    // a hidden worker mode; that must be intercepted before any
    // argument parsing sees the worker flag.
    alberta_bench::maybe_worker();
    let scale = scale_from_args();
    let exec = exec_from_args();
    let suite = Suite::new(scale).with_exec(exec);
    for name in ["deepsjeng", "xz"] {
        let result = suite
            .characterize_resilient_metered(name)
            .expect("benchmark exists");
        for incident in result.0.incidents() {
            eprintln!("fig2: {name}/{}: {:?}", incident.workload, incident.status);
        }
        let mut report = SuiteReport::from_resilient(scale, std::slice::from_ref(&result));
        report.strip_telemetry();
        let bench = &report.benchmarks[0];
        match view::fig2_series(bench) {
            Some(series) => {
                println!("{}", series.render());
                println!("per-method range (max − min %):");
                for (method, range) in series.method_ranges() {
                    println!("  {method:>28}  {range:6.2}");
                }
                let summary = bench.summary.as_ref().expect("series implies survivors");
                println!("μg(M) = {:.2}\n", summary.mu_g_m);
            }
            None => eprintln!("fig2: {name}: no surviving runs, figure omitted"),
        }
    }
}
