//! The client storm: a deterministic load generator for
//! `alberta-serve`.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin storm -- \
//!     [test|train|ref] --addr HOST:PORT [--requests N] [--clients C] \
//!     [--seed S] [--out PATH] [--latency-out PATH] \
//!     [--sweep-out PATH] [--shutdown]
//! ```
//!
//! Fires a seeded mix of `--requests` workload-level requests from
//! `--clients` concurrent connections, twice: a cold round that forces
//! computation and a warm round that must be answered entirely from the
//! cache. All clients of a round join one daemon-side group, so the
//! batch the daemon resolves — and every counter in the report — is a
//! function of the mix alone, never of socket timing. The storm
//! verifies that every response is byte-identical across rounds
//! (cached-vs-computed identity) and writes the deterministic
//! [`StormReport`] (`--out`, default `STORM_<scale>.json`): request and
//! cache-hit counters plus the scheduler's per-host placement, steal,
//! and redispatch counters, taken as a before/after stats delta.
//!
//! `--latency-out` additionally writes the volatile drain-latency
//! percentiles — CI uploads those as an artifact and never gates on
//! them. `--sweep-out` fires one benchmark-level request per benchmark
//! and writes the assembled suite report, which must be byte-identical
//! to a fresh `bench-report` sweep at the same scale. `--shutdown`
//! stops the daemon afterwards.
//!
//! Exit codes: 0 on success, 1 when any response failed or the
//! cached-vs-computed comparison found a mismatch, 2 for usage errors.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use alberta_bench::{flag_from_args, scale_from_args, usage_error, value_from_args};
use alberta_core::benchmark_suite;
use alberta_report::{BenchmarkReport, LatencyReport, StormReport, SuiteReport, SCHEMA_VERSION};
use alberta_serve::{Client, GroupInfo, RequestSpec, ResponseCounts};
use alberta_workloads::Scale;

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Train => "train",
        Scale::Ref => "ref",
    }
}

fn parsed_flag(flag: &str, default: u64) -> u64 {
    match value_from_args(flag) {
        None => default,
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => usage_error(&format!("{flag} expects a positive count, got {v:?}")),
        },
    }
}

/// One client's share of a round: the responses (as spec index, counts,
/// and canonical body bytes) plus the drain's wall time. The wall time
/// is `None` for a member whose share was empty — a drain that drained
/// nothing is a rendezvous, not a latency sample, and must not skew the
/// percentiles toward zero.
type ClientShare = (Vec<(usize, ResponseCounts, String)>, Option<u64>);

/// Runs one round: every client connects into the round's group, sends
/// its share of the mix, and drains. Returns the per-spec-index results
/// and the drain latencies.
fn run_round(
    addr: &str,
    round: u64,
    seed: u64,
    clients: u64,
    mix: &[RequestSpec],
) -> Result<Vec<ClientShare>, String> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|member| {
                scope.spawn(move || -> Result<ClientShare, String> {
                    let group = GroupInfo {
                        id: format!("storm-{seed}-round{round}"),
                        size: clients,
                        member,
                    };
                    let mut client = Client::connect_named(
                        addr,
                        Some(&format!("storm-m{member}")),
                        Some(group),
                    )?;
                    // Round-robin partition: this member's j-th request
                    // is mix[j*clients + member].
                    let my_indices: Vec<usize> = (member as usize..mix.len())
                        .step_by(clients as usize)
                        .collect();
                    for &i in &my_indices {
                        client.request(&mix[i])?;
                    }
                    let started = Instant::now();
                    let responses = client.drain()?;
                    let drain_nanos =
                        (!my_indices.is_empty()).then(|| started.elapsed().as_nanos() as u64);
                    if responses.len() != my_indices.len() {
                        return Err(format!(
                            "member {member} sent {} requests but got {} responses",
                            my_indices.len(),
                            responses.len()
                        ));
                    }
                    let mut share = Vec::with_capacity(responses.len());
                    for response in responses {
                        let spec_index = my_indices[response.id as usize];
                        let body = response.result.map_err(|e| {
                            format!("request for {:?} failed: {e}", mix[spec_index].benchmark)
                        })?;
                        share.push((spec_index, response.counts, body.render_compact()));
                    }
                    Ok((share, drain_nanos))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("storm client thread panicked"))
            .collect()
    })
}

fn main() {
    let scale = scale_from_args();
    let addr = value_from_args("--addr")
        .unwrap_or_else(|| usage_error("--addr HOST:PORT is required (see alberta-serve)"));
    let requests = parsed_flag("--requests", 96);
    let clients = parsed_flag("--clients", 4);
    let seed = parsed_flag("--seed", 42);
    let out = value_from_args("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("STORM_{}.json", scale_name(scale))));

    // The seeded mix: workload-level requests drawn from every
    // (benchmark, workload) pair at this scale with a deterministic
    // LCG, so the same seed always produces the same stream.
    let pairs: Vec<(String, String)> = benchmark_suite(scale)
        .iter()
        .flat_map(|b| {
            let short = b.short_name().to_owned();
            b.workload_names()
                .into_iter()
                .map(move |w| (short.clone(), w))
        })
        .collect();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mix: Vec<RequestSpec> = (0..requests)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let (benchmark, workload) = &pairs[(state >> 33) as usize % pairs.len()];
            RequestSpec::new(benchmark, Some(workload), scale)
        })
        .collect();
    let unique_keys = mix
        .iter()
        .map(|s| s.run_key(s.workload.as_deref().expect("mix is workload-level")))
        .collect::<std::collections::BTreeSet<_>>()
        .len() as u64;

    let mut stats_client =
        Client::connect(&addr, None).unwrap_or_else(|e| usage_error(&e.to_string()));
    let before = stats_client.stats().unwrap_or_else(|e| usage_error(&e));

    // Two rounds over the same mix: cold (computes) then warm (all
    // cache hits). Responses for the same spec must match byte for
    // byte across rounds.
    let mut totals = ResponseCounts::default();
    let mut latencies: Vec<u64> = Vec::new();
    let mut bodies: BTreeMap<usize, String> = BTreeMap::new();
    let mut failures = 0u64;
    for round in 0..2 {
        match run_round(&addr, round, seed, clients, &mix) {
            Err(e) => {
                eprintln!("storm: round {round}: {e}");
                failures += 1;
            }
            Ok(shares) => {
                for (share, drain_nanos) in shares {
                    latencies.extend(drain_nanos);
                    for (spec_index, counts, body) in share {
                        totals.computed += counts.computed;
                        totals.cached += counts.cached;
                        totals.coalesced += counts.coalesced;
                        totals.failed += counts.failed;
                        match bodies.get(&spec_index) {
                            None => {
                                bodies.insert(spec_index, body);
                            }
                            Some(first) if *first == body => {}
                            Some(_) => {
                                eprintln!(
                                    "storm: response for {}/{} differs between rounds",
                                    mix[spec_index].benchmark,
                                    mix[spec_index].workload.as_deref().unwrap_or("*")
                                );
                                failures += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    if totals.failed > 0 {
        eprintln!("storm: {} key(s) failed on the daemon", totals.failed);
        failures += 1;
    }

    let after = stats_client.stats().unwrap_or_else(|e| usage_error(&e));
    let report = StormReport {
        schema_version: SCHEMA_VERSION,
        requests: 2 * requests,
        unique_keys,
        hits: totals.cached + totals.coalesced,
        computed: totals.computed,
        steals: after.steals - before.steals,
        redispatches: after.redispatches - before.redispatches,
        hosts: after
            .hosts
            .iter()
            .zip(&before.hosts)
            .map(|(a, b)| alberta_report::HostRecord {
                host: a.host,
                tasks: a.tasks - b.tasks,
                stolen: a.stolen - b.stolen,
            })
            .collect(),
    };
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        usage_error(&format!("cannot write {}: {e}", out.display()));
    }
    println!(
        "storm: {} requests over {} unique keys: {} hit(s), {} computed, hit ratio {:.3}, \
         {} steal(s), {} redispatch(es) -> {}",
        report.requests,
        report.unique_keys,
        report.hits,
        report.computed,
        report.hit_ratio(),
        report.steals,
        report.redispatches,
        out.display()
    );

    if let Some(path) = value_from_args("--latency-out") {
        let latency = LatencyReport::from_samples(&mut latencies);
        if let Err(e) = std::fs::write(&path, latency.to_json()) {
            usage_error(&format!("cannot write {path}: {e}"));
        }
        println!(
            "storm: drain latency over {} sample(s): p50 {}ns p90 {}ns p99 {}ns max {}ns -> {path}",
            latency.samples,
            latency.p50_nanos,
            latency.p90_nanos,
            latency.p99_nanos,
            latency.max_nanos
        );
    }

    if let Some(path) = value_from_args("--sweep-out") {
        // One benchmark-level request per benchmark, assembled into the
        // same document bench-report writes.
        match sweep(&addr, scale) {
            Err(e) => {
                eprintln!("storm: sweep: {e}");
                failures += 1;
            }
            Ok(report) => {
                if let Err(e) = std::fs::write(&path, report.to_json()) {
                    usage_error(&format!("cannot write {path}: {e}"));
                }
                println!("storm: assembled sweep report -> {path}");
            }
        }
    }

    if flag_from_args("--shutdown") {
        // The daemon drains its handler threads on shutdown; close our
        // own idle connection first.
        drop(stats_client);
        let client = Client::connect(&addr, None).unwrap_or_else(|e| usage_error(&e));
        if let Err(e) = client.shutdown() {
            eprintln!("storm: shutdown: {e}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("storm: FAILED ({failures} problem(s))");
        std::process::exit(1);
    }
}

/// Requests every benchmark at benchmark level and assembles the bodies
/// into a [`SuiteReport`] — the document a fresh `bench-report` sweep
/// at the same scale must match byte for byte.
fn sweep(addr: &str, scale: Scale) -> Result<SuiteReport, String> {
    let mut client = Client::connect(addr, None)?;
    let names: Vec<String> = benchmark_suite(scale)
        .iter()
        .map(|b| b.short_name().to_owned())
        .collect();
    for name in &names {
        client.request(&RequestSpec::new(name, None, scale))?;
    }
    let responses = client.drain()?;
    if responses.len() != names.len() {
        return Err(format!(
            "asked for {} benchmarks, got {} responses",
            names.len(),
            responses.len()
        ));
    }
    let benchmarks: Vec<BenchmarkReport> = responses
        .into_iter()
        .map(|r| {
            let body = r
                .result
                .map_err(|e| format!("benchmark request failed: {e}"))?;
            BenchmarkReport::from_value(&body).map_err(|e| e.to_string())
        })
        .collect::<Result<_, String>>()?;
    Ok(SuiteReport::from_parts(scale, benchmarks))
}
