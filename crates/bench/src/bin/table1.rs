//! Regenerates Table I: the SPEC CPU 2006 → 2017 evolution, with our
//! mini-benchmark refrate cycles as the measured column.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin table1 [test|train|ref] [--jobs N]
//! ```

use alberta_bench::{exec_from_args, scale_from_args};
use alberta_core::tables;
use alberta_core::Suite;

fn main() {
    let scale = scale_from_args();
    let exec = exec_from_args();
    let suite = Suite::new(scale).with_exec(exec);
    println!("Reproduced Table I ({scale:?} scale)\n");
    println!("{}", tables::table1(&suite).expect("characterization"));
}
