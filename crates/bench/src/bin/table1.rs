//! Regenerates Table I: the SPEC CPU 2006 → 2017 evolution, with our
//! mini-benchmark refrate cycles as the measured column.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin table1 [test|train|ref] [--exec serial|threads|processes] [--jobs N]
//! ```
//!
//! The measured column is rendered from a [`SuiteReport`] — the same
//! structured document `bench-report` persists — so the table and the
//! JSON artifact can never disagree. The sweep runs through the
//! resilient pipeline: a benchmark that loses its refrate run shows `—`
//! instead of aborting the table.

use alberta_bench::{exec_from_args, scale_from_args};
use alberta_core::{tables, Suite};
use alberta_report::{view, SuiteReport};

fn main() {
    // Under --exec processes the supervisor re-executes this binary in
    // a hidden worker mode; that must be intercepted before any
    // argument parsing sees the worker flag.
    alberta_bench::maybe_worker();
    let scale = scale_from_args();
    let exec = exec_from_args();
    let suite = Suite::new(scale).with_exec(exec);
    let results = suite.characterize_all_resilient_metered();
    for (r, _) in &results {
        for incident in r.incidents() {
            eprintln!(
                "table1: {}/{}: {:?}",
                r.short_name, incident.workload, incident.status
            );
        }
    }
    let mut report = SuiteReport::from_resilient(scale, &results);
    report.strip_telemetry();
    println!("Reproduced Table I ({scale:?} scale)\n");
    println!(
        "{}",
        tables::table1_from_cycles(&view::refrate_cycles(&report))
    );
}
