//! Sweeps the suite and persists the structured run report.
//!
//! ```text
//! cargo run --release -p alberta-bench --bin bench-report \
//!     [test|train|ref] [--exec serial|threads|processes] [--jobs N] \
//!     [--out PATH] [--telemetry] [--chaos N] [--chaos-seed SEED] \
//!     [--sample] [--sample-interval OPS] [--sample-k N] [--sample-seed SEED]
//! ```
//!
//! Runs the resilient characterization pipeline over every benchmark
//! and writes the schema-versioned JSON document (`BENCH_<scale>.json`
//! by default, `--out PATH` to override). The canonical document is
//! bit-identical whether the sweep ran serially or under `--jobs N`;
//! `--telemetry` keeps the volatile wall-clock and worker-id fields for
//! local inspection, at the cost of that guarantee.
//!
//! Per-run failures cost a run, not the report: they land in the
//! document as `degraded`/`failed` records and are echoed on stderr.
//!
//! `--sample` switches every run to phase-sampled measurement: the
//! Top-Down numbers become clustered-interval estimates and each run
//! record gains a `sampling` section with the pilot/cluster accounting.
//! Sampled sweeps keep the serial-vs-parallel byte-identity guarantee.
//!
//! `--exec processes` fans the runs out to supervised worker
//! subprocesses (crash isolation, heartbeats, bounded redispatch); the
//! canonical document stays byte-identical to a serial sweep. `--chaos N
//! --chaos-seed S` scatters `N` seeded process faults (worker crashes,
//! hangs, corrupt result lines) over the sweep to exercise the
//! supervisor's recovery — single-shot faults are absorbed by
//! redispatch, so the chaos report still matches the clean one.

use alberta_bench::{
    chaos_from_args, exec_from_args, flag_from_args, sampling_from_args, scale_from_args,
    value_from_args,
};
use alberta_core::Suite;
use alberta_report::SuiteReport;
use std::path::PathBuf;

fn scale_name(scale: alberta_workloads::Scale) -> &'static str {
    match scale {
        alberta_workloads::Scale::Test => "test",
        alberta_workloads::Scale::Train => "train",
        alberta_workloads::Scale::Ref => "ref",
    }
}

fn main() {
    // Under --exec processes the supervisor re-executes this binary in
    // a hidden worker mode; that must be intercepted before any
    // argument parsing sees the worker flag.
    alberta_bench::maybe_worker();
    let scale = scale_from_args();
    let exec = exec_from_args();
    let out = value_from_args("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", scale_name(scale))));

    let suite = Suite::new(scale)
        .with_exec(exec)
        .with_sampling_policy(sampling_from_args());
    let suite = match chaos_from_args() {
        None => suite,
        Some((count, seed)) => {
            let plan = suite.scattered_process_faults(seed, count);
            eprintln!("bench-report: chaos plan: {count} process fault(s), seed {seed}");
            suite.with_faults(plan)
        }
    };
    let results = suite.characterize_all_resilient_metered();
    for (r, _) in &results {
        for incident in r.incidents() {
            eprintln!(
                "bench-report: {}/{}: {:?}",
                r.short_name, incident.workload, incident.status
            );
        }
    }

    let mut report = SuiteReport::from_resilient(scale, &results);
    if !flag_from_args("--telemetry") {
        report.strip_telemetry();
    }
    if let Err(e) = alberta_report::save(&report, &out) {
        eprintln!("bench-report: {e}");
        std::process::exit(1);
    }

    let benchmarks = report.benchmarks.len();
    let attempted: usize = report.benchmarks.iter().map(|b| b.attempted()).sum();
    let survived: usize = report.benchmarks.iter().map(|b| b.survived()).sum();
    println!(
        "bench-report: {benchmarks} benchmarks, {survived}/{attempted} runs ok \
         ({} scale) -> {}",
        scale_name(scale),
        out.display()
    );
    if survived < attempted {
        // The report still captures what happened, but a sweep that lost
        // runs should not look like a clean pass in CI logs.
        std::process::exit(3);
    }
}
