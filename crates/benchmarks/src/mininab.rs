//! `544.nab_r` stand-in: molecular-mechanics force evaluation and
//! dynamics.
//!
//! The Nucleic Acid Builder evaluates force fields over biomolecules.
//! This mini evaluates the same term families over the generated
//! protein-like chains: harmonic bonds, harmonic angles, and nonbonded
//! Lennard-Jones + Coulomb interactions within a cutoff (found via a cell
//! list), integrated with velocity Verlet. Force symmetry (Newton's third
//! law) is the correctness oracle.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::molecule::{self, Molecule};
use alberta_workloads::{Named, Scale};

const POS_REGION: u64 = 0x1_A000_0000;
const FORCE_REGION: u64 = 0x1_B000_0000;
const CELL_REGION: u64 = 0x1_C000_0000;

type V3 = (f64, f64, f64);

fn sub(a: V3, b: V3) -> V3 {
    (a.0 - b.0, a.1 - b.1, a.2 - b.2)
}

fn add(a: V3, b: V3) -> V3 {
    (a.0 + b.0, a.1 + b.1, a.2 + b.2)
}

fn scale(a: V3, k: f64) -> V3 {
    (a.0 * k, a.1 * k, a.2 * k)
}

fn norm(a: V3) -> f64 {
    (a.0 * a.0 + a.1 * a.1 + a.2 * a.2).sqrt()
}

fn dot(a: V3, b: V3) -> f64 {
    a.0 * b.0 + a.1 * b.1 + a.2 * b.2
}

pub(crate) struct Fns {
    bonded: FnId,
    angles: FnId,
    nonbonded: FnId,
    cells: FnId,
    integrate: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        bonded: profiler.register_function("nab::bond_forces", 1200),
        angles: profiler.register_function("nab::angle_forces", 1600),
        nonbonded: profiler.register_function("nab::nonbonded_forces", 3000),
        cells: profiler.register_function("nab::build_cell_list", 1100),
        integrate: profiler.register_function("nab::verlet", 800),
    }
}

/// Forces on every atom plus the potential energy.
#[derive(Debug, Clone)]
pub struct ForceField {
    /// Per-atom force vectors.
    pub forces: Vec<V3>,
    /// Total potential energy.
    pub energy: f64,
    /// Nonbonded pairs evaluated (work metric).
    pub pairs: u64,
}

/// Evaluates all force-field terms for the current positions.
pub(crate) fn evaluate_forces(
    mol: &Molecule,
    positions: &[V3],
    profiler: &mut Profiler,
    fns: &Fns,
) -> ForceField {
    let n = positions.len();
    let mut forces = vec![(0.0, 0.0, 0.0); n];
    let mut energy = 0.0;

    // Bonds.
    profiler.enter(fns.bonded);
    for b in &mol.bonds {
        let (i, j) = (b.a as usize, b.b as usize);
        let d = sub(positions[j], positions[i]);
        let r = norm(d).max(1e-9);
        let stretch = r - b.length;
        energy += 0.5 * b.k * stretch * stretch;
        let f = scale(d, b.k * stretch / r);
        forces[i] = add(forces[i], f);
        forces[j] = sub(forces[j], f);
        profiler.load(POS_REGION + i as u64 * 24);
        profiler.store(FORCE_REGION + j as u64 * 24);
        profiler.retire(16);
    }
    profiler.exit();

    // Angles (harmonic in the cosine, which keeps forces simple and
    // exactly symmetric).
    profiler.enter(fns.angles);
    for a in &mol.angles {
        let (i, j, k) = (a.a as usize, a.b as usize, a.c as usize);
        let r1 = sub(positions[i], positions[j]);
        let r2 = sub(positions[k], positions[j]);
        let n1 = norm(r1).max(1e-9);
        let n2 = norm(r2).max(1e-9);
        let cos_t = (dot(r1, r2) / (n1 * n2)).clamp(-1.0, 1.0);
        let cos0 = a.theta0.cos();
        let diff = cos_t - cos0;
        energy += 0.5 * a.k * diff * diff;
        // dE/dcos = k * diff; gradient of cos wrt each position.
        let g = a.k * diff;
        let gi = scale(
            sub(scale(r2, 1.0 / (n1 * n2)), scale(r1, cos_t / (n1 * n1))),
            g,
        );
        let gk = scale(
            sub(scale(r1, 1.0 / (n1 * n2)), scale(r2, cos_t / (n2 * n2))),
            g,
        );
        forces[i] = sub(forces[i], gi);
        forces[k] = sub(forces[k], gk);
        forces[j] = add(forces[j], add(gi, gk));
        profiler.load(POS_REGION + j as u64 * 24);
        profiler.retire(30);
    }
    profiler.exit();

    // Nonbonded via a cell list.
    profiler.enter(fns.cells);
    let cutoff = mol.cutoff;
    let cell = cutoff.max(1.0);
    let mut min = positions[0];
    for p in positions {
        min = (min.0.min(p.0), min.1.min(p.1), min.2.min(p.2));
    }
    let key = |p: V3| -> (i32, i32, i32) {
        (
            ((p.0 - min.0) / cell) as i32,
            ((p.1 - min.1) / cell) as i32,
            ((p.2 - min.2) / cell) as i32,
        )
    };
    let mut cells: std::collections::BTreeMap<(i32, i32, i32), Vec<usize>> = Default::default();
    for (i, &p) in positions.iter().enumerate() {
        cells.entry(key(p)).or_default().push(i);
        profiler.store(CELL_REGION + i as u64 * 8);
        profiler.retire(4);
    }
    profiler.exit();

    profiler.enter(fns.nonbonded);
    let mut pairs = 0u64;
    let cut2 = cutoff * cutoff;
    for (&(cx, cy, cz), atoms) in &cells {
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let Some(neighbors) = cells.get(&(cx + dx, cy + dy, cz + dz)) else {
                        continue;
                    };
                    for &i in atoms {
                        for &j in neighbors {
                            if j <= i {
                                continue;
                            }
                            // Bonded neighbours are excluded (1-2 pairs).
                            if (i as i64 - j as i64).abs() == 1 {
                                continue;
                            }
                            let d = sub(positions[j], positions[i]);
                            let r2 = dot(d, d);
                            let within = r2 < cut2;
                            profiler.branch(0, within);
                            profiler.load(POS_REGION + j as u64 * 24);
                            profiler.retire(6);
                            if !within {
                                continue;
                            }
                            pairs += 1;
                            let ai = &mol.atoms[i];
                            let aj = &mol.atoms[j];
                            let r2 = r2.max(0.5);
                            let r = r2.sqrt();
                            let sigma = 0.5 * (ai.sigma + aj.sigma);
                            let eps = (ai.epsilon * aj.epsilon).sqrt();
                            let s6 = (sigma * sigma / r2).powi(3);
                            let s12 = s6 * s6;
                            energy += 4.0 * eps * (s12 - s6);
                            let lj_mag = 24.0 * eps * (2.0 * s12 - s6) / r2;
                            let coulomb = 332.0 * ai.charge * aj.charge / r;
                            energy += coulomb;
                            let c_mag = coulomb / r2;
                            let f = scale(d, lj_mag + c_mag);
                            forces[i] = sub(forces[i], f);
                            forces[j] = add(forces[j], f);
                            profiler.retire(40);
                        }
                    }
                }
            }
        }
    }
    profiler.exit();

    ForceField {
        forces,
        energy,
        pairs,
    }
}

/// Runs `steps` of velocity-Verlet dynamics; returns final positions,
/// total pair evaluations, and the last potential energy.
pub fn simulate(mol: &Molecule, profiler: &mut Profiler) -> (Vec<V3>, u64, f64) {
    let fns = register(profiler);
    let mut positions: Vec<V3> = mol.atoms.iter().map(|a| a.position).collect();
    let mut velocities = vec![(0.0, 0.0, 0.0); positions.len()];
    let dt = 0.001;
    let mut total_pairs = 0;
    let mut field = evaluate_forces(mol, &positions, profiler, &fns);
    for _ in 0..mol.steps {
        profiler.enter(fns.integrate);
        for i in 0..positions.len() {
            velocities[i] = add(velocities[i], scale(field.forces[i], 0.5 * dt));
            positions[i] = add(positions[i], scale(velocities[i], dt));
            profiler.store(POS_REGION + i as u64 * 24);
            profiler.retire(12);
        }
        profiler.exit();
        field = evaluate_forces(mol, &positions, profiler, &fns);
        profiler.enter(fns.integrate);
        for (v, f) in velocities.iter_mut().zip(&field.forces) {
            *v = add(*v, scale(*f, 0.5 * dt));
        }
        profiler.exit();
        total_pairs += field.pairs;
    }
    (positions, total_pairs, field.energy)
}

/// The nab mini-benchmark.
#[derive(Debug)]
pub struct MiniNab {
    workloads: Vec<Named<Molecule>>,
}

impl MiniNab {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniNab {
            workloads: standard_set(
                scale,
                molecule::train,
                molecule::refrate,
                molecule::alberta_set,
            ),
        }
    }
}

impl Benchmark for MiniNab {
    fn name(&self) -> &'static str {
        "544.nab_r"
    }

    fn short_name(&self) -> &'static str {
        "nab"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let mol = find_workload(&self.workloads, self.name(), workload)?;
        let (positions, pairs, energy) = simulate(mol, profiler);
        if !energy.is_finite() {
            return Err(BenchError::InvalidInput {
                benchmark: "544.nab_r",
                reason: "dynamics diverged".to_owned(),
            });
        }
        let pos_hash = fnv1a(
            positions
                .iter()
                .flat_map(|p| [p.0.to_bits(), p.1.to_bits(), p.2.to_bits()]),
        );
        Ok(RunOutput {
            checksum: fnv1a([pos_hash, energy.to_bits()]),
            work: pairs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_workloads::molecule::MoleculeGen;

    fn molecule(residues: usize) -> Molecule {
        let mut gen = MoleculeGen::standard(Scale::Test);
        gen.residues = residues;
        gen.generate(3)
    }

    fn forces(mol: &Molecule) -> ForceField {
        let positions: Vec<V3> = mol.atoms.iter().map(|a| a.position).collect();
        let mut p = Profiler::default();
        let fns = register(&mut p);
        let f = evaluate_forces(mol, &positions, &mut p, &fns);
        let _ = p.finish();
        f
    }

    #[test]
    fn newtons_third_law_total_force_is_zero() {
        let mol = molecule(40);
        let f = forces(&mol);
        let total = f
            .forces
            .iter()
            .fold((0.0, 0.0, 0.0), |acc, &fi| add(acc, fi));
        assert!(norm(total) < 1e-6, "net force must vanish, got {total:?}");
    }

    #[test]
    fn stretched_bond_pulls_atoms_together() {
        let mut mol = molecule(3);
        // Stretch the first bond by moving atom 1 away along x.
        let mut positions: Vec<V3> = mol.atoms.iter().map(|a| a.position).collect();
        let dir = sub(positions[1], positions[0]);
        positions[1] = add(positions[0], scale(dir, 2.0));
        mol.atoms[1].position = positions[1];
        let f = forces(&mol);
        // Force on atom 1 points back toward atom 0.
        let back = sub(positions[0], positions[1]);
        assert!(
            dot(f.forces[1], back) > 0.0,
            "stretched bond must be restoring"
        );
    }

    #[test]
    fn energy_is_finite_and_pairs_counted() {
        let f = forces(&molecule(60));
        assert!(f.energy.is_finite());
        assert!(f.pairs > 0, "a folded chain must have nonbonded contacts");
    }

    #[test]
    fn larger_cutoff_finds_more_pairs() {
        let mut small = molecule(60);
        small.cutoff = 5.0;
        let mut large = molecule(60);
        large.cutoff = 12.0;
        assert!(forces(&large).pairs > forces(&small).pairs);
    }

    #[test]
    fn cell_list_matches_brute_force_pair_count() {
        let mol = molecule(40);
        let positions: Vec<V3> = mol.atoms.iter().map(|a| a.position).collect();
        let mut brute = 0u64;
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                if (i as i64 - j as i64).abs() == 1 {
                    continue;
                }
                let d = sub(positions[j], positions[i]);
                if dot(d, d) < mol.cutoff * mol.cutoff {
                    brute += 1;
                }
            }
        }
        assert_eq!(forces(&mol).pairs, brute);
    }

    #[test]
    fn dynamics_is_stable_for_short_runs() {
        let mol = molecule(30);
        let mut p = Profiler::default();
        let (positions, pairs, energy) = simulate(&mol, &mut p);
        let _ = p.finish();
        assert!(energy.is_finite());
        assert!(pairs > 0);
        assert!(positions.iter().all(|p| p.0.is_finite()));
    }

    #[test]
    fn benchmark_runs_and_is_deterministic() {
        let b = MiniNab::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let o1 = b.run("alberta.protein0", &mut p1).unwrap();
        let o2 = b.run("alberta.protein0", &mut p2).unwrap();
        assert_eq!(o1, o2);
        let cov = p1.finish().coverage_percent();
        assert!(cov["nab::nonbonded_forces"] > 20.0, "{cov:?}");
    }
}
