//! `520.omnetpp_r` stand-in: a discrete-event network simulator.
//!
//! The SPEC benchmark runs OMNeT++ simulating an Ethernet network. This
//! mini keeps the core of any discrete-event engine: a future-event set
//! (binary heap), per-node message queues, store-and-forward routing over
//! shortest paths, and jittered service times. The workload's topology
//! (line, ring, star, tree, random — the paper's seven shapes) decides
//! queueing behaviour and hop counts, which is exactly the variation the
//! Alberta workloads introduce.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::netsim::{self, NetWorkload};
use alberta_workloads::{Named, Scale};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const FES_REGION: u64 = 0xF000_0000;
const QUEUE_REGION: u64 = 0x1_0000_0000;
const ROUTE_REGION: u64 = 0x1_1000_0000;

/// One simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A message arrives at a node and must be queued or forwarded.
    Arrival {
        /// Message id.
        msg: u32,
        /// Node where it arrives.
        node: u32,
    },
    /// A node finishes transmitting and can start its next queued message.
    TxDone {
        /// The node whose transmitter frees up.
        node: u32,
    },
}

/// Statistics of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Total hops across all delivered messages.
    pub total_hops: u64,
    /// Total queueing + transmission latency in integer microseconds.
    pub total_latency_us: u64,
    /// Events processed (the engine's work metric).
    pub events: u64,
}

struct Fns {
    schedule: FnId,
    handle: FnId,
    route: FnId,
    enqueue: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        schedule: profiler.register_function("omnetpp::schedule_event", 900),
        handle: profiler.register_function("omnetpp::handle_event", 2000),
        route: profiler.register_function("omnetpp::route_lookup", 1200),
        enqueue: profiler.register_function("omnetpp::enqueue", 700),
    }
}

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E3779B97F4A7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// All-pairs next-hop table via BFS per destination (networks are small).
fn routing_table(w: &NetWorkload) -> Vec<Vec<u32>> {
    let n = w.nodes;
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &w.links {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    // table[src][dst] = neighbour of src on a shortest path toward dst.
    let mut table = vec![vec![u32::MAX; n]; n];
    for dst in 0..n {
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[dst] = 0;
        queue.push_back(dst as u32);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u as usize] {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    table[v as usize][dst] = u;
                    queue.push_back(v);
                }
            }
        }
    }
    table
}

/// Runs the simulation, reporting events to the profiler.
pub fn simulate(w: &NetWorkload, profiler: &mut Profiler) -> SimStats {
    let fns = register(profiler);
    let next_hop = routing_table(w);
    let n = w.nodes;

    #[derive(Clone, Copy)]
    struct Msg {
        dst: u32,
        born_us: u64,
        hops: u32,
    }

    let mut msgs: Vec<Msg> = Vec::new();
    // Future event set keyed by (time, seq) for determinism.
    let mut fes: BinaryHeap<Reverse<(u64, u64, EventKind)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut rng = w.traffic_seed;

    fn push(
        fes: &mut BinaryHeap<Reverse<(u64, u64, EventKind)>>,
        profiler: &mut Profiler,
        fns: &Fns,
        time: u64,
        seq: &mut u64,
        kind: EventKind,
    ) {
        profiler.enter(fns.schedule);
        profiler.store(FES_REGION + (*seq % (1 << 18)) * 32);
        profiler.retire(4);
        fes.push(Reverse((time, *seq, kind)));
        *seq += 1;
        profiler.exit();
    }

    // Source traffic: jittered arrivals per node.
    for src in 0..n as u32 {
        let mut t = 0u64;
        for _ in 0..w.messages_per_node {
            t += 1 + splitmix(&mut rng) % (2 * w.mean_link_delay_us as u64 + 1);
            let mut dst = (splitmix(&mut rng) % n as u64) as u32;
            if dst == src {
                dst = (dst + 1) % n as u32;
            }
            let id = msgs.len() as u32;
            msgs.push(Msg {
                dst,
                born_us: t,
                hops: 0,
            });
            push(
                &mut fes,
                profiler,
                &fns,
                t,
                &mut seq,
                EventKind::Arrival { msg: id, node: src },
            );
        }
    }

    // Per-node output queues and busy flags.
    let mut queues: Vec<std::collections::VecDeque<u32>> = vec![Default::default(); n];
    let mut busy = vec![false; n];
    let mut stats = SimStats::default();

    while let Some(Reverse((now, _, kind))) = fes.pop() {
        profiler.enter(fns.handle);
        profiler.load(FES_REGION + (stats.events % (1 << 18)) * 32);
        profiler.retire(6);
        stats.events += 1;
        match kind {
            EventKind::Arrival { msg, node } => {
                let m = msgs[msg as usize];
                let at_destination = node == m.dst;
                profiler.branch(0, at_destination);
                if at_destination {
                    stats.delivered += 1;
                    stats.total_hops += m.hops as u64;
                    stats.total_latency_us += now - m.born_us;
                } else {
                    profiler.enter(fns.enqueue);
                    queues[node as usize].push_back(msg);
                    profiler.store(QUEUE_REGION + node as u64 * 4096);
                    profiler.exit();
                    let idle = !busy[node as usize];
                    profiler.branch(1, idle);
                    if idle {
                        busy[node as usize] = true;
                        push(
                            &mut fes,
                            profiler,
                            &fns,
                            now,
                            &mut seq,
                            EventKind::TxDone { node },
                        );
                    }
                }
            }
            EventKind::TxDone { node } => {
                let next = queues[node as usize].pop_front();
                profiler.branch(2, next.is_some());
                match next {
                    Some(msg) => {
                        let m = &mut msgs[msg as usize];
                        let dst = m.dst;
                        m.hops += 1;
                        profiler.enter(fns.route);
                        let hop = next_hop[node as usize][dst as usize];
                        profiler.load(ROUTE_REGION + (node as u64 * n as u64 + dst as u64) * 4);
                        profiler.retire(3);
                        profiler.exit();
                        let jitter = splitmix(&mut rng) % (w.mean_link_delay_us as u64 / 2 + 1);
                        let arrive = now + w.mean_link_delay_us as u64 + jitter;
                        push(
                            &mut fes,
                            profiler,
                            &fns,
                            arrive,
                            &mut seq,
                            EventKind::Arrival { msg, node: hop },
                        );
                        // The transmitter frees after the send time.
                        push(
                            &mut fes,
                            profiler,
                            &fns,
                            now + w.mean_link_delay_us as u64 / 2 + 1,
                            &mut seq,
                            EventKind::TxDone { node },
                        );
                    }
                    None => {
                        busy[node as usize] = false;
                    }
                }
            }
        }
        profiler.exit();
    }
    stats
}

/// The omnetpp mini-benchmark.
#[derive(Debug)]
pub struct MiniOmnetpp {
    workloads: Vec<Named<NetWorkload>>,
}

impl MiniOmnetpp {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniOmnetpp {
            workloads: standard_set(scale, netsim::train, netsim::refrate, netsim::alberta_set),
        }
    }
}

impl Benchmark for MiniOmnetpp {
    fn name(&self) -> &'static str {
        "520.omnetpp_r"
    }

    fn short_name(&self) -> &'static str {
        "omnetpp"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let w = find_workload(&self.workloads, self.name(), workload)?;
        if !w.is_connected() {
            return Err(BenchError::InvalidInput {
                benchmark: "520.omnetpp_r",
                reason: "network is not connected".to_owned(),
            });
        }
        let stats = simulate(w, profiler);
        Ok(RunOutput {
            checksum: fnv1a([stats.delivered, stats.total_hops, stats.total_latency_us]),
            work: stats.events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_workloads::netsim::{NetGen, Topology};

    fn sim(topology: Topology) -> SimStats {
        let w = NetGen::standard(Scale::Test, topology).generate(3);
        let mut p = Profiler::default();
        let s = simulate(&w, &mut p);
        let _ = p.finish();
        s
    }

    #[test]
    fn all_messages_are_delivered() {
        for topo in [
            Topology::Line,
            Topology::Ring,
            Topology::Star,
            Topology::Tree,
            Topology::Random { edges: 18 },
        ] {
            let w = NetGen::standard(Scale::Test, topo).generate(1);
            let mut p = Profiler::default();
            let s = simulate(&w, &mut p);
            let _ = p.finish();
            let injected = (w.nodes as u32 * w.messages_per_node) as u64;
            assert_eq!(s.delivered, injected, "{topo:?} lost messages");
        }
    }

    #[test]
    fn star_has_shorter_paths_than_line() {
        let star = sim(Topology::Star);
        let line = sim(Topology::Line);
        let star_hops = star.total_hops as f64 / star.delivered as f64;
        let line_hops = line.total_hops as f64 / line.delivered as f64;
        assert!(
            star_hops < line_hops,
            "star {star_hops:.2} vs line {line_hops:.2}"
        );
    }

    #[test]
    fn routing_table_finds_shortest_paths_on_line() {
        let w = NetGen::standard(Scale::Test, Topology::Line).generate(2);
        let table = routing_table(&w);
        // On a line 0-1-2-…, next hop from 0 toward n-1 is 1.
        assert_eq!(table[0][w.nodes - 1], 1);
        assert_eq!(table[w.nodes - 1][0], (w.nodes - 2) as u32);
    }

    #[test]
    fn denser_traffic_processes_more_events() {
        let base = NetGen::standard(Scale::Test, Topology::Ring);
        let mut dense = base;
        dense.messages_per_node *= 4;
        let w1 = base.generate(5);
        let w2 = dense.generate(5);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let s1 = simulate(&w1, &mut p1);
        let s2 = simulate(&w2, &mut p2);
        let _ = (p1.finish(), p2.finish());
        assert!(s2.events > s1.events * 3);
    }

    #[test]
    fn latency_is_positive_and_accumulates() {
        let s = sim(Topology::Tree);
        assert!(s.total_latency_us > 0);
        assert!(s.total_hops >= s.delivered, "every delivery needs ≥1 hop");
    }

    #[test]
    fn benchmark_runs_and_is_deterministic() {
        let b = MiniOmnetpp::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let o1 = b.run("alberta.ring", &mut p1).unwrap();
        let o2 = b.run("alberta.ring", &mut p2).unwrap();
        assert_eq!(o1, o2);
        assert!(o1.work > 0);
        let cov = p1.finish().coverage_percent();
        assert!(cov["omnetpp::handle_event"] > 20.0, "{cov:?}");
    }
}
