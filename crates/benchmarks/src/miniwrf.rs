//! `521.wrf_r` stand-in: a numerical weather-prediction kernel.
//!
//! Evolves a synthetic storm (vorticity-driven wind field plus moisture
//! and temperature tracers) on a 2-D periodic grid with semi-Lagrangian
//! advection, diffusion, and the four switchable physics modules the
//! paper's workloads toggle: cloud microphysics (condensation +
//! precipitation), long-wave radiative cooling, land-surface coupling
//! over generated terrain, and a boundary-layer mixing scheme.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::weather::{self, WeatherWorkload};
use alberta_workloads::{Named, Scale};

const FIELD_REGION: u64 = 0x1_6000_0000;
const TERRAIN_REGION: u64 = 0x1_7000_0000;

/// The prognostic fields of the model.
#[derive(Debug, Clone)]
pub struct Atmosphere {
    n: usize,
    /// Wind components.
    pub u: Vec<f64>,
    /// Wind components.
    pub v: Vec<f64>,
    /// Moisture mixing ratio.
    pub moisture: Vec<f64>,
    /// Temperature anomaly.
    pub temperature: Vec<f64>,
    /// Accumulated precipitation.
    pub precip: Vec<f64>,
    /// Terrain height (static).
    pub terrain: Vec<f64>,
}

struct Fns {
    advect: FnId,
    micro: FnId,
    radiation: FnId,
    surface: FnId,
    pbl: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        advect: profiler.register_function("wrf::advect", 2800),
        micro: profiler.register_function("wrf::microphysics", 1800),
        radiation: profiler.register_function("wrf::radiation", 1200),
        surface: profiler.register_function("wrf::land_surface", 1400),
        pbl: profiler.register_function("wrf::boundary_layer", 1600),
    }
}

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E3779B97F4A7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl Atmosphere {
    /// Initializes the fields from a workload (storm vortex + terrain).
    pub fn new(w: &WeatherWorkload) -> Self {
        let n = w.grid;
        let mut a = Atmosphere {
            n,
            u: vec![0.0; n * n],
            v: vec![0.0; n * n],
            moisture: vec![0.0; n * n],
            temperature: vec![0.0; n * n],
            precip: vec![0.0; n * n],
            terrain: vec![0.0; n * n],
        };
        // Fractal-ish terrain from the seed.
        let mut seed = w.terrain_seed;
        for v in a.terrain.iter_mut() {
            *v = (splitmix(&mut seed) % 1000) as f64 / 1000.0 * 0.4;
        }
        // Smooth the terrain twice.
        for _ in 0..2 {
            let old = a.terrain.clone();
            for y in 0..n {
                for x in 0..n {
                    let mut s = 0.0;
                    for (dx, dy) in [(0i32, 0i32), (1, 0), (-1, 0), (0, 1), (0, -1)] {
                        s += old[a.wrap(x as i32 + dx, y as i32 + dy)];
                    }
                    a.terrain[y * n + x] = s / 5.0;
                }
            }
        }
        // Rankine-style vortex for the storm.
        let cx = w.storm.center.0 * n as f64;
        let cy = w.storm.center.1 * n as f64;
        let radius = w.storm.radius * n as f64;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                let r = (dx * dx + dy * dy).sqrt().max(1e-9);
                let speed = if r < radius {
                    w.storm.intensity * r / radius
                } else {
                    w.storm.intensity * radius / r
                };
                let i = y * n + x;
                a.u[i] = -dy / r * speed + w.storm.steering.0 * 0.3;
                a.v[i] = dx / r * speed + w.storm.steering.1 * 0.3;
                a.moisture[i] = w.storm.moisture * (-r / (2.0 * radius)).exp();
                a.temperature[i] = 0.5 * (-r / radius).exp();
            }
        }
        a
    }

    fn wrap(&self, x: i32, y: i32) -> usize {
        let n = self.n as i32;
        let x = ((x % n) + n) % n;
        let y = ((y % n) + n) % n;
        (y * n + x) as usize
    }

    /// Bilinear sample of a field at fractional coordinates (periodic).
    fn sample(&self, field: &[f64], x: f64, y: f64) -> f64 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let i00 = self.wrap(x0 as i32, y0 as i32);
        let i10 = self.wrap(x0 as i32 + 1, y0 as i32);
        let i01 = self.wrap(x0 as i32, y0 as i32 + 1);
        let i11 = self.wrap(x0 as i32 + 1, y0 as i32 + 1);
        field[i00] * (1.0 - fx) * (1.0 - fy)
            + field[i10] * fx * (1.0 - fy)
            + field[i01] * (1.0 - fx) * fy
            + field[i11] * fx * fy
    }

    /// Total moisture plus accumulated precipitation (conserved when
    /// microphysics is the only moisture sink).
    pub fn total_water(&self) -> f64 {
        self.moisture.iter().sum::<f64>() + self.precip.iter().sum::<f64>()
    }
}

/// Runs one workload; returns the final state and work counter.
pub fn simulate(w: &WeatherWorkload, profiler: &mut Profiler) -> (Atmosphere, u64) {
    let fns = register(profiler);
    let mut a = Atmosphere::new(w);
    let n = a.n;
    let dt = 0.5;
    let mut work = 0u64;
    for _ in 0..w.steps {
        // Semi-Lagrangian advection of all prognostic fields.
        profiler.enter(fns.advect);
        let u0 = a.u.clone();
        let v0 = a.v.clone();
        let m0 = a.moisture.clone();
        let t0 = a.temperature.clone();
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                let sx = x as f64 - u0[i] * dt;
                let sy = y as f64 - v0[i] * dt;
                a.u[i] = a.sample(&u0, sx, sy) * 0.999;
                a.v[i] = a.sample(&v0, sx, sy) * 0.999;
                a.moisture[i] = a.sample(&m0, sx, sy);
                a.temperature[i] = a.sample(&t0, sx, sy);
                profiler.load(FIELD_REGION + i as u64 * 32);
                profiler.store(FIELD_REGION + i as u64 * 32);
                profiler.retire(30);
                work += 1;
            }
        }
        profiler.exit();

        if w.physics.microphysics {
            profiler.enter(fns.micro);
            for i in 0..n * n {
                // Condensation where moisture exceeds a temperature-scaled
                // saturation threshold; condensate precipitates out.
                let saturation = 0.6 + 0.3 * a.temperature[i];
                let excess = a.moisture[i] - saturation;
                profiler.branch(0, excess > 0.0);
                profiler.retire(4);
                if excess > 0.0 {
                    let rain = excess * 0.5;
                    a.moisture[i] -= rain;
                    a.precip[i] += rain;
                    a.temperature[i] += 0.2 * rain; // latent heat
                    profiler.store(FIELD_REGION + i as u64 * 32 + 8);
                }
            }
            profiler.exit();
        }
        if w.physics.longwave_radiation {
            profiler.enter(fns.radiation);
            for i in 0..n * n {
                a.temperature[i] *= 0.98; // radiative cooling toward 0
                profiler.retire(2);
            }
            profiler.exit();
        }
        if w.physics.land_surface {
            profiler.enter(fns.surface);
            for i in 0..n * n {
                // High terrain cools and dries the column; low terrain
                // (water-like) moistens it slightly.
                let h = a.terrain[i];
                profiler.load(TERRAIN_REGION + i as u64 * 8);
                let highland = h > 0.2;
                profiler.branch(1, highland);
                if highland {
                    a.temperature[i] -= 0.01 * h;
                    a.moisture[i] *= 0.995;
                } else {
                    a.moisture[i] += 0.001 * (1.0 - h);
                }
                profiler.retire(5);
            }
            profiler.exit();
        }
        if w.physics.boundary_layer > 0 {
            profiler.enter(fns.pbl);
            let strength = 0.05 * w.physics.boundary_layer as f64;
            let u0 = a.u.clone();
            let v0 = a.v.clone();
            for y in 0..n {
                for x in 0..n {
                    let i = y * n + x;
                    let mut su = 0.0;
                    let mut sv = 0.0;
                    for (dx, dy) in [(1i32, 0i32), (-1, 0), (0, 1), (0, -1)] {
                        let j = a.wrap(x as i32 + dx, y as i32 + dy);
                        su += u0[j];
                        sv += v0[j];
                    }
                    a.u[i] += strength * (su / 4.0 - u0[i]);
                    a.v[i] += strength * (sv / 4.0 - v0[i]);
                    profiler.retire(12);
                }
            }
            profiler.exit();
        }
    }
    (a, work)
}

/// The wrf mini-benchmark.
#[derive(Debug)]
pub struct MiniWrf {
    workloads: Vec<Named<WeatherWorkload>>,
}

impl MiniWrf {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniWrf {
            workloads: standard_set(
                scale,
                weather::train,
                weather::refrate,
                weather::alberta_set,
            ),
        }
    }
}

impl Benchmark for MiniWrf {
    fn name(&self) -> &'static str {
        "521.wrf_r"
    }

    fn short_name(&self) -> &'static str {
        "wrf"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let w = find_workload(&self.workloads, self.name(), workload)?;
        let (atmos, work) = simulate(w, profiler);
        let total_precip: f64 = atmos.precip.iter().sum();
        if !total_precip.is_finite() {
            return Err(BenchError::InvalidInput {
                benchmark: "521.wrf_r",
                reason: "forecast diverged".to_owned(),
            });
        }
        Ok(RunOutput {
            checksum: fnv1a([total_precip.to_bits(), atmos.total_water().to_bits()]),
            work,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_workloads::weather::{PhysicsOptions, Storm, WeatherGen};

    fn workload(storm: Storm, physics: PhysicsOptions, steps: usize) -> WeatherWorkload {
        let mut gen = WeatherGen::standard(Scale::Test);
        gen.steps = steps;
        gen.generate(storm, physics, 11)
    }

    fn run(w: &WeatherWorkload) -> (Atmosphere, u64) {
        let mut p = Profiler::default();
        let out = simulate(w, &mut p);
        let _ = p.finish();
        out
    }

    #[test]
    fn initial_vortex_rotates_around_center() {
        let w = workload(Storm::katrina(), PhysicsOptions::dynamics_only(), 1);
        let a = Atmosphere::new(&w);
        let n = a.n;
        let cx = (w.storm.center.0 * n as f64) as usize;
        let cy = (w.storm.center.1 * n as f64) as usize;
        // East of the center the wind blows north-ish (v > steering bias).
        let east = cy * n + (cx + 3).min(n - 1);
        assert!(a.v[east] > a.v[cy * n + cx], "cyclonic rotation expected");
    }

    #[test]
    fn water_is_conserved_with_microphysics_only() {
        let physics = PhysicsOptions {
            microphysics: true,
            ..PhysicsOptions::dynamics_only()
        };
        let w = workload(Storm::rusa(), physics, 4);
        let a0 = Atmosphere::new(&w);
        let before = a0.total_water();
        let (a, _) = run(&w);
        let after = a.total_water();
        // Semi-Lagrangian advection is not exactly conservative, but the
        // microphysics moisture→precip exchange must be: allow only the
        // small interpolation drift.
        let drift = (after - before).abs() / before;
        assert!(drift < 0.05, "water drift {drift}");
    }

    #[test]
    fn microphysics_produces_rain_in_a_moist_storm() {
        let physics = PhysicsOptions {
            microphysics: true,
            ..PhysicsOptions::dynamics_only()
        };
        let w = workload(Storm::katrina(), physics, 5);
        let (a, _) = run(&w);
        assert!(a.precip.iter().sum::<f64>() > 0.0, "no rain fell");
    }

    #[test]
    fn dynamics_only_never_rains() {
        let w = workload(Storm::katrina(), PhysicsOptions::dynamics_only(), 5);
        let (a, _) = run(&w);
        assert_eq!(a.precip.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn radiation_cools_the_domain() {
        let with = workload(
            Storm::rusa(),
            PhysicsOptions {
                longwave_radiation: true,
                ..PhysicsOptions::dynamics_only()
            },
            6,
        );
        let without = workload(Storm::rusa(), PhysicsOptions::dynamics_only(), 6);
        let (a1, _) = run(&with);
        let (a2, _) = run(&without);
        let t1: f64 = a1.temperature.iter().sum();
        let t2: f64 = a2.temperature.iter().sum();
        assert!(t1 < t2, "radiation must cool: {t1} vs {t2}");
    }

    #[test]
    fn boundary_layer_smooths_the_wind_field() {
        let with = workload(
            Storm::katrina(),
            PhysicsOptions {
                boundary_layer: 2,
                ..PhysicsOptions::dynamics_only()
            },
            4,
        );
        let without = workload(Storm::katrina(), PhysicsOptions::dynamics_only(), 4);
        let (a1, _) = run(&with);
        let (a2, _) = run(&without);
        let roughness = |a: &Atmosphere| -> f64 {
            let n = a.n;
            let mut r = 0.0;
            for y in 0..n {
                for x in 0..n - 1 {
                    r += (a.u[y * n + x + 1] - a.u[y * n + x]).abs();
                }
            }
            r
        };
        assert!(roughness(&a1) < roughness(&a2), "PBL must smooth wind");
    }

    #[test]
    fn physics_options_change_executed_work_mix() {
        let full = workload(Storm::katrina(), PhysicsOptions::full(), 3);
        let dynamics = workload(Storm::katrina(), PhysicsOptions::dynamics_only(), 3);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        simulate(&full, &mut p1);
        simulate(&dynamics, &mut p2);
        let cov_full = p1.finish().coverage_percent();
        let cov_dyn = p2.finish().coverage_percent();
        assert!(cov_full["wrf::microphysics"] > 0.0);
        assert_eq!(cov_dyn["wrf::microphysics"], 0.0);
        assert!(cov_dyn["wrf::advect"] > cov_full["wrf::advect"]);
    }

    #[test]
    fn benchmark_runs_and_is_deterministic() {
        let b = MiniWrf::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let o1 = b.run("alberta.katrina.full", &mut p1).unwrap();
        let o2 = b.run("alberta.katrina.full", &mut p2).unwrap();
        assert_eq!(o1, o2);
        assert!(o1.work > 0);
    }
}
