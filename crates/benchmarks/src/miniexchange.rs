//! `548.exchange2_r` stand-in: a Sudoku puzzle generator driven by seed
//! puzzles.
//!
//! The SPEC benchmark reads a collection of valid puzzles and generates
//! new puzzles with identical clue patterns. This mini does the same:
//! for each seed it (1) solves the seed with a bitmask backtracking
//! solver, (2) derives new solved grids by validity-preserving digit
//! relabelings, (3) masks them with the seed's clue pattern, and (4)
//! verifies each derived puzzle by re-solving it and counting solutions
//! up to two. The backtracking solver dominates the run, exactly like the
//! Fortran original.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::sudoku::{self, Puzzle, SudokuWorkload};
use alberta_workloads::{Named, Scale};

const GRID_REGION: u64 = 0x4000_0000;
const MASK_REGION: u64 = 0x5000_0000;

/// The exchange2 mini-benchmark.
#[derive(Debug)]
pub struct MiniExchange {
    workloads: Vec<Named<SudokuWorkload>>,
}

impl MiniExchange {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniExchange {
            workloads: standard_set(scale, sudoku::train, sudoku::refrate, sudoku::alberta_set),
        }
    }
}

impl Benchmark for MiniExchange {
    fn name(&self) -> &'static str {
        "548.exchange2_r"
    }

    fn short_name(&self) -> &'static str {
        "exchange2"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let w = find_workload(&self.workloads, self.name(), workload)?;
        let fns = register(profiler);
        let mut checksums = Vec::new();
        let mut generated = 0u64;
        for (si, seed_puzzle) in w.seeds.iter().enumerate() {
            if !seed_puzzle.is_consistent() {
                return Err(BenchError::InvalidInput {
                    benchmark: "548.exchange2_r",
                    reason: format!("seed puzzle {si} is inconsistent"),
                });
            }
            profiler.enter(fns.generate);
            let solution = match solve(seed_puzzle, profiler, &fns) {
                Some(s) => s,
                None => {
                    profiler.exit();
                    return Err(BenchError::InvalidInput {
                        benchmark: "548.exchange2_r",
                        reason: format!("seed puzzle {si} is unsolvable"),
                    });
                }
            };
            for k in 0..w.puzzles_per_seed {
                // Derived solved grid: rotate digit labels by k+1.
                let mut derived = solution;
                for cell in derived.0.iter_mut() {
                    *cell = (*cell + k as u8) % 9 + 1;
                    profiler.retire(1);
                }
                // Same clue pattern as the seed.
                let mut new_puzzle = derived;
                for (i, &c) in seed_puzzle.0.iter().enumerate() {
                    let keep = c != 0;
                    profiler.branch(0, keep);
                    profiler.load(MASK_REGION + i as u64);
                    if !keep {
                        new_puzzle.0[i] = 0;
                    }
                }
                // Verification pass: the derived puzzle must be solvable;
                // count up to two solutions like real generators do.
                let solutions = count_solutions(&new_puzzle, 2, profiler, &fns);
                assert!(solutions >= 1, "derived puzzle lost solvability");
                generated += 1;
                checksums.push(fnv1a(new_puzzle.0.iter().map(|&b| b as u64)));
            }
            profiler.exit();
        }
        Ok(RunOutput {
            checksum: fnv1a(checksums),
            work: generated,
        })
    }
}

pub(crate) struct Fns {
    solve: FnId,
    candidates: FnId,
    generate: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        generate: profiler.register_function("exchange2::generate", 800),
        solve: profiler.register_function("exchange2::solve", 1600),
        candidates: profiler.register_function("exchange2::candidates", 500),
    }
}

/// Solves a puzzle with a throwaway profiler; the entry point for
/// integration and property tests that only care about the solution.
pub fn solve_for_tests(puzzle: &Puzzle) -> Option<Puzzle> {
    let mut profiler = Profiler::default();
    let fns = register(&mut profiler);
    let solution = solve(puzzle, &mut profiler, &fns);
    let _ = profiler.finish();
    solution
}

/// Bitmask state: rows/cols/boxes track used digits.
struct Masks {
    rows: [u16; 9],
    cols: [u16; 9],
    boxes: [u16; 9],
}

impl Masks {
    fn of(puzzle: &Puzzle) -> Option<Masks> {
        let mut m = Masks {
            rows: [0; 9],
            cols: [0; 9],
            boxes: [0; 9],
        };
        for r in 0..9 {
            for c in 0..9 {
                let d = puzzle.0[r * 9 + c];
                if d == 0 {
                    continue;
                }
                let bit = 1u16 << d;
                let b = (r / 3) * 3 + c / 3;
                if m.rows[r] & bit != 0 || m.cols[c] & bit != 0 || m.boxes[b] & bit != 0 {
                    return None;
                }
                m.rows[r] |= bit;
                m.cols[c] |= bit;
                m.boxes[b] |= bit;
            }
        }
        Some(m)
    }
}

/// Solves a puzzle by backtracking; returns the first solution found.
pub(crate) fn solve(puzzle: &Puzzle, profiler: &mut Profiler, fns: &Fns) -> Option<Puzzle> {
    let mut grid = *puzzle;
    let mut masks = Masks::of(puzzle)?;
    if solve_rec(&mut grid, &mut masks, 0, profiler, fns) {
        Some(grid)
    } else {
        None
    }
}

fn solve_rec(
    grid: &mut Puzzle,
    masks: &mut Masks,
    from: usize,
    profiler: &mut Profiler,
    fns: &Fns,
) -> bool {
    profiler.enter(fns.solve);
    // Find the next empty cell (first-empty heuristic keeps the search
    // shape close to the Fortran original's nested loops).
    let mut cell = from;
    while cell < 81 {
        let empty = grid.0[cell] == 0;
        profiler.branch(1, empty);
        profiler.load(GRID_REGION + cell as u64);
        if empty {
            break;
        }
        cell += 1;
    }
    if cell == 81 {
        profiler.exit();
        return true;
    }
    let (r, c) = (cell / 9, cell % 9);
    let b = (r / 3) * 3 + c / 3;
    profiler.enter(fns.candidates);
    let used = masks.rows[r] | masks.cols[c] | masks.boxes[b];
    profiler.retire(3);
    profiler.exit();
    for d in 1..=9u8 {
        let bit = 1u16 << d;
        let free = used & bit == 0;
        profiler.branch(2, free);
        // The Fortran original performs substantial index arithmetic per
        // candidate (its digit bookkeeping is unrolled loops, not bit
        // masks); account the equivalent straight-line work.
        profiler.retire(5);
        if !free {
            continue;
        }
        grid.0[cell] = d;
        masks.rows[r] |= bit;
        masks.cols[c] |= bit;
        masks.boxes[b] |= bit;
        profiler.retire(8);
        profiler.store(GRID_REGION + cell as u64);
        if solve_rec(grid, masks, cell + 1, profiler, fns) {
            profiler.exit();
            return true;
        }
        grid.0[cell] = 0;
        masks.rows[r] &= !bit;
        masks.cols[c] &= !bit;
        masks.boxes[b] &= !bit;
    }
    profiler.exit();
    false
}

/// Counts solutions up to `limit` by exhaustive backtracking.
pub(crate) fn count_solutions(
    puzzle: &Puzzle,
    limit: u32,
    profiler: &mut Profiler,
    fns: &Fns,
) -> u32 {
    let mut grid = *puzzle;
    let mut masks = match Masks::of(puzzle) {
        Some(m) => m,
        None => return 0,
    };
    let mut found = 0;
    count_rec(&mut grid, &mut masks, 0, limit, &mut found, profiler, fns);
    found
}

#[allow(clippy::too_many_arguments)]
fn count_rec(
    grid: &mut Puzzle,
    masks: &mut Masks,
    from: usize,
    limit: u32,
    found: &mut u32,
    profiler: &mut Profiler,
    fns: &Fns,
) {
    if *found >= limit {
        return;
    }
    profiler.enter(fns.solve);
    let mut cell = from;
    while cell < 81 && grid.0[cell] != 0 {
        profiler.load(GRID_REGION + cell as u64);
        cell += 1;
    }
    if cell == 81 {
        *found += 1;
        profiler.exit();
        return;
    }
    let (r, c) = (cell / 9, cell % 9);
    let b = (r / 3) * 3 + c / 3;
    let used = masks.rows[r] | masks.cols[c] | masks.boxes[b];
    for d in 1..=9u8 {
        let bit = 1u16 << d;
        let free = used & bit == 0;
        profiler.branch(3, free);
        if !free {
            continue;
        }
        grid.0[cell] = d;
        masks.rows[r] |= bit;
        masks.cols[c] |= bit;
        masks.boxes[b] |= bit;
        count_rec(grid, masks, cell + 1, limit, found, profiler, fns);
        grid.0[cell] = 0;
        masks.rows[r] &= !bit;
        masks.cols[c] &= !bit;
        masks.boxes[b] &= !bit;
        if *found >= limit {
            break;
        }
    }
    profiler.exit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_workloads::sudoku::generate_puzzle;

    fn with_profiler<T>(f: impl FnOnce(&mut Profiler, &Fns) -> T) -> T {
        let mut p = Profiler::default();
        let fns = register(&mut p);
        let out = f(&mut p, &fns);
        let _ = p.finish();
        out
    }

    #[test]
    fn solves_generated_puzzles_to_valid_solutions() {
        for seed in 0..6 {
            let puzzle = generate_puzzle(seed, 30);
            let solution = with_profiler(|p, fns| solve(&puzzle, p, fns)).expect("solvable");
            assert!(solution.is_solved());
            // Solution extends the clues.
            for i in 0..81 {
                if puzzle.0[i] != 0 {
                    assert_eq!(puzzle.0[i], solution.0[i], "clue changed at {i}");
                }
            }
        }
    }

    #[test]
    fn solved_puzzle_has_exactly_one_solution() {
        let full = sudoku::solved_grid(4);
        let n = with_profiler(|p, fns| count_solutions(&full, 5, p, fns));
        assert_eq!(n, 1);
    }

    #[test]
    fn empty_grid_has_many_solutions() {
        let empty = Puzzle([0; 81]);
        let n = with_profiler(|p, fns| count_solutions(&empty, 3, p, fns));
        assert_eq!(n, 3, "limit caps the count");
    }

    #[test]
    fn inconsistent_puzzle_has_no_solutions() {
        let mut bad = sudoku::solved_grid(1);
        bad.0[1] = bad.0[0];
        assert!(with_profiler(|p, fns| solve(&bad, p, fns)).is_none());
        assert_eq!(with_profiler(|p, fns| count_solutions(&bad, 2, p, fns)), 0);
    }

    #[test]
    fn benchmark_runs_and_profiles() {
        let b = MiniExchange::new(Scale::Test);
        let mut p = Profiler::default();
        let out = b.run("alberta.0", &mut p).unwrap();
        let profile = p.finish();
        assert!(out.work > 0);
        let cov = profile.coverage_percent();
        assert!(
            cov["exchange2::solve"] > 50.0,
            "backtracking must dominate: {cov:?}"
        );
    }

    #[test]
    fn determinism() {
        let b = MiniExchange::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        assert_eq!(
            b.run("train", &mut p1).unwrap(),
            b.run("train", &mut p2).unwrap()
        );
    }
}
