//! `531.deepsjeng_r` stand-in: a chess engine performing α–β tree search.
//!
//! Implements a 0x88-board chess engine: pseudo-legal move generation
//! with legality filtering, material + piece-square evaluation, negamax
//! α–β search with a transposition table and MVV-LVA move ordering, and a
//! capture-only quiescence search. Move generation is validated against
//! the standard perft node counts.
//!
//! Simplifications relative to full chess (documented substitutions):
//! castling and en passant are omitted and promotion is always to a
//! queen. Workload positions are derived by playing seeded random legal
//! moves from the initial position, so they are legal by construction —
//! the role the Arasan test-suite positions play in the paper.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::chess::{self, ChessWorkload, PositionSpec};
use alberta_workloads::{Named, Scale};

const BOARD_REGION: u64 = 0x6000_0000;
const TT_REGION: u64 = 0x7000_0000;

/// Piece codes; positive = white, negative = black, 0 = empty.
pub mod piece {
    /// Pawn.
    pub const PAWN: i8 = 1;
    /// Knight.
    pub const KNIGHT: i8 = 2;
    /// Bishop.
    pub const BISHOP: i8 = 3;
    /// Rook.
    pub const ROOK: i8 = 4;
    /// Queen.
    pub const QUEEN: i8 = 5;
    /// King.
    pub const KING: i8 = 6;
}

/// A chess position on a 0x88 board.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Board {
    /// 128-cell 0x88 board.
    pub squares: [i8; 128],
    /// Side to move: 1 = white, -1 = black.
    pub side: i8,
    /// Cached king squares: `[white, black]`. Kept in sync by
    /// [`Board::make`]/[`Board::unmake`]; may briefly point at a captured
    /// king inside pseudo-legal lines, which [`Board::in_check`] detects.
    kings: [u8; 2],
}

/// A move: from/to 0x88 indices plus the captured piece for unmake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    from: u8,
    to: u8,
    captured: i8,
    promotion: bool,
}

impl Board {
    /// The initial chess position.
    pub fn initial() -> Self {
        use piece::*;
        let mut squares = [0i8; 128];
        let back = [ROOK, KNIGHT, BISHOP, QUEEN, KING, BISHOP, KNIGHT, ROOK];
        for (f, &p) in back.iter().enumerate() {
            squares[f] = p; // white back rank (rank 0)
            squares[0x10 + f] = PAWN;
            squares[0x60 + f] = -PAWN;
            squares[0x70 + f] = -p;
        }
        Board {
            squares,
            side: 1,
            kings: [0x04, 0x74],
        }
    }

    fn on_board(sq: i16) -> bool {
        sq & 0x88 == 0 && sq >= 0
    }

    /// Generates pseudo-legal moves (may leave own king in check).
    pub fn pseudo_moves(&self, out: &mut Vec<Move>) {
        use piece::*;
        out.clear();
        const KNIGHT_D: [i16; 8] = [14, 18, 31, 33, -14, -18, -31, -33];
        const KING_D: [i16; 8] = [1, -1, 16, -16, 15, 17, -15, -17];
        const BISHOP_D: [i16; 4] = [15, 17, -15, -17];
        const ROOK_D: [i16; 4] = [1, -1, 16, -16];
        for from in 0..128u8 {
            if from & 0x88 != 0 {
                continue;
            }
            let p = self.squares[from as usize];
            if p == 0 || p.signum() != self.side {
                continue;
            }
            match p.abs() {
                PAWN => {
                    let dir: i16 = if self.side == 1 { 16 } else { -16 };
                    let fwd = from as i16 + dir;
                    if Board::on_board(fwd) && self.squares[fwd as usize] == 0 {
                        out.push(self.mk(from, fwd as u8));
                        // Double push from the home rank.
                        let home = if self.side == 1 { 1 } else { 6 };
                        let fwd2 = fwd + dir;
                        if (from >> 4) == home
                            && Board::on_board(fwd2)
                            && self.squares[fwd2 as usize] == 0
                        {
                            out.push(self.mk(from, fwd2 as u8));
                        }
                    }
                    for dd in [dir - 1, dir + 1] {
                        let t = from as i16 + dd;
                        if Board::on_board(t) {
                            let q = self.squares[t as usize];
                            if q != 0 && q.signum() != self.side {
                                out.push(self.mk(from, t as u8));
                            }
                        }
                    }
                }
                KNIGHT => self.step_moves(from, &KNIGHT_D, out),
                KING => self.step_moves(from, &KING_D, out),
                BISHOP => self.slide_moves(from, &BISHOP_D, out),
                ROOK => self.slide_moves(from, &ROOK_D, out),
                QUEEN => {
                    self.slide_moves(from, &BISHOP_D, out);
                    self.slide_moves(from, &ROOK_D, out);
                }
                _ => unreachable!("invalid piece code"),
            }
        }
    }

    fn mk(&self, from: u8, to: u8) -> Move {
        let promotion =
            self.squares[from as usize].abs() == piece::PAWN && matches!(to >> 4, 0 | 7);
        Move {
            from,
            to,
            captured: self.squares[to as usize],
            promotion,
        }
    }

    fn step_moves(&self, from: u8, deltas: &[i16], out: &mut Vec<Move>) {
        for &d in deltas {
            let t = from as i16 + d;
            if Board::on_board(t) {
                let q = self.squares[t as usize];
                if q == 0 || q.signum() != self.side {
                    out.push(self.mk(from, t as u8));
                }
            }
        }
    }

    fn slide_moves(&self, from: u8, deltas: &[i16], out: &mut Vec<Move>) {
        for &d in deltas {
            let mut t = from as i16 + d;
            while Board::on_board(t) {
                let q = self.squares[t as usize];
                if q == 0 {
                    out.push(self.mk(from, t as u8));
                } else {
                    if q.signum() != self.side {
                        out.push(self.mk(from, t as u8));
                    }
                    break;
                }
                t += d;
            }
        }
    }

    fn king_index(side: i8) -> usize {
        if side == 1 {
            0
        } else {
            1
        }
    }

    /// Applies a move.
    pub fn make(&mut self, m: Move) {
        let mut p = self.squares[m.from as usize];
        if m.promotion {
            p = piece::QUEEN * p.signum();
        }
        if p.abs() == piece::KING {
            self.kings[Board::king_index(p.signum())] = m.to;
        }
        self.squares[m.to as usize] = p;
        self.squares[m.from as usize] = 0;
        self.side = -self.side;
    }

    /// Reverts a move made by [`Board::make`].
    pub fn unmake(&mut self, m: Move) {
        let mut p = self.squares[m.to as usize];
        if m.promotion {
            p = piece::PAWN * p.signum();
        }
        if p.abs() == piece::KING {
            self.kings[Board::king_index(p.signum())] = m.from;
        }
        self.squares[m.from as usize] = p;
        self.squares[m.to as usize] = m.captured;
        self.side = -self.side;
    }

    /// Whether `side`'s king is attacked.
    pub fn in_check(&self, side: i8) -> bool {
        use piece::*;
        let cached = self.kings[Board::king_index(side)] as usize;
        if self.squares[cached] != KING * side {
            return true; // king captured in a pseudo-legal line
        }
        let ks = cached as i16;
        // Knights.
        for d in [14i16, 18, 31, 33, -14, -18, -31, -33] {
            let t = ks + d;
            if Board::on_board(t) && self.squares[t as usize] == -side * KNIGHT {
                return true;
            }
        }
        // Sliders and king adjacency.
        for (deltas, pieces) in [
            ([15i16, 17, -15, -17].as_slice(), [BISHOP, QUEEN].as_slice()),
            ([1i16, -1, 16, -16].as_slice(), [ROOK, QUEEN].as_slice()),
        ] {
            for &d in deltas {
                let mut t = ks + d;
                let mut first = true;
                while Board::on_board(t) {
                    let q = self.squares[t as usize];
                    if q != 0 {
                        if q.signum() == -side {
                            let a = q.abs();
                            if pieces.contains(&a) || (first && a == KING) {
                                return true;
                            }
                        }
                        break;
                    }
                    t += d;
                    first = false;
                }
            }
        }
        // Pawns.
        let dir: i16 = if side == 1 { 16 } else { -16 };
        for dd in [dir - 1, dir + 1] {
            let t = ks + dd;
            if Board::on_board(t) && self.squares[t as usize] == -side * PAWN {
                return true;
            }
        }
        false
    }

    /// Generates fully legal moves.
    pub fn legal_moves(&mut self) -> Vec<Move> {
        let mut pseudo = Vec::with_capacity(64);
        self.pseudo_moves(&mut pseudo);
        let side = self.side;
        pseudo
            .into_iter()
            .filter(|&m| {
                self.make(m);
                let ok = !self.in_check(side);
                self.unmake(m);
                ok
            })
            .collect()
    }

    /// Perft node count (for move-generator validation).
    pub fn perft(&mut self, depth: u32) -> u64 {
        if depth == 0 {
            return 1;
        }
        let moves = self.legal_moves();
        if depth == 1 {
            return moves.len() as u64;
        }
        let mut nodes = 0;
        for m in moves {
            self.make(m);
            nodes += self.perft(depth - 1);
            self.unmake(m);
        }
        nodes
    }

    /// Zobrist-style hash of the position.
    pub fn hash(&self) -> u64 {
        let mut h = if self.side == 1 { 0x9E37 } else { 0x79B9 };
        for s in 0..128 {
            if s & 0x88 == 0 && self.squares[s] != 0 {
                let code = (self.squares[s] + 6) as u64;
                h ^= splitmix(code * 131 + s as u64);
            }
        }
        h
    }

    /// Derives a position by playing `spec.random_moves` seeded random
    /// legal moves from the initial position (stops early at mate or
    /// stalemate).
    pub fn from_spec(spec: &PositionSpec) -> Board {
        let mut board = Board::initial();
        let mut state = spec.seed;
        for _ in 0..spec.random_moves {
            let moves = board.legal_moves();
            if moves.is_empty() {
                break;
            }
            state = splitmix(state);
            let m = moves[(state % moves.len() as u64) as usize];
            board.make(m);
        }
        board
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

const PIECE_VALUE: [i32; 7] = [0, 100, 320, 330, 500, 900, 20000];

/// Center-weighted piece-square bonus.
fn square_bonus(sq: u8) -> i32 {
    let file = (sq & 7) as i32;
    let rank = (sq >> 4) as i32;
    let df = (file - 3).abs().min((file - 4).abs());
    let dr = (rank - 3).abs().min((rank - 4).abs());
    8 - 2 * (df + dr)
}

struct Engine<'a> {
    board: Board,
    profiler: &'a mut Profiler,
    fns: Fns,
    tt: Vec<(u64, i32, u32)>, // (hash, score, depth)
    nodes: u64,
}

struct Fns {
    search: FnId,
    quiesce: FnId,
    movegen: FnId,
    evaluate: FnId,
    make_move: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        search: profiler.register_function("deepsjeng::search", 2600),
        quiesce: profiler.register_function("deepsjeng::qsearch", 1200),
        movegen: profiler.register_function("deepsjeng::gen_moves", 1800),
        evaluate: profiler.register_function("deepsjeng::evaluate", 1400),
        make_move: profiler.register_function("deepsjeng::make", 400),
    }
}

const TT_SIZE: usize = 1 << 12;
const MATE: i32 = 100_000;

impl Engine<'_> {
    fn evaluate(&mut self) -> i32 {
        self.profiler.enter(self.fns.evaluate);
        let mut score = 0;
        for s in 0..128u8 {
            if s & 0x88 != 0 {
                continue;
            }
            let p = self.board.squares[s as usize];
            // The board scan reads one cache line per rank; reporting one
            // load per eight squares models that without drowning the
            // profiler in events.
            if s % 8 == 0 {
                self.profiler.load(BOARD_REGION + s as u64);
            }
            if p != 0 {
                let v = PIECE_VALUE[p.unsigned_abs() as usize] + square_bonus(s);
                score += v * p.signum() as i32;
                self.profiler.retire(2);
            }
        }
        self.profiler.exit();
        score * self.board.side as i32
    }

    fn ordered_moves(&mut self, captures_only: bool) -> Vec<Move> {
        self.profiler.enter(self.fns.movegen);
        let mut moves = self.board.legal_moves();
        self.profiler.retire(moves.len() as u64 * 4);
        for m in &moves {
            self.profiler.load(BOARD_REGION + m.from as u64);
        }
        if captures_only {
            moves.retain(|m| m.captured != 0);
        }
        // MVV-LVA: most valuable victim, least valuable attacker first.
        moves.sort_by_key(|m| {
            let victim = PIECE_VALUE[m.captured.unsigned_abs() as usize];
            let attacker = PIECE_VALUE[self.board.squares[m.from as usize].unsigned_abs() as usize];
            -(victim * 100 - attacker)
        });
        self.profiler.exit();
        moves
    }

    fn quiesce(&mut self, mut alpha: i32, beta: i32) -> i32 {
        self.profiler.enter(self.fns.quiesce);
        self.nodes += 1;
        let stand = self.evaluate();
        if stand >= beta {
            self.profiler.branch(10, true);
            self.profiler.exit();
            return beta;
        }
        self.profiler.branch(10, false);
        alpha = alpha.max(stand);
        for m in self.ordered_moves(true) {
            self.make(m);
            let score = -self.quiesce(-beta, -alpha);
            self.unmake(m);
            let cut = score >= beta;
            self.profiler.branch(11, cut);
            if cut {
                self.profiler.exit();
                return beta;
            }
            alpha = alpha.max(score);
        }
        self.profiler.exit();
        alpha
    }

    fn make(&mut self, m: Move) {
        self.profiler.enter(self.fns.make_move);
        self.profiler.store(BOARD_REGION + m.to as u64);
        self.profiler.store(BOARD_REGION + m.from as u64);
        self.profiler.retire(3);
        self.board.make(m);
        self.profiler.exit();
    }

    fn unmake(&mut self, m: Move) {
        self.board.unmake(m);
        self.profiler.retire(3);
    }

    fn search(&mut self, depth: u32, mut alpha: i32, beta: i32) -> i32 {
        self.profiler.enter(self.fns.search);
        self.nodes += 1;
        let hash = self.board.hash();
        let slot = (hash as usize) & (TT_SIZE - 1);
        self.profiler.load(TT_REGION + slot as u64 * 16);
        let (tt_hash, tt_score, tt_depth) = self.tt[slot];
        let tt_hit = tt_hash == hash && tt_depth >= depth;
        self.profiler.branch(12, tt_hit);
        if tt_hit {
            self.profiler.exit();
            return tt_score;
        }
        if depth == 0 {
            let score = self.quiesce(alpha, beta);
            self.profiler.exit();
            return score;
        }
        let moves = self.ordered_moves(false);
        if moves.is_empty() {
            let side = self.board.side;
            let score = if self.board.in_check(side) { -MATE } else { 0 };
            self.profiler.exit();
            return score;
        }
        let mut best = -MATE * 2;
        for m in moves {
            self.make(m);
            let score = -self.search(depth - 1, -beta, -alpha);
            self.unmake(m);
            best = best.max(score);
            alpha = alpha.max(score);
            let cut = alpha >= beta;
            self.profiler.branch(13, cut);
            if cut {
                break;
            }
        }
        self.tt[slot] = (hash, best, depth);
        self.profiler.store(TT_REGION + slot as u64 * 16);
        self.profiler.exit();
        best
    }
}

/// Searches one position spec to its depth; returns (score, nodes).
pub fn analyze(spec: &PositionSpec, profiler: &mut Profiler) -> (i32, u64) {
    let fns = register(profiler);
    let board = Board::from_spec(spec);
    let mut engine = Engine {
        board,
        profiler,
        fns,
        tt: vec![(0, 0, u32::MAX); TT_SIZE],
        nodes: 0,
    };
    // Fresh TT depth marker must not fake a hit: use depth 0 sentinel.
    for slot in engine.tt.iter_mut() {
        *slot = (u64::MAX, 0, 0);
    }
    let score = engine.search(spec.depth, -MATE * 2, MATE * 2);
    (score, engine.nodes)
}

/// The deepsjeng mini-benchmark.
#[derive(Debug)]
pub struct MiniDeepsjeng {
    workloads: Vec<Named<ChessWorkload>>,
}

impl MiniDeepsjeng {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniDeepsjeng {
            workloads: standard_set(scale, chess::train, chess::refrate, chess::alberta_set),
        }
    }
}

impl Benchmark for MiniDeepsjeng {
    fn name(&self) -> &'static str {
        "531.deepsjeng_r"
    }

    fn short_name(&self) -> &'static str {
        "deepsjeng"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let w = find_workload(&self.workloads, self.name(), workload)?;
        let mut scores = Vec::new();
        let mut nodes = 0;
        for (i, spec) in w.positions.iter().enumerate() {
            // A zero-ply search task is as meaningless as an illegal FEN:
            // reject it up front instead of "searching" it.
            if spec.depth == 0 {
                return Err(BenchError::InvalidInput {
                    benchmark: "531.deepsjeng_r",
                    reason: format!("position {i} has illegal search depth 0"),
                });
            }
            let (score, n) = analyze(spec, profiler);
            scores.push(score as u64);
            nodes += n;
        }
        Ok(RunOutput {
            checksum: fnv1a(scores),
            work: nodes,
        })
    }

    fn inject_malformed(&mut self, workload: &str, seed: u64) -> bool {
        self.workloads
            .iter_mut()
            .find(|n| n.name == workload)
            .map(|n| n.workload.corrupt(seed))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perft_matches_standard_counts() {
        // Standard chess perft; no castling/en passant is reachable at
        // these depths from the initial position, so the counts match
        // full chess.
        let mut b = Board::initial();
        assert_eq!(b.perft(1), 20);
        assert_eq!(b.perft(2), 400);
        assert_eq!(b.perft(3), 8902);
    }

    #[test]
    fn make_unmake_round_trips() {
        let mut b = Board::initial();
        let snapshot = b.clone();
        for m in b.legal_moves() {
            b.make(m);
            b.unmake(m);
            assert_eq!(b, snapshot, "unmake failed for {m:?}");
        }
    }

    #[test]
    fn initial_position_is_not_check() {
        let b = Board::initial();
        assert!(!b.in_check(1));
        assert!(!b.in_check(-1));
    }

    #[test]
    fn scholars_mate_is_detected_as_winning_capture_line() {
        // A queen en prise must be captured by the search: material swing
        // visible at depth 2.
        let mut b = Board::initial();
        // Hang a black queen on a3 (0x20): the b1 knight captures it
        // outright and nothing defends the square.
        b.squares[0x20] = -piece::QUEEN;
        let spec = PositionSpec {
            seed: 0,
            random_moves: 0,
            depth: 2,
        };
        let mut p = Profiler::default();
        let fns = register(&mut p);
        let mut engine = Engine {
            board: b,
            profiler: &mut p,
            fns,
            tt: vec![(u64::MAX, 0, 0); TT_SIZE],
            nodes: 0,
        };
        // Statically, white is down a full queen...
        let static_eval = engine.evaluate();
        assert!(
            static_eval < -700,
            "static eval should show the deficit: {static_eval}"
        );
        // ...but the search finds Nxa3 and restores material equality.
        let score = engine.search(spec.depth, -MATE * 2, MATE * 2);
        assert!(
            score > -200,
            "search must recover the queen (≈0), got {score}"
        );
        let _ = p.finish();
    }

    #[test]
    fn from_spec_is_deterministic_and_legal() {
        let spec = PositionSpec {
            seed: 99,
            random_moves: 30,
            depth: 1,
        };
        let a = Board::from_spec(&spec);
        let b = Board::from_spec(&spec);
        assert_eq!(a, b);
        // Both kings alive.
        let kings = a
            .squares
            .iter()
            .filter(|&&p| p.abs() == piece::KING)
            .count();
        assert_eq!(kings, 2);
    }

    #[test]
    fn deeper_search_visits_more_nodes() {
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let shallow = analyze(
            &PositionSpec {
                seed: 5,
                random_moves: 10,
                depth: 2,
            },
            &mut p1,
        );
        let deep = analyze(
            &PositionSpec {
                seed: 5,
                random_moves: 10,
                depth: 4,
            },
            &mut p2,
        );
        assert!(deep.1 > shallow.1 * 3, "{} vs {}", deep.1, shallow.1);
    }

    #[test]
    fn benchmark_runs_with_search_dominating_coverage() {
        let b = MiniDeepsjeng::new(Scale::Test);
        let mut p = Profiler::default();
        let out = b.run("train", &mut p).unwrap();
        assert!(out.work > 0);
        let profile = p.finish();
        let cov = profile.coverage_percent();
        let search_family = cov["deepsjeng::search"]
            + cov["deepsjeng::qsearch"]
            + cov["deepsjeng::gen_moves"]
            + cov["deepsjeng::evaluate"];
        assert!(search_family > 80.0, "{cov:?}");
    }

    #[test]
    fn determinism() {
        let b = MiniDeepsjeng::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        assert_eq!(
            b.run("alberta.1", &mut p1).unwrap(),
            b.run("alberta.1", &mut p2).unwrap()
        );
        assert_eq!(p1.finish().totals, p2.finish().totals);
    }
}
