//! `557.xz_r` stand-in: an LZ77 sliding-window compressor with an
//! adaptive range coder.
//!
//! The SPEC benchmark round-trips data through LZMA2. This mini keeps the
//! two phases whose balance the paper's xz analysis is about: a
//! hash-chain *match finder* over a bounded dictionary (the
//! "sliding-window compression" the paper describes) and an entropy-coding
//! backend (binary adaptive range coder). The dictionary-size knob
//! reproduces the paper's discovery that data shorter than the dictionary
//! skews execution from compression toward dictionary lookups.
//!
//! The benchmark run mirrors SPEC's: decompress → compress → decompress,
//! validating both round trips.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::compress::{self, CompressWorkload};
use alberta_workloads::{Named, Scale};

const HASH_REGION: u64 = 0x8000_0000;
const WINDOW_REGION: u64 = 0x9000_0000;
const RC_REGION: u64 = 0xA000_0000;

/// Token stream element produced by the match finder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { dist: u32, len: u32 },
}

const MIN_MATCH: u32 = 3;
const MAX_MATCH: u32 = 64;
const HASH_BITS: u32 = 12;
const MAX_CHAIN: usize = 16;

struct Fns {
    compress: FnId,
    decompress: FnId,
    find_match: FnId,
    insert: FnId,
    encode: FnId,
    decode: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        // Root scopes for the two driver phases: kernels nest under
        // them, so call paths read `xz::compress;xz::find_match` in
        // flamegraphs. They retire no work themselves (attribution
        // follows the innermost frame).
        compress: profiler.register_function("xz::compress", 600),
        decompress: profiler.register_function("xz::decompress", 450),
        find_match: profiler.register_function("xz::find_match", 1800),
        insert: profiler.register_function("xz::insert_hash", 500),
        encode: profiler.register_function("xz::rc_encode", 1500),
        decode: profiler.register_function("xz::rc_decode", 1300),
    }
}

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(506832829)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(2654435761))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(2246822519));
    (h >> (32 - HASH_BITS)) as usize
}

/// LZ77 tokenization with hash chains over a bounded dictionary.
#[allow(clippy::needless_range_loop)] // `k` is a position fed to hash3, not just an index
fn tokenize(data: &[u8], dict_bytes: usize, profiler: &mut Profiler, fns: &Fns) -> Vec<Token> {
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut chain = vec![usize::MAX; data.len()];
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0u32;
        let mut best_dist = 0u32;
        if i + MIN_MATCH as usize <= data.len() {
            profiler.enter(fns.find_match);
            let h = hash3(data, i);
            profiler.load(HASH_REGION + h as u64 * 8);
            let mut cand = head[h];
            let mut probes = 0;
            while cand != usize::MAX && probes < MAX_CHAIN {
                let within_window = i - cand <= dict_bytes;
                profiler.branch(0, within_window);
                if !within_window {
                    break;
                }
                // Extend the match.
                let mut len = 0u32;
                while (len as usize) < MAX_MATCH as usize
                    && i + (len as usize) < data.len()
                    && data[cand + len as usize] == data[i + len as usize]
                {
                    profiler.load(WINDOW_REGION + (cand as u64 + len as u64) % (1 << 24));
                    len += 1;
                }
                let better = len > best_len;
                profiler.branch(1, better);
                profiler.retire(2);
                if better {
                    best_len = len;
                    best_dist = (i - cand) as u32;
                }
                cand = chain[cand];
                probes += 1;
            }
            profiler.exit();
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                dist: best_dist,
                len: best_len,
            });
            // Insert every covered position into the chains.
            profiler.enter(fns.insert);
            for k in i..(i + best_len as usize).min(data.len().saturating_sub(2)) {
                let h = hash3(data, k);
                chain[k] = head[h];
                head[h] = k;
                profiler.store(HASH_REGION + h as u64 * 8);
            }
            profiler.exit();
            i += best_len as usize;
        } else {
            tokens.push(Token::Literal(data[i]));
            if i + 2 < data.len() {
                profiler.enter(fns.insert);
                let h = hash3(data, i);
                chain[i] = head[h];
                head[h] = i;
                profiler.store(HASH_REGION + h as u64 * 8);
                profiler.exit();
            }
            i += 1;
        }
    }
    tokens
}

/// Binary adaptive range coder — the LZMA construction with an explicit
/// carry cache on the encode side. Probabilities are 11-bit (0..2048).
struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl RangeEncoder {
    fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            self.out.push(self.cache.wrapping_add(carry));
            for _ in 1..self.cache_size {
                self.out.push(0xFFu8.wrapping_add(carry));
            }
            self.cache = (self.low >> 24) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    fn encode_bit(&mut self, prob: &mut u16, bit: bool) {
        let bound = (self.range >> 11) * (*prob as u32);
        if !bit {
            self.range = bound;
            *prob += (2048 - *prob) >> 5;
        } else {
            self.low += bound as u64;
            self.range -= bound;
            *prob -= *prob >> 5;
        }
        while self.range < (1 << 24) {
            self.range <<= 8;
            self.shift_low();
        }
    }

    fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    fn new(input: &'a [u8]) -> Self {
        let mut d = RangeDecoder {
            code: 0,
            range: u32::MAX,
            input,
            pos: 1, // the first emitted byte is always the zero cache
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        d
    }

    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn decode_bit(&mut self, prob: &mut u16) -> bool {
        let bound = (self.range >> 11) * (*prob as u32);
        let bit = self.code >= bound;
        if !bit {
            self.range = bound;
            *prob += (2048 - *prob) >> 5;
        } else {
            self.code -= bound;
            self.range -= bound;
            *prob -= *prob >> 5;
        }
        while self.range < (1 << 24) {
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.range <<= 8;
        }
        bit
    }
}

/// Adaptive bit models for tokens.
struct Models {
    is_match: u16,
    literal: Vec<u16>, // 256-leaf binary tree (255 internal nodes + root pad)
    len_bits: Vec<u16>,
    dist_bits: Vec<u16>,
}

impl Models {
    fn new() -> Self {
        Models {
            is_match: 1024,
            literal: vec![1024; 512],
            len_bits: vec![1024; 8],
            dist_bits: vec![1024; 32],
        }
    }
}

fn encode_symbol_tree(enc: &mut RangeEncoder, tree: &mut [u16], byte: u8) {
    let mut node = 1usize;
    for i in (0..8).rev() {
        let bit = (byte >> i) & 1 == 1;
        enc.encode_bit(&mut tree[node], bit);
        node = node * 2 + bit as usize;
    }
}

fn decode_symbol_tree(dec: &mut RangeDecoder<'_>, tree: &mut [u16]) -> u8 {
    let mut node = 1usize;
    for _ in 0..8 {
        let bit = dec.decode_bit(&mut tree[node]);
        node = node * 2 + bit as usize;
    }
    (node - 256) as u8
}

fn encode_uint(enc: &mut RangeEncoder, models: &mut [u16], value: u32) {
    for (i, m) in models.iter_mut().enumerate() {
        let bit = (value >> i) & 1 == 1;
        enc.encode_bit(m, bit);
    }
}

fn decode_uint(dec: &mut RangeDecoder<'_>, models: &mut [u16]) -> u32 {
    let mut v = 0u32;
    for (i, m) in models.iter_mut().enumerate() {
        if dec.decode_bit(m) {
            v |= 1 << i;
        }
    }
    v
}

/// Compresses `data` with the given dictionary size.
pub fn compress(data: &[u8], dict_bytes: usize, profiler: &mut Profiler) -> Vec<u8> {
    let fns = register(profiler);
    profiler.enter(fns.compress);
    let tokens = tokenize(data, dict_bytes.max(1), profiler, &fns);
    profiler.enter(fns.encode);
    let mut enc = RangeEncoder::new();
    let mut models = Models::new();
    for token in &tokens {
        profiler.load(RC_REGION + (enc.out.len() as u64 % (1 << 20)));
        profiler.retire(6);
        match *token {
            Token::Literal(b) => {
                enc.encode_bit(&mut models.is_match, false);
                encode_symbol_tree(&mut enc, &mut models.literal, b);
                profiler.branch(2, false);
            }
            Token::Match { dist, len } => {
                enc.encode_bit(&mut models.is_match, true);
                encode_uint(&mut enc, &mut models.len_bits, len);
                encode_uint(&mut enc, &mut models.dist_bits, dist);
                profiler.branch(2, true);
            }
        }
    }
    // Terminator: a match with len 0.
    enc.encode_bit(&mut models.is_match, true);
    encode_uint(&mut enc, &mut models.len_bits, 0);
    encode_uint(&mut enc, &mut models.dist_bits, 0);
    let out = enc.finish();
    profiler.exit();
    profiler.exit(); // xz::compress
    out
}

/// Decompresses a stream produced by [`compress`].
///
/// # Errors
///
/// Returns a message when the stream references data outside the window
/// (corruption).
pub fn decompress(input: &[u8], profiler: &mut Profiler) -> Result<Vec<u8>, String> {
    let fns = register(profiler);
    profiler.enter(fns.decompress);
    profiler.enter(fns.decode);
    let mut dec = RangeDecoder::new(input);
    let mut models = Models::new();
    let mut out: Vec<u8> = Vec::new();
    loop {
        profiler.retire(5);
        if dec.decode_bit(&mut models.is_match) {
            let len = decode_uint(&mut dec, &mut models.len_bits);
            let dist = decode_uint(&mut dec, &mut models.dist_bits);
            if len == 0 {
                break; // terminator
            }
            if dist as usize > out.len() || dist == 0 {
                profiler.exit();
                profiler.exit(); // xz::decompress
                return Err(format!(
                    "corrupt stream: distance {dist} exceeds window {}",
                    out.len()
                ));
            }
            for _ in 0..len {
                let b = out[out.len() - dist as usize];
                profiler.load(WINDOW_REGION + (out.len() as u64 % (1 << 24)));
                out.push(b);
            }
            profiler.branch(3, true);
        } else {
            let b = decode_symbol_tree(&mut dec, &mut models.literal);
            out.push(b);
            profiler.branch(3, false);
        }
        if out.len() > (1 << 28) {
            profiler.exit();
            profiler.exit(); // xz::decompress
            return Err("corrupt stream: output exceeds sanity bound".to_owned());
        }
    }
    profiler.exit();
    profiler.exit(); // xz::decompress
    Ok(out)
}

/// The xz mini-benchmark.
#[derive(Debug)]
pub struct MiniXz {
    workloads: Vec<Named<CompressWorkload>>,
}

impl MiniXz {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniXz {
            workloads: standard_set(
                scale,
                compress::train,
                compress::refrate,
                compress::alberta_set,
            ),
        }
    }
}

impl Benchmark for MiniXz {
    fn name(&self) -> &'static str {
        "557.xz_r"
    }

    fn short_name(&self) -> &'static str {
        "xz"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let w = find_workload(&self.workloads, self.name(), workload)?;
        // SPEC flow: the input "file" is stored compressed; decompress,
        // recompress, decompress again, validate.
        let stored = compress(&w.data, w.dict_bytes, profiler);
        let stage = |reason: String| BenchError::InvalidInput {
            benchmark: "557.xz_r",
            reason,
        };
        let unpacked = decompress(&stored, profiler).map_err(stage)?;
        if unpacked != w.data {
            return Err(BenchError::InvalidInput {
                benchmark: "557.xz_r",
                reason: "round-trip mismatch after first decompression".to_owned(),
            });
        }
        let repacked = compress(&unpacked, w.dict_bytes, profiler);
        let final_data =
            decompress(&repacked, profiler).map_err(|reason| BenchError::InvalidInput {
                benchmark: "557.xz_r",
                reason,
            })?;
        if final_data != w.data {
            return Err(BenchError::InvalidInput {
                benchmark: "557.xz_r",
                reason: "round-trip mismatch after recompression".to_owned(),
            });
        }
        Ok(RunOutput {
            checksum: fnv1a([
                stored.len() as u64,
                repacked.len() as u64,
                fnv1a(w.data.iter().map(|&b| b as u64)),
            ]),
            work: w.data.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_workloads::compress::{CompressGen, DataKind};

    fn roundtrip(data: &[u8], dict: usize) -> (usize, Vec<u8>) {
        let mut p = Profiler::default();
        let packed = compress(data, dict, &mut p);
        let unpacked = decompress(&packed, &mut p).unwrap();
        let _ = p.finish();
        (packed.len(), unpacked)
    }

    #[test]
    fn roundtrip_identity_on_structured_data() {
        for kind in [
            DataKind::Repetitive { phrase_len: 17 },
            DataKind::Text,
            DataKind::Noise,
            DataKind::Mixed {
                noise_fraction: 0.5,
            },
        ] {
            let data = CompressGen {
                size: 4096,
                kind,
                dict_bytes: 1024,
            }
            .generate(1)
            .data;
            let (_, unpacked) = roundtrip(&data, 1024);
            assert_eq!(unpacked, data, "round trip failed for {kind:?}");
        }
    }

    #[test]
    fn roundtrip_identity_on_edge_cases() {
        for data in [vec![], vec![0u8], vec![7u8; 3], b"abcabcabcabc".to_vec()] {
            let (_, unpacked) = roundtrip(&data, 64);
            assert_eq!(unpacked, data);
        }
    }

    #[test]
    fn repetitive_data_compresses_much_better_than_noise() {
        let rep = CompressGen {
            size: 8192,
            kind: DataKind::Repetitive { phrase_len: 23 },
            dict_bytes: 4096,
        }
        .generate(2)
        .data;
        let noise = CompressGen {
            size: 8192,
            kind: DataKind::Noise,
            dict_bytes: 4096,
        }
        .generate(2)
        .data;
        let (rep_size, _) = roundtrip(&rep, 4096);
        let (noise_size, _) = roundtrip(&noise, 4096);
        assert!(
            rep_size * 4 < noise_size,
            "repetitive {rep_size} vs noise {noise_size}"
        );
        assert!(rep_size * 8 < rep.len(), "strong compression expected");
    }

    #[test]
    fn small_dictionary_finds_fewer_matches() {
        // Repeats at distance 2048 are invisible to a 1 KiB window. The
        // phrase itself is pseudo-random so it contains no short-distance
        // repeats of its own.
        let phrase: Vec<u8> = (0..2048u64)
            .map(|i| {
                let mut z = i.wrapping_add(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                (z >> 32) as u8
            })
            .collect();
        let mut data = phrase.clone();
        data.extend(&phrase);
        let (big_dict, _) = roundtrip(&data, 4096);
        let (small_dict, _) = roundtrip(&data, 1024);
        assert!(
            big_dict < small_dict,
            "large dictionary must win: {big_dict} vs {small_dict}"
        );
    }

    #[test]
    fn corruption_is_detected_not_panicking() {
        let data = b"hello hello hello hello hello".to_vec();
        let mut p = Profiler::default();
        let mut packed = compress(&data, 64, &mut p);
        // Truncate hard: decoder must fail or produce different bytes, not
        // panic or hang.
        packed.truncate(packed.len() / 2);
        match decompress(&packed, &mut p) {
            Ok(out) => assert_ne!(out, data),
            Err(msg) => assert!(!msg.is_empty()),
        }
        let _ = p.finish();
    }

    #[test]
    fn benchmark_run_validates_roundtrip() {
        let b = MiniXz::new(Scale::Test);
        let mut p = Profiler::default();
        let out = b.run("alberta.repetitive.small", &mut p).unwrap();
        assert!(out.work > 0);
        let profile = p.finish();
        let cov = profile.coverage_percent();
        assert!(cov["xz::find_match"] > 1.0, "{cov:?}");
        assert!(cov["xz::rc_encode"] > 0.1, "{cov:?}");
    }

    #[test]
    fn determinism() {
        let b = MiniXz::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        assert_eq!(
            b.run("train", &mut p1).unwrap(),
            b.run("train", &mut p2).unwrap()
        );
    }
}
