//! `519.lbm_r` stand-in: a D3Q19 lattice-Boltzmann fluid solver.
//!
//! Simulates incompressible flow through a 3-D channel with the generated
//! obstacle geometries: BGK collision, streaming into a double buffer,
//! bounce-back at obstacles and walls, and a constant-velocity inflow.
//! Memory behaviour matches the original's: large sequential sweeps over
//! distribution arrays with data-dependent branching only at obstacle
//! cells.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::fluid::{self, FluidWorkload};
use alberta_workloads::{Named, Scale};

const F_REGION: u64 = 0x1_4000_0000;
const FLAG_REGION: u64 = 0x1_5000_0000;

/// The 19 lattice velocities of D3Q19.
pub const VELOCITIES: [(i32, i32, i32); 19] = [
    (0, 0, 0),
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (-1, -1, 0),
    (1, -1, 0),
    (-1, 1, 0),
    (1, 0, 1),
    (-1, 0, -1),
    (1, 0, -1),
    (-1, 0, 1),
    (0, 1, 1),
    (0, -1, -1),
    (0, 1, -1),
    (0, -1, 1),
];

/// Lattice weights matching [`VELOCITIES`].
pub const WEIGHTS: [f64; 19] = [
    1.0 / 3.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// Index of the velocity opposite to `q` (for bounce-back).
pub fn opposite(q: usize) -> usize {
    const OPP: [usize; 19] = [
        0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17,
    ];
    OPP[q]
}

/// Cell classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// Regular fluid cell.
    Fluid,
    /// Solid obstacle or wall (bounce-back).
    Solid,
    /// Inflow cell with prescribed velocity.
    Inflow,
}

/// Result summary of one simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LbmStats {
    /// Total mass (density sum) at the end.
    pub mass: f64,
    /// Mean x-velocity over fluid cells.
    pub mean_velocity: f64,
    /// Lattice-site updates performed.
    pub site_updates: u64,
}

pub(crate) struct Fns {
    simulate: FnId,
    collide: FnId,
    stream: FnId,
    boundary: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        // Root scope: every step's kernels nest under it, so call paths
        // read `lbm::simulate;lbm::collide` in flamegraphs. It retires
        // no work itself (attribution follows the innermost frame).
        simulate: profiler.register_function("lbm::simulate", 500),
        collide: profiler.register_function("lbm::collide", 2600),
        stream: profiler.register_function("lbm::stream", 2200),
        boundary: profiler.register_function("lbm::boundary", 900),
    }
}

/// The simulation grid and state.
pub struct Lattice {
    nx: usize,
    ny: usize,
    nz: usize,
    f: Vec<f64>,
    f_next: Vec<f64>,
    kind: Vec<CellKind>,
    tau: f64,
    inflow: f64,
}

impl Lattice {
    /// Builds the lattice from a workload description.
    pub fn new(w: &FluidWorkload) -> Self {
        let (nx, ny, nz) = w.dims;
        let cells = nx * ny * nz;
        let mut kind = vec![CellKind::Fluid; cells];
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let idx = (z * ny + y) * nx + x;
                    let boundary_wall = y == 0 || y == ny - 1 || z == 0 || z == nz - 1;
                    let in_obstacle = w
                        .obstacles
                        .iter()
                        .any(|o| o.contains((x as f64, y as f64, z as f64)));
                    if boundary_wall || in_obstacle {
                        kind[idx] = CellKind::Solid;
                    } else if x == 0 {
                        kind[idx] = CellKind::Inflow;
                    }
                }
            }
        }
        // Equilibrium at rest everywhere.
        let mut f = vec![0.0; cells * 19];
        for c in 0..cells {
            for q in 0..19 {
                f[c * 19 + q] = WEIGHTS[q];
            }
        }
        Lattice {
            nx,
            ny,
            nz,
            f_next: f.clone(),
            f,
            kind: kind.clone(),
            tau: w.tau,
            inflow: w.inflow,
        }
    }

    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.ny + y) * self.nx + x
    }

    /// Density and momentum of a cell.
    pub fn macroscopic(&self, cell: usize) -> (f64, f64, f64, f64) {
        let mut rho = 0.0;
        let mut ux = 0.0;
        let mut uy = 0.0;
        let mut uz = 0.0;
        for (q, v) in VELOCITIES.iter().enumerate() {
            let fi = self.f[cell * 19 + q];
            rho += fi;
            ux += fi * v.0 as f64;
            uy += fi * v.1 as f64;
            uz += fi * v.2 as f64;
        }
        (rho, ux / rho, uy / rho, uz / rho)
    }

    fn equilibrium(rho: f64, u: (f64, f64, f64), q: usize) -> f64 {
        let c = VELOCITIES[q];
        let cu = c.0 as f64 * u.0 + c.1 as f64 * u.1 + c.2 as f64 * u.2;
        let u2 = u.0 * u.0 + u.1 * u.1 + u.2 * u.2;
        WEIGHTS[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * u2)
    }

    /// One collide + stream step.
    pub(crate) fn step(&mut self, profiler: &mut Profiler, fns: &Fns) -> u64 {
        let cells = self.nx * self.ny * self.nz;
        let mut updates = 0u64;
        // Collision (in place).
        profiler.enter(fns.collide);
        for c in 0..cells {
            profiler.load(FLAG_REGION + c as u64);
            let solid = self.kind[c] == CellKind::Solid;
            profiler.branch(0, solid);
            if solid {
                continue;
            }
            let (rho, ux, uy, uz) = self.macroscopic(c);
            let omega = 1.0 / self.tau;
            for q in 0..19 {
                let feq = Lattice::equilibrium(rho, (ux, uy, uz), q);
                let i = c * 19 + q;
                self.f[i] += omega * (feq - self.f[i]);
            }
            profiler.load(F_REGION + (c as u64 * 19) * 8 % (1 << 28));
            profiler.store(F_REGION + (c as u64 * 19) * 8 % (1 << 28));
            profiler.retire(60);
            updates += 1;
        }
        profiler.exit();

        // Streaming with bounce-back.
        profiler.enter(fns.stream);
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    let c = self.idx(x, y, z);
                    if self.kind[c] == CellKind::Solid {
                        continue;
                    }
                    for (q, &(dx, dy, dz)) in VELOCITIES.iter().enumerate() {
                        let sx = x as i32 - dx;
                        let sy = y as i32 - dy;
                        let sz = z as i32 - dz;
                        // Periodic in x (outflow wraps back), walls in y/z.
                        let sx = ((sx + self.nx as i32) % self.nx as i32) as usize;
                        let from_solid = sy < 0
                            || sy >= self.ny as i32
                            || sz < 0
                            || sz >= self.nz as i32
                            || self.kind[self.idx(sx, sy as usize, sz as usize)] == CellKind::Solid;
                        if from_solid {
                            // Bounce back: reflect this cell's own opposite.
                            self.f_next[c * 19 + q] = self.f[c * 19 + opposite(q)];
                        } else {
                            let s = self.idx(sx, sy as usize, sz as usize);
                            self.f_next[c * 19 + q] = self.f[s * 19 + q];
                        }
                    }
                    profiler.load(F_REGION + (c as u64 * 19) * 8 % (1 << 28));
                    profiler.store(F_REGION + ((cells + c) as u64 * 19) * 8 % (1 << 28));
                    profiler.retire(40);
                }
            }
        }
        profiler.exit();
        std::mem::swap(&mut self.f, &mut self.f_next);

        // Inflow condition.
        profiler.enter(fns.boundary);
        for z in 0..self.nz {
            for y in 0..self.ny {
                let c = self.idx(0, y, z);
                if self.kind[c] == CellKind::Inflow {
                    for q in 0..19 {
                        self.f[c * 19 + q] = Lattice::equilibrium(1.0, (self.inflow, 0.0, 0.0), q);
                    }
                    profiler.store(F_REGION + (c as u64 * 19) * 8 % (1 << 28));
                    profiler.retire(25);
                }
            }
        }
        profiler.exit();
        updates
    }

    /// Total mass and mean x-velocity over fluid cells.
    pub fn stats(&self) -> (f64, f64) {
        let cells = self.nx * self.ny * self.nz;
        let mut mass = 0.0;
        let mut vel = 0.0;
        let mut fluid = 0usize;
        for c in 0..cells {
            if self.kind[c] == CellKind::Solid {
                continue;
            }
            let (rho, ux, _, _) = self.macroscopic(c);
            mass += rho;
            vel += ux;
            fluid += 1;
        }
        (mass, vel / fluid.max(1) as f64)
    }
}

/// Runs a fluid workload to completion.
pub fn simulate(w: &FluidWorkload, profiler: &mut Profiler) -> LbmStats {
    let fns = register(profiler);
    let mut lattice = Lattice::new(w);
    let mut site_updates = 0;
    profiler.enter(fns.simulate);
    for _ in 0..w.steps {
        site_updates += lattice.step(profiler, &fns);
    }
    profiler.exit();
    let (mass, mean_velocity) = lattice.stats();
    LbmStats {
        mass,
        mean_velocity,
        site_updates,
    }
}

/// The lbm mini-benchmark.
#[derive(Debug)]
pub struct MiniLbm {
    workloads: Vec<Named<FluidWorkload>>,
}

impl MiniLbm {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniLbm {
            workloads: standard_set(scale, fluid::train, fluid::refrate, fluid::alberta_set),
        }
    }
}

impl Benchmark for MiniLbm {
    fn name(&self) -> &'static str {
        "519.lbm_r"
    }

    fn short_name(&self) -> &'static str {
        "lbm"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let w = find_workload(&self.workloads, self.name(), workload)?;
        let stats = simulate(w, profiler);
        if !stats.mass.is_finite() {
            return Err(BenchError::InvalidInput {
                benchmark: "519.lbm_r",
                reason: "simulation diverged to non-finite mass".to_owned(),
            });
        }
        Ok(RunOutput {
            checksum: fnv1a([stats.mass.to_bits(), stats.mean_velocity.to_bits()]),
            work: stats.site_updates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_workloads::fluid::FluidGen;

    fn small_workload(obstacles: usize, steps: usize) -> FluidWorkload {
        let mut gen = FluidGen::standard(Scale::Test);
        gen.dims = (12, 8, 8);
        gen.obstacles = obstacles;
        gen.steps = steps;
        gen.generate(1)
    }

    #[test]
    fn opposite_velocities_are_inverses() {
        for q in 0..19 {
            let (dx, dy, dz) = VELOCITIES[q];
            let (ox, oy, oz) = VELOCITIES[opposite(q)];
            assert_eq!((dx, dy, dz), (-ox, -oy, -oz), "q={q}");
            assert_eq!(opposite(opposite(q)), q);
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let s: f64 = WEIGHTS.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_at_rest_recovers_weights() {
        for (q, &w) in WEIGHTS.iter().enumerate() {
            let feq = Lattice::equilibrium(1.0, (0.0, 0.0, 0.0), q);
            assert!((feq - w).abs() < 1e-12);
        }
    }

    #[test]
    fn resting_fluid_without_inflow_stays_at_rest() {
        let mut w = small_workload(0, 3);
        w.inflow = 0.0;
        let mut p = Profiler::default();
        let stats = simulate(&w, &mut p);
        let _ = p.finish();
        assert!(stats.mean_velocity.abs() < 1e-9, "{}", stats.mean_velocity);
    }

    #[test]
    fn inflow_drives_positive_mean_velocity() {
        let w = small_workload(0, 6);
        let mut p = Profiler::default();
        let stats = simulate(&w, &mut p);
        let _ = p.finish();
        assert!(stats.mean_velocity > 1e-4, "{}", stats.mean_velocity);
        assert!(stats.mass.is_finite() && stats.mass > 0.0);
    }

    #[test]
    fn obstacles_reduce_fluid_cells_and_updates() {
        let open = small_workload(0, 2);
        let blocked = small_workload(6, 2);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let s1 = simulate(&open, &mut p1);
        let s2 = simulate(&blocked, &mut p2);
        let _ = (p1.finish(), p2.finish());
        assert!(s2.site_updates <= s1.site_updates);
    }

    #[test]
    fn simulation_is_stable_over_many_steps() {
        let w = small_workload(2, 30);
        let mut p = Profiler::default();
        let stats = simulate(&w, &mut p);
        let _ = p.finish();
        assert!(stats.mass.is_finite());
        assert!(stats.mean_velocity.is_finite());
        assert!(
            stats.mean_velocity.abs() < 1.0,
            "lattice units stay subsonic"
        );
    }

    #[test]
    fn benchmark_runs_and_is_deterministic() {
        let b = MiniLbm::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let o1 = b.run("train", &mut p1).unwrap();
        let o2 = b.run("train", &mut p2).unwrap();
        assert_eq!(o1, o2);
        let cov = p1.finish().coverage_percent();
        assert!(cov["lbm::collide"] + cov["lbm::stream"] > 70.0, "{cov:?}");
    }
}
