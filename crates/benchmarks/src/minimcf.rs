//! `505.mcf_r` stand-in: a minimum-cost-flow solver on the generated
//! vehicle-scheduling instances.
//!
//! The SPEC benchmark wraps Löbel's network-simplex MCF code. This mini
//! implements the successive-shortest-path algorithm with Johnson
//! potentials — the same problem, the same memory behaviour class
//! (pointer-light adjacency walks over a large arc array with
//! data-dependent branches), and a checkable optimality certificate: a
//! flow is optimal iff the residual network has no negative-cost cycle,
//! which the tests verify with Bellman–Ford.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::flow::{self, FlowInstance};
use alberta_workloads::{Named, Scale};

/// Data-region bases for the profiler's address stream.
const ARC_REGION: u64 = 0x1000_0000;
const NODE_REGION: u64 = 0x2000_0000;
const HEAP_REGION: u64 = 0x3000_0000;

/// The mcf mini-benchmark.
#[derive(Debug)]
pub struct MiniMcf {
    workloads: Vec<Named<FlowInstance>>,
}

impl MiniMcf {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniMcf {
            workloads: standard_set(scale, flow::train, flow::refrate, flow::alberta_set),
        }
    }
}

impl Benchmark for MiniMcf {
    fn name(&self) -> &'static str {
        "505.mcf_r"
    }

    fn short_name(&self) -> &'static str {
        "mcf"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let instance = find_workload(&self.workloads, self.name(), workload)?;
        let solution =
            solve_min_cost_flow(instance, profiler).map_err(|reason| BenchError::InvalidInput {
                benchmark: "505.mcf_r",
                reason,
            })?;
        Ok(RunOutput {
            checksum: fnv1a([solution.cost as u64, solution.flows.len() as u64]),
            work: solution.augmentations,
        })
    }

    fn inject_malformed(&mut self, workload: &str, seed: u64) -> bool {
        self.workloads
            .iter_mut()
            .find(|n| n.name == workload)
            .map(|n| n.workload.disconnect(seed))
            .unwrap_or(false)
    }
}

/// A solved flow: per-arc flow values and the total cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSolution {
    /// Flow on each input arc, parallel to `FlowInstance::arcs`.
    pub flows: Vec<i64>,
    /// Total cost.
    pub cost: i64,
    /// Number of augmenting-path iterations (work proxy).
    pub augmentations: u64,
}

struct Residual {
    // Forward + backward arc pairs; arc 2k is input arc k, arc 2k+1 its
    // reverse.
    to: Vec<u32>,
    cap: Vec<i64>,
    cost: Vec<i64>,
    head: Vec<Vec<u32>>, // adjacency: node -> arc ids
}

struct Fns {
    solve: FnId,
    dijkstra: FnId,
    augment: FnId,
    build: FnId,
    potentials: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        // Root scope: all phases nest under it, so call paths read
        // `mcf::solve;mcf::shortest_path` in flamegraphs. It retires no
        // work itself (attribution follows the innermost frame).
        solve: profiler.register_function("mcf::solve", 400),
        build: profiler.register_function("mcf::build_network", 900),
        dijkstra: profiler.register_function("mcf::shortest_path", 2200),
        augment: profiler.register_function("mcf::augment", 700),
        potentials: profiler.register_function("mcf::refresh_potential", 600),
    }
}

/// Solves the instance by successive shortest paths, reporting events to
/// the profiler.
///
/// # Errors
///
/// Returns a message if the instance is structurally invalid or
/// infeasible.
pub fn solve_min_cost_flow(
    instance: &FlowInstance,
    profiler: &mut Profiler,
) -> Result<FlowSolution, String> {
    instance.validate()?;
    let fns = register(profiler);
    let n = instance.node_count as usize;
    // Super source (n) and super sink (n+1) absorb per-node supplies.
    let total_nodes = n + 2;
    let source = n as u32;
    let sink = n as u32 + 1;

    profiler.enter(fns.solve);
    profiler.enter(fns.build);
    let mut res = Residual {
        to: Vec::new(),
        cap: Vec::new(),
        cost: Vec::new(),
        head: vec![Vec::new(); total_nodes],
    };
    let add_arc = |res: &mut Residual, from: u32, to: u32, cap: i64, cost: i64| {
        let id = res.to.len() as u32;
        res.head[from as usize].push(id);
        res.to.push(to);
        res.cap.push(cap);
        res.cost.push(cost);
        res.head[to as usize].push(id + 1);
        res.to.push(from);
        res.cap.push(0);
        res.cost.push(-cost);
    };
    for arc in &instance.arcs {
        add_arc(&mut res, arc.from, arc.to, arc.capacity, arc.cost);
        profiler.store(ARC_REGION + res.to.len() as u64 * 8);
        profiler.retire(4);
    }
    let mut total_supply = 0i64;
    for (i, &s) in instance.supplies.iter().enumerate() {
        if s > 0 {
            add_arc(&mut res, source, i as u32, s, 0);
            total_supply += s;
        } else if s < 0 {
            add_arc(&mut res, i as u32, sink, -s, 0);
        }
        profiler.load(NODE_REGION + i as u64 * 8);
    }
    profiler.exit();

    // Johnson potentials start at zero: all reduced costs are the original
    // costs, which are non-negative in our instances; Bellman–Ford would
    // initialize them otherwise. Potentials are refreshed after every
    // augmentation.
    let mut potential = vec![0i64; total_nodes];
    let mut flows_sent = 0i64;
    let mut total_cost = 0i64;
    let mut augmentations = 0u64;

    while flows_sent < total_supply {
        // Dijkstra with reduced costs.
        profiler.enter(fns.dijkstra);
        const INF: i64 = i64::MAX / 4;
        let mut dist = vec![INF; total_nodes];
        let mut prev_arc = vec![u32::MAX; total_nodes];
        let mut heap = std::collections::BinaryHeap::new();
        dist[source as usize] = 0;
        heap.push(std::cmp::Reverse((0i64, source)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            profiler.load(HEAP_REGION + u as u64 * 16);
            if profiler_branch_stale(profiler, d, dist[u as usize]) {
                continue;
            }
            for &arc in &res.head[u as usize] {
                let arc = arc as usize;
                profiler.load(ARC_REGION + arc as u64 * 24);
                let has_cap = res.cap[arc] > 0;
                profiler.branch(1, has_cap);
                if !has_cap {
                    continue;
                }
                let v = res.to[arc] as usize;
                let rc = res.cost[arc] + potential[u as usize] - potential[v];
                let nd = d + rc;
                let better = nd < dist[v];
                profiler.branch(2, better);
                profiler.retire(3);
                if better {
                    dist[v] = nd;
                    prev_arc[v] = arc as u32;
                    profiler.store(NODE_REGION + v as u64 * 16);
                    heap.push(std::cmp::Reverse((nd, v as u32)));
                }
            }
        }
        profiler.exit();

        if dist[sink as usize] == INF {
            profiler.exit(); // leave mcf::solve balanced on the error path
            return Err("instance is infeasible: no augmenting path".to_owned());
        }

        profiler.enter(fns.potentials);
        for (i, d) in dist.iter().enumerate() {
            if *d < INF {
                potential[i] += d;
            }
            profiler.store(NODE_REGION + i as u64 * 8 + 0x8000);
            profiler.retire(1);
        }
        profiler.exit();

        profiler.enter(fns.augment);
        // Find bottleneck, then push.
        let mut bottleneck = i64::MAX;
        let mut v = sink as usize;
        while v != source as usize {
            let arc = prev_arc[v] as usize;
            bottleneck = bottleneck.min(res.cap[arc]);
            profiler.load(ARC_REGION + arc as u64 * 24);
            v = res.to[arc ^ 1] as usize;
        }
        let mut v = sink as usize;
        while v != source as usize {
            let arc = prev_arc[v] as usize;
            res.cap[arc] -= bottleneck;
            res.cap[arc ^ 1] += bottleneck;
            total_cost += res.cost[arc] * bottleneck;
            profiler.store(ARC_REGION + arc as u64 * 24);
            profiler.retire(4);
            v = res.to[arc ^ 1] as usize;
        }
        flows_sent += bottleneck;
        augmentations += 1;
        profiler.exit();
    }
    profiler.exit();

    // Recover per-input-arc flow: reverse-arc capacity equals flow pushed.
    let flows = (0..instance.arcs.len())
        .map(|k| res.cap[2 * k + 1])
        .collect();
    Ok(FlowSolution {
        flows,
        cost: total_cost,
        augmentations,
    })
}

/// Branch helper for the "stale heap entry" check so the site id stays in
/// one place.
fn profiler_branch_stale(profiler: &mut Profiler, d: i64, best: i64) -> bool {
    let stale = d > best;
    profiler.branch(0, stale);
    stale
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_workloads::flow::{Arc, FlowGen};

    fn tiny_instance() -> FlowInstance {
        // source 0 → {1, 2} → sink 3; cheap path through 1 limited.
        FlowInstance {
            node_count: 4,
            supplies: vec![2, 0, 0, -2],
            arcs: vec![
                Arc {
                    from: 0,
                    to: 1,
                    capacity: 1,
                    cost: 1,
                },
                Arc {
                    from: 0,
                    to: 2,
                    capacity: 2,
                    cost: 3,
                },
                Arc {
                    from: 1,
                    to: 3,
                    capacity: 2,
                    cost: 1,
                },
                Arc {
                    from: 2,
                    to: 3,
                    capacity: 2,
                    cost: 1,
                },
            ],
        }
    }

    fn solve(instance: &FlowInstance) -> FlowSolution {
        let mut p = Profiler::default();
        let s = solve_min_cost_flow(instance, &mut p).unwrap();
        let _ = p.finish();
        s
    }

    #[test]
    fn tiny_instance_hand_checked_optimum() {
        let s = solve(&tiny_instance());
        // One unit via 0→1→3 (cost 2), one via 0→2→3 (cost 4): total 6.
        assert_eq!(s.cost, 6);
        assert_eq!(s.flows, vec![1, 1, 1, 1]);
    }

    /// Optimality certificate: the residual graph of an optimal flow
    /// contains no negative-cost cycle (Bellman–Ford over all residual
    /// arcs).
    fn assert_optimal(instance: &FlowInstance, solution: &FlowSolution) {
        let n = instance.node_count as usize;
        let mut edges: Vec<(usize, usize, i64)> = Vec::new();
        for (k, arc) in instance.arcs.iter().enumerate() {
            let f = solution.flows[k];
            assert!(f >= 0 && f <= arc.capacity, "capacity violated");
            if f < arc.capacity {
                edges.push((arc.from as usize, arc.to as usize, arc.cost));
            }
            if f > 0 {
                edges.push((arc.to as usize, arc.from as usize, -arc.cost));
            }
        }
        let mut dist = vec![0i64; n];
        for _ in 0..n {
            for &(u, v, c) in &edges {
                if dist[u] + c < dist[v] {
                    dist[v] = dist[u] + c;
                }
            }
        }
        for &(u, v, c) in &edges {
            assert!(
                dist[u] + c >= dist[v],
                "negative residual cycle: flow is not optimal"
            );
        }
    }

    /// Flow conservation at every node.
    fn assert_feasible(instance: &FlowInstance, solution: &FlowSolution) {
        let mut balance = vec![0i64; instance.node_count as usize];
        for (k, arc) in instance.arcs.iter().enumerate() {
            balance[arc.from as usize] -= solution.flows[k];
            balance[arc.to as usize] += solution.flows[k];
        }
        for (i, (&b, &s)) in balance.iter().zip(&instance.supplies).enumerate() {
            assert_eq!(b, -s, "conservation violated at node {i}");
        }
    }

    #[test]
    fn generated_instances_solve_to_certified_optimum() {
        let gen = FlowGen::standard(Scale::Test);
        for seed in 0..4 {
            let instance = gen.generate(seed);
            let s = solve(&instance);
            assert_feasible(&instance, &s);
            assert_optimal(&instance, &s);
            assert!(s.cost > 0);
        }
    }

    #[test]
    fn bigger_instances_cost_no_less_per_trip() {
        // More trips → at least as many augmentations.
        let mut small_gen = FlowGen::standard(Scale::Test);
        small_gen.trips = 20;
        let mut big_gen = FlowGen::standard(Scale::Test);
        big_gen.trips = 60;
        let s_small = solve(&small_gen.generate(1));
        let s_big = solve(&big_gen.generate(1));
        assert!(s_big.augmentations >= s_small.augmentations);
    }

    #[test]
    fn benchmark_trait_roundtrip() {
        let b = MiniMcf::new(Scale::Test);
        assert_eq!(b.short_name(), "mcf");
        let mut p = Profiler::default();
        let out = b.run("alberta.0", &mut p).unwrap();
        let profile = p.finish();
        assert!(out.work > 0);
        assert!(profile.totals.retired_ops > 0);
        assert!(profile.totals.branches > 0);
        let cov = profile.coverage_percent();
        assert!(
            cov["mcf::shortest_path"] > 10.0,
            "dijkstra must dominate: {cov:?}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let b = MiniMcf::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let o1 = b.run("refrate", &mut p1).unwrap();
        let o2 = b.run("refrate", &mut p2).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(p1.finish().totals, p2.finish().totals);
    }

    #[test]
    fn infeasible_instance_is_rejected() {
        // Demand with no incoming arcs.
        let instance = FlowInstance {
            node_count: 2,
            supplies: vec![1, -1],
            arcs: vec![],
        };
        let mut p = Profiler::default();
        let err = solve_min_cost_flow(&instance, &mut p).unwrap_err();
        assert!(err.contains("infeasible"));
    }
}
