//! `526.blender_r` stand-in: a 3-D mesh transform + z-buffer rasterizer.
//!
//! Blender's benchmark renders scenes with its internal engine. This mini
//! keeps the geometry pipeline: per-frame vertex transformation (object
//! spin + perspective projection), back-face culling, triangle
//! rasterization with barycentric interpolation into a z-buffer, and
//! simple diffuse shading. Scene complexity (object count, tessellation)
//! and the frame window are the workload knobs — exactly what the
//! paper's thirteen `.blend` workloads vary.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::mesh::{self, MeshScene};
use alberta_workloads::{Named, Scale};

const VERTEX_REGION: u64 = 0x1_F000_0000;
const ZBUF_REGION: u64 = 0x2_3000_0000;

pub(crate) struct Fns {
    transform: FnId,
    raster: FnId,
    shade: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        transform: profiler.register_function("blender::transform_vertices", 1800),
        raster: profiler.register_function("blender::rasterize", 2800),
        shade: profiler.register_function("blender::shade", 1000),
    }
}

/// A rendered frame plus rasterization statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedFrame {
    /// Luma image, row-major.
    pub pixels: Vec<u8>,
    /// Triangles actually rasterized (after culling).
    pub triangles_drawn: u64,
    /// Pixels that passed the depth test.
    pub fragments: u64,
}

/// Renders one frame of the scene.
pub(crate) fn render_frame(
    scene: &MeshScene,
    frame: u32,
    profiler: &mut Profiler,
    fns: &Fns,
) -> RenderedFrame {
    let w = scene.width;
    let h = scene.height;
    let mut color = vec![0u8; w * h];
    let mut depth = vec![f64::INFINITY; w * h];
    let mut drawn = 0u64;
    let mut fragments = 0u64;

    for mesh in &scene.meshes {
        // Transform: spin around the mesh centroid, then perspective.
        profiler.enter(fns.transform);
        let angle = mesh.spin * frame as f64;
        let (sin, cos) = angle.sin_cos();
        let n = mesh.vertices.len() as f64;
        let cx = mesh.vertices.iter().map(|v| v.0).sum::<f64>() / n;
        let cz = mesh.vertices.iter().map(|v| v.2).sum::<f64>() / n;
        let projected: Vec<(f64, f64, f64)> = mesh
            .vertices
            .iter()
            .enumerate()
            .map(|(i, &(x, y, z))| {
                profiler.load(VERTEX_REGION + i as u64 * 24);
                profiler.retire(12);
                let dx = x - cx;
                let dz = z - cz;
                let rx = cx + dx * cos - dz * sin;
                let rz = cz + dx * sin + dz * cos;
                // Perspective onto the image plane.
                let zc = rz.max(0.5);
                let aspect = w as f64 / h as f64;
                let sx = (rx / zc / aspect * 1.6 + 0.5) * w as f64;
                let sy = (0.5 - (y - 1.0) / zc * 1.6) * h as f64;
                (sx, sy, zc)
            })
            .collect();
        profiler.exit();

        profiler.enter(fns.raster);
        for &(a, b, c) in &mesh.triangles {
            let pa = projected[a as usize];
            let pb = projected[b as usize];
            let pc = projected[c as usize];
            // Back-face culling via signed screen area.
            let area = (pb.0 - pa.0) * (pc.1 - pa.1) - (pc.0 - pa.0) * (pb.1 - pa.1);
            let front = area > 1e-9;
            profiler.branch(0, front);
            profiler.retire(8);
            if !front {
                continue;
            }
            drawn += 1;
            // Bounding box clipped to the viewport.
            let min_x = pa.0.min(pb.0).min(pc.0).floor().max(0.0) as usize;
            let max_x = (pa.0.max(pb.0).max(pc.0).ceil() as usize).min(w.saturating_sub(1));
            let min_y = pa.1.min(pb.1).min(pc.1).floor().max(0.0) as usize;
            let max_y = (pa.1.max(pb.1).max(pc.1).ceil() as usize).min(h.saturating_sub(1));
            for py in min_y..=max_y {
                for px in min_x..=max_x {
                    let x = px as f64 + 0.5;
                    let y = py as f64 + 0.5;
                    // Barycentric coordinates.
                    let w0 = ((pb.0 - x) * (pc.1 - y) - (pc.0 - x) * (pb.1 - y)) / area;
                    let w1 = ((pc.0 - x) * (pa.1 - y) - (pa.0 - x) * (pc.1 - y)) / area;
                    let w2 = 1.0 - w0 - w1;
                    let inside = w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0;
                    profiler.branch(1, inside);
                    profiler.retire(10);
                    if !inside {
                        continue;
                    }
                    let z = w0 * pa.2 + w1 * pb.2 + w2 * pc.2;
                    let i = py * w + px;
                    profiler.load(ZBUF_REGION + i as u64 * 8);
                    let visible = z < depth[i];
                    profiler.branch(2, visible);
                    if visible {
                        depth[i] = z;
                        profiler.enter(fns.shade);
                        // Depth-attenuated diffuse shade.
                        let shade = (mesh.shade * (8.0 / z).min(1.2)).clamp(0.0, 1.0);
                        color[i] = (shade * 255.0) as u8;
                        profiler.store(ZBUF_REGION + i as u64 * 8);
                        profiler.retire(6);
                        profiler.exit();
                        fragments += 1;
                    }
                }
            }
        }
        profiler.exit();
    }
    RenderedFrame {
        pixels: color,
        triangles_drawn: drawn,
        fragments,
    }
}

/// Renders the workload's frame window; returns a checksum and stats.
pub fn render_scene(scene: &MeshScene, profiler: &mut Profiler) -> (u64, u64, u64) {
    let fns = register(profiler);
    let mut hash = 0u64;
    let mut triangles = 0;
    let mut fragments = 0;
    for f in scene.start_frame..scene.start_frame + scene.frames {
        let frame = render_frame(scene, f, profiler, &fns);
        hash ^= fnv1a(frame.pixels.iter().map(|&b| b as u64)).rotate_left(f % 61);
        triangles += frame.triangles_drawn;
        fragments += frame.fragments;
    }
    (hash, triangles, fragments)
}

/// The blender mini-benchmark.
#[derive(Debug)]
pub struct MiniBlender {
    workloads: Vec<Named<MeshScene>>,
}

impl MiniBlender {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniBlender {
            workloads: standard_set(scale, mesh::train, mesh::refrate, mesh::alberta_set),
        }
    }
}

impl Benchmark for MiniBlender {
    fn name(&self) -> &'static str {
        "526.blender_r"
    }

    fn short_name(&self) -> &'static str {
        "blender"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let scene = find_workload(&self.workloads, self.name(), workload)?;
        for m in &scene.meshes {
            m.validate().map_err(|reason| BenchError::InvalidInput {
                benchmark: "526.blender_r",
                reason,
            })?;
        }
        let (hash, triangles, fragments) = render_scene(scene, profiler);
        Ok(RunOutput {
            checksum: fnv1a([hash, triangles]),
            work: fragments.max(triangles),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_workloads::mesh::{MeshGen, TriMesh};

    fn single_triangle_scene() -> MeshScene {
        // One large triangle facing the camera.
        let tri = TriMesh {
            vertices: vec![(-2.0, 0.0, 6.0), (2.0, 0.0, 6.0), (0.0, 3.0, 6.0)],
            triangles: vec![(0, 2, 1)],
            shade: 1.0,
            spin: 0.0,
        };
        MeshScene {
            meshes: vec![tri],
            width: 32,
            height: 32,
            start_frame: 0,
            frames: 1,
        }
    }

    fn render_one(scene: &MeshScene, frame: u32) -> RenderedFrame {
        let mut p = Profiler::default();
        let fns = register(&mut p);
        let f = render_frame(scene, frame, &mut p, &fns);
        let _ = p.finish();
        f
    }

    #[test]
    fn triangle_covers_center_pixels() {
        let scene = single_triangle_scene();
        let f = render_one(&scene, 0);
        assert_eq!(f.triangles_drawn, 1);
        assert!(f.fragments > 10, "fragments {}", f.fragments);
        // A pixel inside the triangle is lit.
        let mid = f.pixels[(scene.height / 2) * scene.width + scene.width / 2];
        assert!(mid > 0, "center pixel unlit");
        // A corner is background.
        assert_eq!(f.pixels[0], 0);
    }

    #[test]
    fn back_face_is_culled() {
        let mut scene = single_triangle_scene();
        // Reverse winding: the same triangle now faces away.
        scene.meshes[0].triangles = vec![(0, 1, 2)];
        let f = render_one(&scene, 0);
        assert_eq!(f.triangles_drawn, 0);
        assert_eq!(f.fragments, 0);
    }

    #[test]
    fn nearer_surface_wins_depth_test() {
        let near = TriMesh {
            vertices: vec![(-2.0, 0.0, 4.0), (2.0, 0.0, 4.0), (0.0, 3.0, 4.0)],
            triangles: vec![(0, 2, 1)],
            shade: 1.0,
            spin: 0.0,
        };
        let far = TriMesh {
            vertices: vec![(-2.0, 0.0, 10.0), (2.0, 0.0, 10.0), (0.0, 3.0, 10.0)],
            triangles: vec![(0, 2, 1)],
            shade: 0.2,
            spin: 0.0,
        };
        // Draw far first, then near: near must overwrite.
        let scene = MeshScene {
            meshes: vec![far, near],
            width: 32,
            height: 32,
            start_frame: 0,
            frames: 1,
        };
        let f = render_one(&scene, 0);
        let mid = f.pixels[16 * 32 + 16];
        // The near (bright, shade 1.0 attenuated by 8/4 capped 1.2) pixel
        // beats the far dim one.
        assert!(mid > 200, "depth test failed: {mid}");
    }

    #[test]
    fn spinning_mesh_changes_between_frames() {
        let mut scene = MeshGen::standard(Scale::Test).generate(3);
        for m in &mut scene.meshes {
            m.spin = 0.4;
        }
        let f0 = render_one(&scene, 0);
        let f1 = render_one(&scene, 3);
        assert_ne!(f0.pixels, f1.pixels, "spin must move the image");
    }

    #[test]
    fn generated_scenes_render_all_frames() {
        let scene = MeshGen::standard(Scale::Test).generate(1);
        let mut p = Profiler::default();
        let (hash, triangles, _) = render_scene(&scene, &mut p);
        let _ = p.finish();
        assert_ne!(hash, 0);
        assert!(triangles > 0);
    }

    #[test]
    fn benchmark_runs_and_is_deterministic() {
        let b = MiniBlender::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let o1 = b.run("alberta.o4.t8.f1", &mut p1).unwrap();
        let o2 = b.run("alberta.o4.t8.f1", &mut p2).unwrap();
        assert_eq!(o1, o2);
        let cov = p1.finish().coverage_percent();
        assert!(cov["blender::rasterize"] > 25.0, "{cov:?}");
    }
}
