//! `507.cactuBSSN_r` stand-in: a 3-D finite-difference evolution of a
//! BSSN-flavoured hyperbolic system.
//!
//! The real benchmark evolves Einstein's equations in vacuum with the
//! EinsteinToolkit. This mini evolves the closest tractable analogue: a
//! first-order-in-time wave system `∂t φ = K`, `∂t K = ∇²φ` with an
//! auxiliary conformal-factor field and Kreiss–Oliger dissipation, on a
//! cubic grid with the workload's resolution, Courant factor, and
//! initial data (Gaussian pulse, binary pulses, or smooth noise). The
//! computational pattern — wide 3-D stencils over several coupled fields
//! — is what makes cactuBSSN behave as it does.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::pde::{self, InitialData, PdeWorkload};
use alberta_workloads::{Named, Scale};

const PHI_REGION: u64 = 0x1_8000_0000;
const K_REGION: u64 = 0x1_9000_0000;

/// The evolved fields.
#[derive(Debug, Clone)]
pub struct BssnState {
    n: usize,
    /// Wave field φ.
    pub phi: Vec<f64>,
    /// Extrinsic-curvature-like field K = ∂t φ.
    pub kk: Vec<f64>,
    /// Auxiliary conformal-factor-like field (relaxes toward 1 + φ²).
    pub conformal: Vec<f64>,
}

pub(crate) struct Fns {
    rhs: FnId,
    dissipation: FnId,
    update: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        rhs: profiler.register_function("cactu::compute_rhs", 3200),
        dissipation: profiler.register_function("cactu::kreiss_oliger", 1600),
        update: profiler.register_function("cactu::update_fields", 1000),
    }
}

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E3779B97F4A7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl BssnState {
    /// Initializes fields from the workload's initial data.
    pub fn new(w: &PdeWorkload) -> Self {
        let n = w.grid;
        let mut phi = vec![0.0; n * n * n];
        let gauss = |phi: &mut [f64], cx: f64, cy: f64, cz: f64, width: f64| {
            for z in 0..n {
                for y in 0..n {
                    for x in 0..n {
                        let dx = (x as f64 - cx) / (width * n as f64);
                        let dy = (y as f64 - cy) / (width * n as f64);
                        let dz = (z as f64 - cz) / (width * n as f64);
                        phi[(z * n + y) * n + x] += (-(dx * dx + dy * dy + dz * dz)).exp();
                    }
                }
            }
        };
        let c = n as f64 / 2.0;
        match w.initial {
            InitialData::GaussianPulse { width } => gauss(&mut phi, c, c, c, width),
            InitialData::BinaryPulses { separation } => {
                let off = separation * n as f64 / 2.0;
                gauss(&mut phi, c - off, c, c, 0.1);
                gauss(&mut phi, c + off, c, c, 0.1);
            }
            InitialData::SmoothNoise { amplitude } => {
                let mut seed = w.seed;
                for v in phi.iter_mut() {
                    *v = ((splitmix(&mut seed) % 2000) as f64 / 1000.0 - 1.0) * amplitude;
                }
                // One smoothing pass keeps it resolvable.
                let old = phi.clone();
                for z in 1..n - 1 {
                    for y in 1..n - 1 {
                        for x in 1..n - 1 {
                            let i = (z * n + y) * n + x;
                            phi[i] = (old[i]
                                + old[i - 1]
                                + old[i + 1]
                                + old[i - n]
                                + old[i + n]
                                + old[i - n * n]
                                + old[i + n * n])
                                / 7.0;
                        }
                    }
                }
            }
        }
        BssnState {
            n,
            kk: vec![0.0; n * n * n],
            conformal: vec![1.0; n * n * n],
            phi,
        }
    }

    fn lap(&self, field: &[f64], x: usize, y: usize, z: usize) -> f64 {
        let n = self.n;
        let i = (z * n + y) * n + x;
        field[i - 1]
            + field[i + 1]
            + field[i - n]
            + field[i + n]
            + field[i - n * n]
            + field[i + n * n]
            - 6.0 * field[i]
    }

    /// One evolution step. Symplectic (Euler–Cromer) time stepping: the
    /// momentum field `K` is advanced with the old Laplacian, then `φ`
    /// with the *new* `K` — stable for wave systems under the CFL bound,
    /// where naive forward Euler would grow without bound.
    pub(crate) fn step(&mut self, w: &PdeWorkload, profiler: &mut Profiler, fns: &Fns) -> u64 {
        let n = self.n;
        let dt = w.courant; // dx = 1
        let mut work = 0u64;
        profiler.enter(fns.rhs);
        let mut dk = vec![0.0; n * n * n];
        for z in 1..n - 1 {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = (z * n + y) * n + x;
                    dk[i] = self.lap(&self.phi, x, y, z);
                    profiler.load(PHI_REGION + i as u64 * 8);
                    profiler.load(K_REGION + i as u64 * 8);
                    profiler.retire(14);
                    work += 1;
                }
            }
        }
        profiler.exit();

        let mut diss = vec![0.0; n * n * n];
        if w.dissipation > 0.0 {
            profiler.enter(fns.dissipation);
            for z in 2..n - 2 {
                for y in 2..n - 2 {
                    for x in 2..n - 2 {
                        let i = (z * n + y) * n + x;
                        // Fourth-derivative dissipation along x only (the
                        // classic KO operator applied dimension-split).
                        let d4 = self.phi[i - 2] - 4.0 * self.phi[i - 1] + 6.0 * self.phi[i]
                            - 4.0 * self.phi[i + 1]
                            + self.phi[i + 2];
                        diss[i] = -w.dissipation * d4 / 16.0;
                        profiler.retire(8);
                    }
                }
            }
            profiler.exit();
        }

        profiler.enter(fns.update);
        for i in 0..n * n * n {
            self.kk[i] += dt * dk[i];
            self.phi[i] += dt * (self.kk[i] + diss[i]);
            // Conformal factor relaxes toward 1 + φ² (nonlinear coupling
            // standing in for the BSSN constraint fields).
            self.conformal[i] += 0.1 * dt * (1.0 + self.phi[i] * self.phi[i] - self.conformal[i]);
            profiler.store(PHI_REGION + i as u64 * 8);
            profiler.retire(8);
        }
        profiler.exit();
        work
    }

    /// Discrete wave energy `Σ (K² + |∇φ|²)/2` over interior points.
    pub fn energy(&self) -> f64 {
        let n = self.n;
        let mut e = 0.0;
        for z in 1..n - 1 {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = (z * n + y) * n + x;
                    let gx = (self.phi[i + 1] - self.phi[i - 1]) / 2.0;
                    let gy = (self.phi[i + n] - self.phi[i - n]) / 2.0;
                    let gz = (self.phi[i + n * n] - self.phi[i - n * n]) / 2.0;
                    e += 0.5 * (self.kk[i] * self.kk[i] + gx * gx + gy * gy + gz * gz);
                }
            }
        }
        e
    }

    /// Maximum |φ| over the grid.
    pub fn max_abs_phi(&self) -> f64 {
        self.phi.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }
}

/// Runs a workload; returns the final state and total site updates.
pub fn simulate(w: &PdeWorkload, profiler: &mut Profiler) -> (BssnState, u64) {
    let fns = register(profiler);
    let mut state = BssnState::new(w);
    let mut work = 0;
    for _ in 0..w.steps {
        work += state.step(w, profiler, &fns);
    }
    (state, work)
}

/// The cactuBSSN mini-benchmark.
#[derive(Debug)]
pub struct MiniCactu {
    workloads: Vec<Named<PdeWorkload>>,
}

impl MiniCactu {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniCactu {
            workloads: standard_set(scale, pde::train, pde::refrate, pde::alberta_set),
        }
    }
}

impl Benchmark for MiniCactu {
    fn name(&self) -> &'static str {
        "507.cactuBSSN_r"
    }

    fn short_name(&self) -> &'static str {
        "cactuBSSN"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let w = find_workload(&self.workloads, self.name(), workload)?;
        let (state, work) = simulate(w, profiler);
        let e = state.energy();
        if !e.is_finite() {
            return Err(BenchError::InvalidInput {
                benchmark: "507.cactuBSSN_r",
                reason: "evolution diverged".to_owned(),
            });
        }
        Ok(RunOutput {
            checksum: fnv1a([e.to_bits(), state.max_abs_phi().to_bits()]),
            work,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_workloads::pde::PdeGen;

    fn workload(initial: InitialData, steps: usize) -> PdeWorkload {
        let mut gen = PdeGen::standard(Scale::Test);
        gen.steps = steps;
        let mut w = gen.generate(initial, 3);
        w.courant = 0.25;
        w.dissipation = 0.1;
        w
    }

    fn run(w: &PdeWorkload) -> (BssnState, u64) {
        let mut p = Profiler::default();
        let out = simulate(w, &mut p);
        let _ = p.finish();
        out
    }

    #[test]
    fn flat_space_stays_flat() {
        let mut w = workload(InitialData::SmoothNoise { amplitude: 0.0 }, 6);
        w.dissipation = 0.0;
        let (state, _) = run(&w);
        assert!(state.max_abs_phi() < 1e-12);
        assert!(state.energy() < 1e-12);
        // Conformal factor relaxes to exactly 1 for φ = 0.
        for &c in state.conformal.iter().take(16) {
            assert!((c - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pulse_spreads_outward() {
        let w = workload(InitialData::GaussianPulse { width: 0.1 }, 8);
        let initial = BssnState::new(&w);
        let peak0 = initial.max_abs_phi();
        let (state, _) = run(&w);
        // The central peak decays as the wave propagates outward.
        let n = state.n;
        let center = (n / 2 * n + n / 2) * n + n / 2;
        assert!(
            state.phi[center].abs() < peak0,
            "center must radiate energy away"
        );
    }

    #[test]
    fn evolution_is_stable_under_cfl() {
        let w = workload(InitialData::BinaryPulses { separation: 0.3 }, 20);
        let (state, _) = run(&w);
        assert!(state.energy().is_finite());
        assert!(state.max_abs_phi() < 10.0, "bounded evolution expected");
    }

    #[test]
    fn dissipation_reduces_noise_energy() {
        let base = workload(InitialData::SmoothNoise { amplitude: 0.2 }, 6);
        let mut no_diss = base.clone();
        no_diss.dissipation = 0.0;
        let mut with_diss = base;
        with_diss.dissipation = 0.3;
        let (s1, _) = run(&no_diss);
        let (s2, _) = run(&with_diss);
        assert!(
            s2.energy() < s1.energy(),
            "KO dissipation must damp noise: {} vs {}",
            s2.energy(),
            s1.energy()
        );
    }

    #[test]
    fn finer_grids_do_more_work() {
        let coarse =
            PdeGen { grid: 10, steps: 2 }.generate(InitialData::GaussianPulse { width: 0.2 }, 1);
        let fine =
            PdeGen { grid: 20, steps: 2 }.generate(InitialData::GaussianPulse { width: 0.2 }, 1);
        let (_, w1) = run(&coarse);
        let (_, w2) = run(&fine);
        assert!(w2 > w1 * 4);
    }

    #[test]
    fn benchmark_runs_and_is_deterministic() {
        let b = MiniCactu::new(Scale::Test);
        let name = b
            .workload_names()
            .into_iter()
            .find(|n| n.starts_with("alberta.gauss"))
            .expect("gaussian workload present");
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let o1 = b.run(&name, &mut p1).unwrap();
        let o2 = b.run(&name, &mut p2).unwrap();
        assert_eq!(o1, o2);
        let cov = p1.finish().coverage_percent();
        assert!(cov["cactu::compute_rhs"] > 25.0, "{cov:?}");
    }
}
