//! `523.xalancbmk_r` stand-in: an XML parser plus an XSLT-subset
//! transformation engine.
//!
//! The SPEC benchmark transforms XML through Xalan-C++ stylesheets. This
//! mini parses the generated auction documents into a DOM arena and
//! executes a template-based transformation program over it. The
//! stylesheet grammar (see `alberta_workloads::xmlgen`) covers the XSLT
//! constructs that drive Xalan's behaviour: template dispatch by element
//! name, `apply` recursion, `for-each` iteration, `value-of` extraction,
//! and attribute-predicate `if`s.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::xmlgen::{self, XmlWorkload};
use alberta_workloads::{Named, Scale};

const DOM_REGION: u64 = 0xB000_0000;
const OUT_REGION: u64 = 0xC000_0000;

/// A DOM node in the arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    /// Element name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child element arena indices.
    pub children: Vec<u32>,
    /// Concatenated text content directly inside this element.
    pub text: String,
}

/// A parsed document: an arena of nodes, index 0 is the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlDoc {
    /// The node arena.
    pub nodes: Vec<XmlNode>,
}

/// Parses a document.
///
/// # Errors
///
/// Returns a message on unbalanced tags or malformed syntax.
pub fn parse_xml(input: &str, profiler: &mut Profiler, fns: &Fns) -> Result<XmlDoc, String> {
    profiler.enter(fns.parse);
    let result = parse_xml_inner(input, profiler);
    profiler.exit();
    result
}

fn parse_xml_inner(input: &str, profiler: &mut Profiler) -> Result<XmlDoc, String> {
    let mut nodes: Vec<XmlNode> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut root: Option<u32> = None;
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        profiler.load(DOM_REGION + i as u64 % (1 << 22));
        if bytes[i] == b'<' {
            let close = input[i..]
                .find('>')
                .map(|k| i + k)
                .ok_or_else(|| "unterminated tag".to_owned())?;
            let tag = &input[i + 1..close];
            profiler.retire(4);
            if let Some(name) = tag.strip_prefix('/') {
                // Closing tag.
                let top = stack.pop().ok_or_else(|| format!("unmatched </{name}>"))?;
                profiler.branch(0, true);
                if nodes[top as usize].name != name {
                    return Err(format!(
                        "mismatched close: expected </{}>, found </{name}>",
                        nodes[top as usize].name
                    ));
                }
            } else {
                profiler.branch(0, false);
                let self_closing = tag.ends_with('/');
                let tag = tag.trim_end_matches('/');
                let mut parts = tag.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| "empty tag".to_owned())?
                    .to_owned();
                let mut attrs = Vec::new();
                for p in parts {
                    if let Some((k, v)) = p.split_once('=') {
                        attrs.push((k.to_owned(), v.trim_matches('"').to_owned()));
                        profiler.retire(2);
                    }
                }
                let id = nodes.len() as u32;
                nodes.push(XmlNode {
                    name,
                    attrs,
                    children: Vec::new(),
                    text: String::new(),
                });
                profiler.store(DOM_REGION + id as u64 * 64 % (1 << 22));
                if let Some(&parent) = stack.last() {
                    nodes[parent as usize].children.push(id);
                } else if root.is_none() {
                    root = Some(id);
                } else {
                    return Err("multiple root elements".to_owned());
                }
                if !self_closing {
                    stack.push(id);
                }
            }
            i = close + 1;
        } else {
            let next = input[i..].find('<').map(|k| i + k).unwrap_or(bytes.len());
            let text = input[i..next].trim();
            if !text.is_empty() {
                if let Some(&top) = stack.last() {
                    nodes[top as usize].text.push_str(text);
                    profiler.retire(text.len() as u64 / 4 + 1);
                }
            }
            i = next;
        }
    }
    if !stack.is_empty() {
        return Err(format!("{} unclosed elements", stack.len()));
    }
    if nodes.is_empty() {
        return Err("empty document".to_owned());
    }
    Ok(XmlDoc { nodes })
}

/// One stylesheet action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Emit literal text.
    Emit(String),
    /// Apply templates to children matching the name (`*` = all).
    Apply(String),
    /// Output the text of the first child element with the given name.
    ValueOf(String),
    /// Iterate over matching children with a nested body.
    ForEach(String, Vec<Action>),
    /// Attribute predicate: `@attr > n` or `@attr < n`.
    If {
        /// Attribute name (without `@`).
        attr: String,
        /// True for `>`, false for `<`.
        greater: bool,
        /// Comparison constant.
        value: i64,
        /// Body.
        body: Vec<Action>,
    },
}

/// A compiled stylesheet: element name → template body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Stylesheet {
    templates: Vec<(String, Vec<Action>)>,
}

impl Stylesheet {
    /// Looks up the template for an element name.
    pub fn template(&self, name: &str) -> Option<&[Action]> {
        self.templates
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| a.as_slice())
    }
}

/// Parses the mini-XSLT grammar.
///
/// # Errors
///
/// Returns a message on malformed syntax.
pub fn parse_stylesheet(src: &str) -> Result<Stylesheet, String> {
    let mut lines = src.lines().peekable();
    let mut templates = Vec::new();
    while let Some(line) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("template ")
            .ok_or_else(|| format!("expected template declaration, got {line:?}"))?;
        let name = rest
            .strip_suffix('{')
            .ok_or_else(|| "template must open a brace".to_owned())?
            .trim()
            .to_owned();
        let body = parse_block(&mut lines)?;
        templates.push((name, body));
    }
    Ok(Stylesheet { templates })
}

fn parse_block<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
) -> Result<Vec<Action>, String> {
    let mut actions = Vec::new();
    while let Some(line) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "}" {
            return Ok(actions);
        }
        if let Some(text) = line.strip_prefix("emit ") {
            actions.push(Action::Emit(text.to_owned()));
        } else if let Some(name) = line.strip_prefix("apply ") {
            actions.push(Action::Apply(name.trim().to_owned()));
        } else if let Some(name) = line.strip_prefix("value-of ") {
            actions.push(Action::ValueOf(name.trim().to_owned()));
        } else if let Some(rest) = line.strip_prefix("for-each ") {
            let name = rest
                .strip_suffix('{')
                .ok_or_else(|| "for-each must open a brace".to_owned())?
                .trim()
                .to_owned();
            // Recursive: consume the nested block.
            let body = parse_block_rec(lines)?;
            actions.push(Action::ForEach(name, body));
        } else if let Some(rest) = line.strip_prefix("if ") {
            let cond = rest
                .strip_suffix('{')
                .ok_or_else(|| "if must open a brace".to_owned())?
                .trim();
            let (attr_part, greater, value_part) = if let Some((a, v)) = cond.split_once('>') {
                (a, true, v)
            } else if let Some((a, v)) = cond.split_once('<') {
                (a, false, v)
            } else {
                return Err(format!("unsupported condition {cond:?}"));
            };
            let attr = attr_part
                .trim()
                .strip_prefix('@')
                .ok_or_else(|| "condition must test an attribute".to_owned())?
                .to_owned();
            let value: i64 = value_part
                .trim()
                .parse()
                .map_err(|_| format!("bad constant in {cond:?}"))?;
            let body = parse_block_rec(lines)?;
            actions.push(Action::If {
                attr,
                greater,
                value,
                body,
            });
        } else {
            return Err(format!("unknown action {line:?}"));
        }
    }
    Err("unterminated block".to_owned())
}

fn parse_block_rec<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
) -> Result<Vec<Action>, String> {
    parse_block(lines)
}

/// Public function-id bundle so helpers can be called from tests.
#[derive(Debug)]
pub struct Fns {
    parse: FnId,
    transform: FnId,
    match_template: FnId,
    output: FnId,
}

/// Registers the xalan function table.
pub fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        parse: profiler.register_function("xalan::parse_xml", 2400),
        transform: profiler.register_function("xalan::transform", 2000),
        match_template: profiler.register_function("xalan::match_template", 900),
        output: profiler.register_function("xalan::emit_output", 700),
    }
}

/// Applies the stylesheet to a document, returning the output text.
pub fn transform(doc: &XmlDoc, sheet: &Stylesheet, profiler: &mut Profiler, fns: &Fns) -> String {
    let mut out = String::new();
    apply_to(doc, 0, sheet, &mut out, profiler, fns, 0);
    out
}

#[allow(clippy::too_many_arguments)]
fn apply_to(
    doc: &XmlDoc,
    node: u32,
    sheet: &Stylesheet,
    out: &mut String,
    profiler: &mut Profiler,
    fns: &Fns,
    depth: u32,
) {
    if depth > 64 {
        return; // cycle guard; generated documents never nest this deep
    }
    profiler.enter(fns.match_template);
    let n = &doc.nodes[node as usize];
    profiler.load(DOM_REGION + node as u64 * 64 % (1 << 22));
    let template = sheet.template(&n.name);
    profiler.branch(1, template.is_some());
    profiler.exit();
    let Some(actions) = template else {
        // Default rule: recurse into children (XSLT's built-in template).
        let children = n.children.clone();
        for c in children {
            apply_to(doc, c, sheet, out, profiler, fns, depth + 1);
        }
        return;
    };
    profiler.enter(fns.transform);
    run_actions(doc, node, actions, sheet, out, profiler, fns, depth);
    profiler.exit();
}

#[allow(clippy::too_many_arguments)]
fn run_actions(
    doc: &XmlDoc,
    node: u32,
    actions: &[Action],
    sheet: &Stylesheet,
    out: &mut String,
    profiler: &mut Profiler,
    fns: &Fns,
    depth: u32,
) {
    let n = &doc.nodes[node as usize];
    for action in actions {
        profiler.retire(2);
        match action {
            Action::Emit(text) => {
                profiler.enter(fns.output);
                out.push_str(text);
                out.push('\n');
                profiler.store(OUT_REGION + out.len() as u64 % (1 << 22));
                profiler.exit();
            }
            Action::Apply(name) => {
                for &c in &n.children {
                    let matches = name == "*" || doc.nodes[c as usize].name == *name;
                    profiler.branch(2, matches);
                    if matches {
                        apply_to(doc, c, sheet, out, profiler, fns, depth + 1);
                    }
                }
            }
            Action::ValueOf(name) => {
                profiler.enter(fns.output);
                for &c in &n.children {
                    profiler.load(DOM_REGION + c as u64 * 64 % (1 << 22));
                    if doc.nodes[c as usize].name == *name {
                        out.push_str(&doc.nodes[c as usize].text);
                        out.push('\n');
                        break;
                    }
                }
                profiler.store(OUT_REGION + out.len() as u64 % (1 << 22));
                profiler.exit();
            }
            Action::ForEach(name, body) => {
                for &c in &n.children {
                    let matches = name == "*" || doc.nodes[c as usize].name == *name;
                    profiler.branch(3, matches);
                    if matches {
                        run_actions(doc, c, body, sheet, out, profiler, fns, depth + 1);
                    }
                }
            }
            Action::If {
                attr,
                greater,
                value,
                body,
            } => {
                let actual: Option<i64> = n
                    .attrs
                    .iter()
                    .find(|(k, _)| k == attr)
                    .and_then(|(_, v)| v.parse().ok());
                let pass = match actual {
                    Some(a) => {
                        if *greater {
                            a > *value
                        } else {
                            a < *value
                        }
                    }
                    None => false,
                };
                profiler.branch(4, pass);
                if pass {
                    run_actions(doc, node, body, sheet, out, profiler, fns, depth);
                }
            }
        }
    }
}

/// The xalancbmk mini-benchmark.
#[derive(Debug)]
pub struct MiniXalan {
    workloads: Vec<Named<XmlWorkload>>,
}

impl MiniXalan {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniXalan {
            workloads: standard_set(scale, xmlgen::train, xmlgen::refrate, xmlgen::alberta_set),
        }
    }
}

impl Benchmark for MiniXalan {
    fn name(&self) -> &'static str {
        "523.xalancbmk_r"
    }

    fn short_name(&self) -> &'static str {
        "xalancbmk"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let w = find_workload(&self.workloads, self.name(), workload)?;
        let fns = register(profiler);
        let invalid = |reason: String| BenchError::InvalidInput {
            benchmark: "523.xalancbmk_r",
            reason,
        };
        let doc = parse_xml(&w.document, profiler, &fns).map_err(invalid)?;
        let sheet = parse_stylesheet(&w.stylesheet).map_err(|reason| BenchError::InvalidInput {
            benchmark: "523.xalancbmk_r",
            reason,
        })?;
        let out = transform(&doc, &sheet, profiler, &fns);
        Ok(RunOutput {
            checksum: fnv1a(out.bytes().map(|b| b as u64)),
            work: out.len() as u64,
        })
    }

    fn inject_malformed(&mut self, workload: &str, seed: u64) -> bool {
        self.workloads
            .iter_mut()
            .find(|n| n.name == workload)
            .map(|n| n.workload.truncate_document(seed))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_fns<T>(f: impl FnOnce(&mut Profiler, &Fns) -> T) -> T {
        let mut p = Profiler::default();
        let fns = register(&mut p);
        let r = f(&mut p, &fns);
        let _ = p.finish();
        r
    }

    #[test]
    fn parses_nested_document() {
        let doc =
            with_fns(|p, fns| parse_xml("<a x=\"1\"><b>hi</b><c><b>deep</b></c></a>", p, fns))
                .unwrap();
        assert_eq!(doc.nodes[0].name, "a");
        assert_eq!(doc.nodes[0].attrs, vec![("x".to_owned(), "1".to_owned())]);
        assert_eq!(doc.nodes[0].children.len(), 2);
        assert_eq!(doc.nodes[1].text, "hi");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "<a><b></a></b>",
            "<a>",
            "<a></a><b></b>",
            "no tags at all <",
        ] {
            assert!(
                with_fns(|p, fns| parse_xml(bad, p, fns)).is_err(),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn stylesheet_round_trips_grammar() {
        let sheet = parse_stylesheet(&xmlgen::standard_stylesheet()).unwrap();
        assert!(sheet.template("auction").is_some());
        assert!(sheet.template("people").is_some());
        assert!(sheet.template("missing").is_none());
    }

    #[test]
    fn transform_applies_template_and_predicates() {
        let xml = "<auction><people>\
                   <person id=\"p0\" rating=\"9\"><name>ada</name><city>york</city></person>\
                   <person id=\"p1\" rating=\"2\"><name>bob</name><city>hull</city></person>\
                   </people><items></items></auction>";
        let out = with_fns(|p, fns| {
            let doc = parse_xml(xml, p, fns).unwrap();
            let sheet = parse_stylesheet(&xmlgen::standard_stylesheet()).unwrap();
            transform(&doc, &sheet, p, fns)
        });
        assert!(out.contains("ada"), "high-rated seller included: {out}");
        assert!(!out.contains("bob"), "low-rated seller filtered: {out}");
        assert!(out.contains("<report>"));
        assert!(out.contains("</report>"));
    }

    #[test]
    fn default_rule_recurses_through_unmatched_elements() {
        let xml = "<root><wrapper><person rating=\"8\"><name>eve</name></person></wrapper></root>";
        let sheet = parse_stylesheet("template person {\n  value-of name\n}\n").unwrap();
        let out = with_fns(|p, fns| {
            let doc = parse_xml(xml, p, fns).unwrap();
            transform(&doc, &sheet, p, fns)
        });
        assert!(out.contains("eve"));
    }

    #[test]
    fn bad_stylesheets_error() {
        assert!(parse_stylesheet("nonsense {\n}\n").is_err());
        assert!(parse_stylesheet("template a {\n  explode\n}\n").is_err());
        assert!(parse_stylesheet("template a {\n  if x > 3 {\n  }\n}\n").is_err());
        assert!(parse_stylesheet("template a {\n").is_err());
    }

    #[test]
    fn benchmark_runs_on_generated_workloads() {
        let b = MiniXalan::new(Scale::Test);
        let mut p = Profiler::default();
        let out = b.run("alberta.0", &mut p).unwrap();
        assert!(out.work > 0);
        let cov = p.finish().coverage_percent();
        assert!(cov["xalan::parse_xml"] > 5.0, "{cov:?}");
    }

    #[test]
    fn determinism() {
        let b = MiniXalan::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        assert_eq!(
            b.run("refrate", &mut p1).unwrap(),
            b.run("refrate", &mut p2).unwrap()
        );
    }
}
