//! Recursive-descent parser for the mini-C subset.

use super::ast::{BinOp, Expr, Function, Global, Item, Program, Stmt};
use super::lexer::Token;

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

type PResult<T> = Result<T, String>;

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> PResult<&Token> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| "unexpected end of input".to_owned())?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_punct(&mut self, p: &str) -> PResult<()> {
        match self.next()? {
            Token::Punct(q) if *q == p => Ok(()),
            t => Err(format!("expected {p:?}, found {t}")),
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Token::Punct(q)) if *q == p)
    }

    fn ident(&mut self) -> PResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s.clone()),
            t => Err(format!("expected identifier, found {t}")),
        }
    }

    fn item(&mut self) -> PResult<Item> {
        let is_extern = matches!(self.peek(), Some(Token::KwExtern));
        if is_extern {
            self.pos += 1;
        }
        let is_static = matches!(self.peek(), Some(Token::KwStatic));
        if is_static {
            self.pos += 1;
        }
        match self.next()? {
            Token::KwInt => {}
            t => return Err(format!("expected type `int`, found {t}")),
        }
        let name = self.ident()?;
        if self.at_punct("(") {
            // Function definition or extern declaration.
            self.eat_punct("(")?;
            let mut params = Vec::new();
            if !self.at_punct(")") {
                loop {
                    match self.next()? {
                        Token::KwInt => {}
                        t => return Err(format!("expected parameter type, found {t}")),
                    }
                    params.push(self.ident()?);
                    if self.at_punct(",") {
                        self.eat_punct(",")?;
                    } else {
                        break;
                    }
                }
            }
            self.eat_punct(")")?;
            if is_extern || self.at_punct(";") {
                self.eat_punct(";")?;
                return Ok(Item::ExternDecl(name));
            }
            let body = self.block()?;
            Ok(Item::Function(Function {
                name,
                params,
                body,
                is_static,
            }))
        } else if self.at_punct("[") {
            self.eat_punct("[")?;
            let len = match self.next()? {
                Token::Num(n) if *n > 0 => *n as usize,
                t => return Err(format!("expected positive array length, found {t}")),
            };
            self.eat_punct("]")?;
            self.eat_punct(";")?;
            Ok(Item::Global(Global {
                name,
                init: 0,
                array_len: Some(len),
                is_static,
            }))
        } else {
            let init = if self.at_punct("=") {
                self.eat_punct("=")?;
                self.const_int()?
            } else {
                0
            };
            self.eat_punct(";")?;
            Ok(Item::Global(Global {
                name,
                init,
                array_len: None,
                is_static,
            }))
        }
    }

    fn const_int(&mut self) -> PResult<i64> {
        let neg = self.at_punct("-");
        if neg {
            self.eat_punct("-")?;
        }
        match self.next()? {
            Token::Num(n) => Ok(if neg { -n } else { *n }),
            t => Err(format!("expected integer initializer, found {t}")),
        }
    }

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            stmts.push(self.stmt()?);
        }
        self.eat_punct("}")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        match self.peek() {
            Some(Token::KwInt) => {
                self.pos += 1;
                let name = self.ident()?;
                self.eat_punct("=")?;
                let e = self.expr()?;
                self.eat_punct(";")?;
                Ok(Stmt::Decl(name, e))
            }
            Some(Token::KwIf) => {
                self.pos += 1;
                self.eat_punct("(")?;
                let cond = self.expr()?;
                self.eat_punct(")")?;
                let then = self.block()?;
                let els = if matches!(self.peek(), Some(Token::KwElse)) {
                    self.pos += 1;
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Some(Token::KwWhile) => {
                self.pos += 1;
                self.eat_punct("(")?;
                let cond = self.expr()?;
                self.eat_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            Some(Token::KwReturn) => {
                self.pos += 1;
                let e = self.expr()?;
                self.eat_punct(";")?;
                Ok(Stmt::Return(e))
            }
            Some(Token::Ident(_)) => {
                // Assignment, array store, or expression statement.
                let save = self.pos;
                let name = self.ident()?;
                if self.at_punct("=") {
                    self.eat_punct("=")?;
                    let e = self.expr()?;
                    self.eat_punct(";")?;
                    Ok(Stmt::Assign(name, e))
                } else if self.at_punct("[") {
                    self.eat_punct("[")?;
                    let idx = self.expr()?;
                    self.eat_punct("]")?;
                    if self.at_punct("=") {
                        self.eat_punct("=")?;
                        let val = self.expr()?;
                        self.eat_punct(";")?;
                        Ok(Stmt::Store(name, idx, val))
                    } else {
                        // It was an expression like `buf[i];` — reparse.
                        self.pos = save;
                        let e = self.expr()?;
                        self.eat_punct(";")?;
                        Ok(Stmt::Expr(e))
                    }
                } else {
                    self.pos = save;
                    let e = self.expr()?;
                    self.eat_punct(";")?;
                    Ok(Stmt::Expr(e))
                }
            }
            _ => {
                let e = self.expr()?;
                self.eat_punct(";")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn expr(&mut self) -> PResult<Expr> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some(Token::Punct(p)) = self.peek() {
            let (op, prec) = match *p {
                "||" => (BinOp::Or, 1),
                "&&" => (BinOp::And, 2),
                "==" => (BinOp::Eq, 3),
                "!=" => (BinOp::Ne, 3),
                "<" => (BinOp::Lt, 4),
                ">" => (BinOp::Gt, 4),
                "<=" => (BinOp::Le, 4),
                ">=" => (BinOp::Ge, 4),
                "+" => (BinOp::Add, 5),
                "-" => (BinOp::Sub, 5),
                "*" => (BinOp::Mul, 6),
                "/" => (BinOp::Div, 6),
                "%" => (BinOp::Mod, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        if self.at_punct("-") {
            self.eat_punct("-")?;
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.at_punct("!") {
            self.eat_punct("!")?;
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.next()?.clone() {
            Token::Num(n) => Ok(Expr::Num(n)),
            Token::Punct("(") => {
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Token::Ident(name) => {
                if self.at_punct("(") {
                    self.eat_punct("(")?;
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.at_punct(",") {
                                self.eat_punct(",")?;
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat_punct(")")?;
                    Ok(Expr::Call(name, args))
                } else if self.at_punct("[") {
                    self.eat_punct("[")?;
                    let idx = self.expr()?;
                    self.eat_punct("]")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            t => Err(format!("unexpected token {t} in expression")),
        }
    }
}

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// Returns a message describing the first syntax error.
pub fn parse(tokens: &[Token]) -> Result<Program, String> {
    let mut parser = Parser { tokens, pos: 0 };
    let mut program = Program::default();
    while parser.peek().is_some() {
        match parser.item()? {
            Item::Global(g) => {
                if program.globals.iter().any(|x| x.name == g.name) {
                    return Err(format!("duplicate global {}", g.name));
                }
                program.globals.push(g);
            }
            Item::Function(f) => {
                if program.functions.iter().any(|x| x.name == f.name) {
                    return Err(format!("duplicate function {}", f.name));
                }
                program.functions.push(f);
            }
            Item::ExternDecl(_) => {}
        }
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn parse_src(src: &str) -> Result<Program, String> {
        parse(&lex(src)?)
    }

    #[test]
    fn parses_globals_functions_and_externs() {
        let p = parse_src(
            "int g = -3;\nstatic int h;\nint buf[16];\nextern int far(int a);\n\
             static int f(int a, int b) { return a; }\nint main() { return f(1, 2); }\n",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[0].init, -3);
        assert!(p.globals[1].is_static);
        assert_eq!(p.globals[2].array_len, Some(16));
        assert_eq!(p.functions.len(), 2);
        assert!(p.functions[0].is_static);
        assert_eq!(p.functions[0].params, vec!["a", "b"]);
    }

    #[test]
    fn expression_precedence_shapes_the_tree() {
        let p = parse_src("int main() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(e) = &p.functions[0].body[0] else {
            panic!("expected return");
        };
        // + at the root, * underneath.
        assert!(matches!(e, Expr::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn if_else_and_while_nest() {
        let p = parse_src(
            "int main() { int i = 0; while (i < 3) { if (i == 1) { i = 5; } else { i = i + 1; } } return i; }",
        )
        .unwrap();
        assert_eq!(p.functions[0].body.len(), 3);
        let Stmt::While(_, body) = &p.functions[0].body[1] else {
            panic!("expected while");
        };
        assert!(matches!(body[0], Stmt::If(_, _, _)));
    }

    #[test]
    fn array_load_in_expression_position() {
        let p = parse_src("int b[4];\nint main() { return b[2] + b[3]; }").unwrap();
        let Stmt::Return(Expr::Bin(_, l, _)) = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(**l, Expr::Index(_, _)));
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(parse_src("int g;\nint g;\n").is_err());
        assert!(parse_src("int f() { return 0; }\nint f() { return 1; }").is_err());
    }

    #[test]
    fn syntax_errors_have_messages() {
        for bad in [
            "int main() { return 1 + ; }",
            "int main() { while 1 { } }",
            "int main() { int = 3; }",
            "int [3];",
            "int a[0];",
        ] {
            let err = parse_src(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad}");
        }
    }
}
