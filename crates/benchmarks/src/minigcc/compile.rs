//! Bytecode generation for the mini-C subset.

use super::ast::{BinOp, Expr, Program, Stmt};
use alberta_profile::Profiler;

/// Optimization and code-layout options — the compiler's `-O` flags plus
/// the profile-guided knobs used by the FDO laboratory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptOptions {
    /// Constant folding.
    pub fold_constants: bool,
    /// Dead-code elimination.
    pub dead_code_elimination: bool,
    /// Heuristic inlining of small leaf-shaped functions.
    pub inline_calls: bool,
    /// Maximum body statements for heuristic inlining.
    pub inline_budget: usize,
    /// Functions to force-inline wherever legal (profile-guided).
    pub force_inline: Vec<String>,
    /// Profile-guided function emission order (hot-first code layout).
    pub function_order: Option<Vec<String>>,
}

impl Default for OptOptions {
    /// `-O2`-ish: folding, DCE and heuristic inlining, no profile data.
    fn default() -> Self {
        OptOptions {
            fold_constants: true,
            dead_code_elimination: true,
            inline_calls: true,
            inline_budget: 4,
            force_inline: Vec::new(),
            function_order: None,
        }
    }
}

impl OptOptions {
    /// `-O0`: no transformation at all.
    pub fn none() -> Self {
        OptOptions {
            fold_constants: false,
            dead_code_elimination: false,
            inline_calls: false,
            inline_budget: 0,
            force_inline: Vec::new(),
            function_order: None,
        }
    }
}

/// A bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push a constant.
    Const(i64),
    /// Push local slot.
    LoadLocal(u16),
    /// Pop into local slot.
    StoreLocal(u16),
    /// Push global scalar.
    LoadGlobal(u16),
    /// Pop into global scalar.
    StoreGlobal(u16),
    /// Pop index, push `array[index % len]`.
    LoadArr(u16),
    /// Pop value then index, store into `array[index % len]`.
    StoreArr(u16),
    /// Pop rhs then lhs, push the operation result.
    Bin(BinOp),
    /// Arithmetic negation of the stack top.
    Neg,
    /// Logical not of the stack top.
    Not,
    /// Unconditional jump to an absolute instruction index.
    Jump(u32),
    /// Pop; jump when zero.
    JumpIfZero(u32),
    /// Call function by module index; arguments are on the stack.
    Call(u16),
    /// Return with the stack top as the value.
    Ret,
    /// Discard the stack top.
    Pop,
}

/// Compiled code of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncCode {
    /// Function name.
    pub name: String,
    /// Parameter count (occupying the first local slots).
    pub params: u16,
    /// Total local slots (params + declared locals).
    pub locals: u16,
    /// The instructions.
    pub code: Vec<Op>,
}

/// A compiled module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Functions in emission (code layout) order.
    pub funcs: Vec<FuncCode>,
    /// Initial values of global scalars.
    pub global_init: Vec<i64>,
    /// Global scalar names (parallel to `global_init`).
    pub global_names: Vec<String>,
    /// Array lengths.
    pub array_lens: Vec<usize>,
    /// Array names (parallel to `array_lens`).
    pub array_names: Vec<String>,
    /// Index of `main` in `funcs`.
    pub main: usize,
}

struct FnCompiler<'a> {
    code: Vec<Op>,
    locals: Vec<String>,
    params: u16,
    globals: &'a [String],
    arrays: &'a [String],
    fn_names: &'a [String],
}

impl FnCompiler<'_> {
    fn local_slot(&mut self, name: &str) -> Option<u16> {
        self.locals.iter().position(|l| l == name).map(|i| i as u16)
    }

    fn declare_local(&mut self, name: &str) -> Result<u16, String> {
        if self.local_slot(name).is_some() {
            return Err(format!("duplicate local {name}"));
        }
        self.locals.push(name.to_owned());
        Ok((self.locals.len() - 1) as u16)
    }

    fn expr(&mut self, e: &Expr) -> Result<(), String> {
        match e {
            Expr::Num(n) => self.code.push(Op::Const(*n)),
            Expr::Var(name) => {
                if let Some(slot) = self.local_slot(name) {
                    self.code.push(Op::LoadLocal(slot));
                } else if let Some(g) = self.globals.iter().position(|g| g == name) {
                    self.code.push(Op::LoadGlobal(g as u16));
                } else {
                    return Err(format!("undeclared variable {name}"));
                }
            }
            Expr::Bin(op, l, r) => {
                self.expr(l)?;
                self.expr(r)?;
                self.code.push(Op::Bin(*op));
            }
            Expr::Neg(i) => {
                self.expr(i)?;
                self.code.push(Op::Neg);
            }
            Expr::Not(i) => {
                self.expr(i)?;
                self.code.push(Op::Not);
            }
            Expr::Call(name, args) => {
                let idx = self
                    .fn_names
                    .iter()
                    .position(|f| f == name)
                    .ok_or_else(|| format!("call to undefined function {name}"))?;
                for a in args {
                    self.expr(a)?;
                }
                self.code.push(Op::Call(idx as u16));
            }
            Expr::Index(name, idx) => {
                let a = self
                    .arrays
                    .iter()
                    .position(|x| x == name)
                    .ok_or_else(|| format!("unknown array {name}"))?;
                self.expr(idx)?;
                self.code.push(Op::LoadArr(a as u16));
            }
        }
        Ok(())
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), String> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), String> {
        match s {
            Stmt::Decl(name, e) => {
                self.expr(e)?;
                let slot = self.declare_local(name)?;
                self.code.push(Op::StoreLocal(slot));
            }
            Stmt::Assign(name, e) => {
                self.expr(e)?;
                if let Some(slot) = self.local_slot(name) {
                    self.code.push(Op::StoreLocal(slot));
                } else if let Some(g) = self.globals.iter().position(|g| g == name) {
                    self.code.push(Op::StoreGlobal(g as u16));
                } else {
                    return Err(format!("assignment to undeclared variable {name}"));
                }
            }
            Stmt::Store(name, idx, val) => {
                let a = self
                    .arrays
                    .iter()
                    .position(|x| x == name)
                    .ok_or_else(|| format!("unknown array {name}"))?;
                self.expr(idx)?;
                self.expr(val)?;
                self.code.push(Op::StoreArr(a as u16));
            }
            Stmt::If(cond, then, els) => {
                self.expr(cond)?;
                let jz_at = self.code.len();
                self.code.push(Op::JumpIfZero(0));
                self.block(then)?;
                if els.is_empty() {
                    let end = self.code.len() as u32;
                    self.code[jz_at] = Op::JumpIfZero(end);
                } else {
                    let jmp_at = self.code.len();
                    self.code.push(Op::Jump(0));
                    let else_start = self.code.len() as u32;
                    self.code[jz_at] = Op::JumpIfZero(else_start);
                    self.block(els)?;
                    let end = self.code.len() as u32;
                    self.code[jmp_at] = Op::Jump(end);
                }
            }
            Stmt::While(cond, body) => {
                let top = self.code.len() as u32;
                self.expr(cond)?;
                let jz_at = self.code.len();
                self.code.push(Op::JumpIfZero(0));
                self.block(body)?;
                self.code.push(Op::Jump(top));
                let end = self.code.len() as u32;
                self.code[jz_at] = Op::JumpIfZero(end);
            }
            Stmt::Return(e) => {
                self.expr(e)?;
                self.code.push(Op::Ret);
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.code.push(Op::Pop);
            }
        }
        Ok(())
    }
}

/// Compiles an (already optimized) program into a bytecode module.
///
/// # Errors
///
/// Returns a message for name-resolution failures or a missing `main`.
pub fn compile(
    program: &Program,
    _options: &OptOptions,
    profiler: &mut Profiler,
) -> Result<Module, String> {
    let global_names: Vec<String> = program
        .globals
        .iter()
        .filter(|g| g.array_len.is_none())
        .map(|g| g.name.clone())
        .collect();
    let global_init: Vec<i64> = program
        .globals
        .iter()
        .filter(|g| g.array_len.is_none())
        .map(|g| g.init)
        .collect();
    let array_names: Vec<String> = program
        .globals
        .iter()
        .filter(|g| g.array_len.is_some())
        .map(|g| g.name.clone())
        .collect();
    let array_lens: Vec<usize> = program.globals.iter().filter_map(|g| g.array_len).collect();
    let fn_names: Vec<String> = program.functions.iter().map(|f| f.name.clone()).collect();

    let mut funcs = Vec::with_capacity(program.functions.len());
    for f in &program.functions {
        let mut c = FnCompiler {
            code: Vec::new(),
            locals: f.params.clone(),
            params: f.params.len() as u16,
            globals: &global_names,
            arrays: &array_names,
            fn_names: &fn_names,
        };
        c.block(&f.body)?;
        // Implicit `return 0` safety net at the end of every function.
        c.code.push(Op::Const(0));
        c.code.push(Op::Ret);
        profiler.retire(c.code.len() as u64 * 2);
        funcs.push(FuncCode {
            name: f.name.clone(),
            params: c.params,
            locals: c.locals.len() as u16,
            code: c.code,
        });
    }
    let main = fn_names
        .iter()
        .position(|n| n == "main")
        .ok_or_else(|| "program has no main function".to_owned())?;
    Ok(Module {
        funcs,
        global_init,
        global_names,
        array_lens,
        array_names,
        main,
    })
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::super::parser::parse;
    use super::*;

    fn compile_src(src: &str) -> Result<Module, String> {
        let program = parse(&lex(src)?)?;
        let mut p = Profiler::default();
        let m = compile(&program, &OptOptions::none(), &mut p);
        let _ = p.finish();
        m
    }

    #[test]
    fn compiles_straight_line_code() {
        let m = compile_src("int main() { int x = 3; return x * 2; }").unwrap();
        let f = &m.funcs[m.main];
        assert_eq!(f.params, 0);
        assert_eq!(f.locals, 1);
        assert!(f.code.contains(&Op::Bin(BinOp::Mul)));
        assert!(f.code.ends_with(&[Op::Const(0), Op::Ret]));
    }

    #[test]
    fn jump_targets_are_well_formed() {
        let m = compile_src(
            "int main() { int i = 0; while (i < 4) { if (i == 2) { i = i + 2; } else { i = i + 1; } } return i; }",
        )
        .unwrap();
        let f = &m.funcs[m.main];
        for op in &f.code {
            if let Op::Jump(t) | Op::JumpIfZero(t) = op {
                assert!((*t as usize) <= f.code.len(), "target out of range");
            }
        }
    }

    #[test]
    fn name_resolution_errors() {
        assert!(compile_src("int main() { return y; }").is_err());
        assert!(compile_src("int main() { y = 3; return 0; }").is_err());
        assert!(compile_src("int main() { return f(1); }").is_err());
        assert!(compile_src("int main() { return b[0]; }").is_err());
        assert!(compile_src("int f() { return 0; }").is_err(), "no main");
    }

    #[test]
    fn globals_split_into_scalars_and_arrays() {
        let m = compile_src("int a = 1;\nint buf[5];\nint b = 2;\nint main() { return a + b; }")
            .unwrap();
        assert_eq!(m.global_names, vec!["a", "b"]);
        assert_eq!(m.global_init, vec![1, 2]);
        assert_eq!(m.array_names, vec!["buf"]);
        assert_eq!(m.array_lens, vec![5]);
    }

    #[test]
    fn duplicate_locals_rejected() {
        assert!(compile_src("int main() { int x = 1; int x = 2; return x; }").is_err());
    }
}
