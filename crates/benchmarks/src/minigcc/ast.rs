//! Abstract syntax tree of the mini-C subset.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (division by zero yields 0)
    Div,
    /// `%` (modulo by zero yields 0)
    Mod,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (non-short-circuit; both sides are pure in mini-C)
    And,
    /// `||`
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Variable reference (local, parameter, or global scalar).
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Logical not `!e`.
    Not(Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Global array load `name[idx]`.
    Index(String, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `int name = expr;`
    Decl(String, Expr),
    /// `name = expr;`
    Assign(String, Expr),
    /// `name[idx] = expr;`
    Store(String, Expr, Expr),
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>),
    /// `return expr;`
    Return(Expr),
    /// Bare expression statement (evaluated for side effects of calls).
    Expr(Expr),
}

/// A global definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Initial value (scalars only).
    pub init: i64,
    /// `Some(len)` for arrays (zero-initialized).
    pub array_len: Option<usize>,
    /// Whether declared `static`.
    pub is_static: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Whether declared `static`.
    pub is_static: bool,
}

/// A top-level item (used by the parser before splitting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A global variable or array.
    Global(Global),
    /// A function definition.
    Function(Function),
    /// An `extern int f(...);` declaration (no-op at link time here).
    ExternDecl(String),
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global variables in declaration order.
    pub globals: Vec<Global>,
    /// Functions in declaration order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total statement count (a rough program-size metric used by the
    /// inliner's budget).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If(_, t, e) => 1 + count(t) + count(e),
                    Stmt::While(_, b) => 1 + count(b),
                    _ => 1,
                })
                .sum()
        }
        self.functions.iter().map(|f| count(&f.body)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stmt_count_is_recursive() {
        let p = Program {
            globals: vec![],
            functions: vec![Function {
                name: "f".into(),
                params: vec![],
                is_static: false,
                body: vec![
                    Stmt::Decl("x".into(), Expr::Num(1)),
                    Stmt::While(
                        Expr::Num(0),
                        vec![Stmt::If(
                            Expr::Num(1),
                            vec![Stmt::Return(Expr::Num(2))],
                            vec![],
                        )],
                    ),
                ],
            }],
        };
        assert_eq!(p.stmt_count(), 4);
        assert!(p.function("f").is_some());
        assert!(p.function("g").is_none());
    }
}
