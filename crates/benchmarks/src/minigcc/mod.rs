//! `502.gcc_r` stand-in: a compiler for the mini-C subset, plus the
//! virtual machine that executes its bytecode.
//!
//! The pipeline mirrors a classic ahead-of-time compiler:
//!
//! ```text
//! source ── lexer ──> tokens ── parser ──> AST ── optimizer ──> AST
//!        ── codegen ──> bytecode module ── vm ──> result + edge profile
//! ```
//!
//! The benchmark run is the *compilation* (like SPEC's gcc, which
//! compiles its input file) followed by one execution of the produced
//! program to validate code generation. The compiler is also the
//! foundation of the `alberta-fdo` crate: the VM collects per-branch and
//! per-call edge profiles, and the code generator accepts profile-guided
//! options (hot-function layout and call inlining).

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod vm;

pub use ast::{BinOp, Expr, Function, Global, Item, Program, Stmt};
pub use compile::{compile, Module, OptOptions};
pub use lexer::{lex, Token};
pub use opt::optimize;
pub use parser::parse;
pub use vm::{run, run_with_inputs, run_with_limit, EdgeProfile, VmError};

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::Profiler;
use alberta_workloads::csrc::{self, CSource};
use alberta_workloads::{Named, Scale};

/// The gcc mini-benchmark.
#[derive(Debug)]
pub struct MiniGcc {
    workloads: Vec<Named<CSource>>,
}

impl MiniGcc {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniGcc {
            workloads: standard_set(scale, csrc::train, csrc::refrate, csrc::alberta_set),
        }
    }

    /// Compiles and runs a source string end to end (the library entry
    /// point shared with examples and the FDO laboratory).
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::InvalidInput`] on any front-end, codegen, or
    /// runtime failure.
    pub fn compile_and_run(
        source: &str,
        options: &OptOptions,
        profiler: &mut Profiler,
    ) -> Result<(i64, EdgeProfile), BenchError> {
        let invalid = |reason: String| BenchError::InvalidInput {
            benchmark: "502.gcc_r",
            reason,
        };
        let front = profiler.register_function("gcc::frontend", 4200);
        profiler.enter(front);
        let front_result = lex(source).and_then(|tokens| {
            profiler.retire(tokens.len() as u64 * 3);
            parse(&tokens)
        });
        profiler.exit();
        let program = front_result.map_err(invalid)?;

        let opt_fn = profiler.register_function("gcc::optimize", 2600);
        profiler.enter(opt_fn);
        let program = optimize(program, options, profiler);
        profiler.exit();

        let codegen = profiler.register_function("gcc::codegen", 3000);
        profiler.enter(codegen);
        let module = compile(&program, options, profiler).map_err(invalid)?;
        profiler.exit();

        let (result, edges) = run(&module, profiler).map_err(|e| invalid(e.to_string()))?;
        Ok((result, edges))
    }
}

impl Benchmark for MiniGcc {
    fn name(&self) -> &'static str {
        "502.gcc_r"
    }

    fn short_name(&self) -> &'static str {
        "gcc"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let w = find_workload(&self.workloads, self.name(), workload)?;
        let (result, edges) =
            MiniGcc::compile_and_run(&w.source, &OptOptions::default(), profiler)?;
        Ok(RunOutput {
            checksum: fnv1a([result as u64, edges.total_branches()]),
            work: edges.executed_ops(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(source: &str) -> i64 {
        let mut p = Profiler::default();
        let (r, _) = MiniGcc::compile_and_run(source, &OptOptions::default(), &mut p).unwrap();
        let _ = p.finish();
        r
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval("int main() { return 2 + 3 * 4; }"), 14);
        assert_eq!(eval("int main() { return (2 + 3) * 4; }"), 20);
        assert_eq!(eval("int main() { return 10 - 2 - 3; }"), 5);
        assert_eq!(eval("int main() { return 17 % 5 + 18 / 3; }"), 8);
        assert_eq!(eval("int main() { return -3 + 5; }"), 2);
        assert_eq!(eval("int main() { return !0 + !7; }"), 1);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval("int main() { return 3 < 5; }"), 1);
        assert_eq!(eval("int main() { return 5 <= 4; }"), 0);
        assert_eq!(eval("int main() { return 1 && 2; }"), 1);
        assert_eq!(eval("int main() { return 0 || 0; }"), 0);
        assert_eq!(eval("int main() { return 4 == 4; }"), 1);
        assert_eq!(eval("int main() { return 4 != 4; }"), 0);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        // Documented mini-C semantics: x/0 == 0, x%0 == 0.
        assert_eq!(eval("int main() { int z = 0; return 7 / z; }"), 0);
        assert_eq!(eval("int main() { int z = 0; return 7 % z; }"), 0);
    }

    #[test]
    fn locals_params_and_calls() {
        let src = "\
int add(int a, int b) { return a + b; }\n\
int main() { int x = add(2, 3); return add(x, 10); }\n";
        assert_eq!(eval(src), 15);
    }

    #[test]
    fn control_flow() {
        let src = "\
int main() {\n\
  int acc = 0;\n\
  int i = 0;\n\
  while (i < 10) {\n\
    if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }\n\
    i = i + 1;\n\
  }\n\
  return acc;\n\
}\n";
        assert_eq!(eval(src), 2 + 4 + 6 + 8 - 5);
    }

    #[test]
    fn globals_and_arrays() {
        let src = "\
int g = 5;\n\
int buf[8];\n\
int main() {\n\
  buf[3] = g * 2;\n\
  g = buf[3] + 1;\n\
  return g + buf[3];\n\
}\n";
        assert_eq!(eval(src), 21);
    }

    #[test]
    fn recursion_works() {
        let src = "\
int fib(int n) {\n\
  if (n < 2) { return n; }\n\
  return fib(n - 1) + fib(n - 2);\n\
}\n\
int main() { return fib(12); }\n";
        assert_eq!(eval(src), 144);
    }

    #[test]
    fn array_index_wraps_via_modulo_semantics() {
        // Out-of-range indices are clamped modulo the array length
        // (documented mini-C semantics; avoids UB in generated programs).
        let src = "int buf[4];\nint main() { buf[6] = 9; return buf[2]; }\n";
        assert_eq!(eval(src), 9);
    }

    #[test]
    fn generated_workloads_compile_and_run_deterministically() {
        let b = MiniGcc::new(Scale::Test);
        for name in ["train", "refrate", "alberta.0", "alberta.7"] {
            let mut p1 = Profiler::default();
            let mut p2 = Profiler::default();
            let r1 = b.run(name, &mut p1).unwrap();
            let r2 = b.run(name, &mut p2).unwrap();
            assert_eq!(r1, r2, "{name} must be deterministic");
            assert!(r1.work > 0);
        }
    }

    #[test]
    fn optimization_preserves_semantics_on_generated_programs() {
        use alberta_workloads::csrc::CSourceGen;
        let gen = CSourceGen::standard(Scale::Test);
        for seed in 0..6 {
            let src = gen.generate(seed).source;
            let mut p1 = Profiler::default();
            let mut p2 = Profiler::default();
            let none = OptOptions::none();
            let full = OptOptions::default();
            let (r_none, _) = MiniGcc::compile_and_run(&src, &none, &mut p1).unwrap();
            let (r_full, _) = MiniGcc::compile_and_run(&src, &full, &mut p2).unwrap();
            assert_eq!(r_none, r_full, "optimizer changed semantics (seed {seed})");
        }
    }

    #[test]
    fn front_end_rejects_garbage() {
        let mut p = Profiler::default();
        for bad in [
            "int main( { return 0; }",
            "int main() { return ; }",
            "float main() { return 0; }",
            "int main() { x = 1; return x; }",
            "int main() { return 0 }",
        ] {
            assert!(
                MiniGcc::compile_and_run(bad, &OptOptions::default(), &mut p).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn missing_main_is_an_error() {
        let mut p = Profiler::default();
        let err = MiniGcc::compile_and_run("int f() { return 1; }", &OptOptions::default(), &mut p)
            .unwrap_err();
        assert!(err.to_string().contains("main"));
    }
}
