//! Lexer for the mini-C subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Num(i64),
    /// Keyword `int`.
    KwInt,
    /// Keyword `if`.
    KwIf,
    /// Keyword `else`.
    KwElse,
    /// Keyword `while`.
    KwWhile,
    /// Keyword `return`.
    KwReturn,
    /// Keyword `static`.
    KwStatic,
    /// Keyword `extern`.
    KwExtern,
    /// A punctuation/operator token, e.g. `"+"`, `"<="`, `"{"`.
    Punct(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Num(n) => write!(f, "{n}"),
            Token::KwInt => write!(f, "int"),
            Token::KwIf => write!(f, "if"),
            Token::KwElse => write!(f, "else"),
            Token::KwWhile => write!(f, "while"),
            Token::KwReturn => write!(f, "return"),
            Token::KwStatic => write!(f, "static"),
            Token::KwExtern => write!(f, "extern"),
            Token::Punct(p) => write!(f, "{p}"),
        }
    }
}

const PUNCTS: [&str; 24] = [
    "<=", ">=", "==", "!=", "&&", "||", "+", "-", "*", "/", "%", "<", ">", "=", "!", "(", ")", "{",
    "}", "[", "]", ";", ",", "#",
];

/// Tokenizes mini-C source. `//` line comments are skipped.
///
/// # Errors
///
/// Returns a message pointing at the first unrecognized character.
pub fn lex(source: &str) -> Result<Vec<Token>, String> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &source[start..i];
            tokens.push(match word {
                "int" => Token::KwInt,
                "if" => Token::KwIf,
                "else" => Token::KwElse,
                "while" => Token::KwWhile,
                "return" => Token::KwReturn,
                "static" => Token::KwStatic,
                "extern" => Token::KwExtern,
                _ => Token::Ident(word.to_owned()),
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let n: i64 = source[start..i]
                .parse()
                .map_err(|_| format!("integer literal too large at byte {start}"))?;
            tokens.push(Token::Num(n));
            continue;
        }
        for p in PUNCTS {
            if source[i..].starts_with(p) {
                tokens.push(Token::Punct(p));
                i += p.len();
                continue 'outer;
            }
        }
        return Err(format!("unexpected character {:?} at byte {i}", c as char));
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_function() {
        let tokens = lex("int f(int a) { return a + 42; }").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::KwInt,
                Token::Ident("f".into()),
                Token::Punct("("),
                Token::KwInt,
                Token::Ident("a".into()),
                Token::Punct(")"),
                Token::Punct("{"),
                Token::KwReturn,
                Token::Ident("a".into()),
                Token::Punct("+"),
                Token::Num(42),
                Token::Punct(";"),
                Token::Punct("}"),
            ]
        );
    }

    #[test]
    fn two_char_operators_win_over_one_char() {
        let tokens = lex("a <= b == c && d").unwrap();
        let puncts: Vec<&str> = tokens
            .iter()
            .filter_map(|t| match t {
                Token::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["<=", "==", "&&"]);
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let tokens = lex("// a comment\nint x; // trailing\n").unwrap();
        assert_eq!(
            tokens,
            vec![Token::KwInt, Token::Ident("x".into()), Token::Punct(";")]
        );
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(lex("int x = 'c';").is_err());
        assert!(lex("int x = 1.5;").is_err());
    }

    #[test]
    fn rejects_huge_literals() {
        assert!(lex("int x = 99999999999999999999;").is_err());
    }

    #[test]
    fn tokens_display_round_trip() {
        for t in lex("static int f ( ) { return 1 <= 2 ; }").unwrap() {
            assert!(!t.to_string().is_empty());
        }
    }
}
