//! AST-level optimizer: constant folding, dead-code elimination, and
//! (profile-guidable) call inlining.

use super::ast::{BinOp, Expr, Function, Program, Stmt};
use super::compile::OptOptions;
use alberta_profile::Profiler;

/// Evaluates a binary operation with mini-C semantics (division and
/// modulo by zero yield 0; `&&`/`||` are integer ops over already
/// evaluated operands). Shared with the VM so folding is always sound.
pub fn eval_bin(op: BinOp, l: i64, r: i64) -> i64 {
    match op {
        BinOp::Add => l.wrapping_add(r),
        BinOp::Sub => l.wrapping_sub(r),
        BinOp::Mul => l.wrapping_mul(r),
        BinOp::Div => {
            if r == 0 {
                0
            } else {
                l.wrapping_div(r)
            }
        }
        BinOp::Mod => {
            if r == 0 {
                0
            } else {
                l.wrapping_rem(r)
            }
        }
        BinOp::Lt => (l < r) as i64,
        BinOp::Gt => (l > r) as i64,
        BinOp::Le => (l <= r) as i64,
        BinOp::Ge => (l >= r) as i64,
        BinOp::Eq => (l == r) as i64,
        BinOp::Ne => (l != r) as i64,
        BinOp::And => (l != 0 && r != 0) as i64,
        BinOp::Or => (l != 0 || r != 0) as i64,
    }
}

/// Runs the configured passes over a program. The profiler accounts the
/// optimizer's own work (it is part of the gcc benchmark's execution).
pub fn optimize(mut program: Program, options: &OptOptions, profiler: &mut Profiler) -> Program {
    if options.inline_calls || !options.force_inline.is_empty() {
        program = inline_pass(program, options, profiler);
    }
    if options.fold_constants {
        for f in &mut program.functions {
            for s in &mut f.body {
                fold_stmt(s, profiler);
            }
        }
    }
    if options.dead_code_elimination {
        for f in &mut program.functions {
            dce_block(&mut f.body, profiler);
        }
    }
    if let Some(order) = &options.function_order {
        // Profile-guided layout: reorder function emission by hotness.
        // Unlisted functions keep their relative order at the end.
        let mut reordered = Vec::with_capacity(program.functions.len());
        for name in order {
            if let Some(pos) = program.functions.iter().position(|f| &f.name == name) {
                reordered.push(program.functions.remove(pos));
            }
        }
        reordered.append(&mut program.functions);
        program.functions = reordered;
    }
    program
}

fn fold_expr(e: &mut Expr, profiler: &mut Profiler) {
    profiler.retire(1);
    match e {
        Expr::Bin(op, l, r) => {
            fold_expr(l, profiler);
            fold_expr(r, profiler);
            if let (Expr::Num(a), Expr::Num(b)) = (&**l, &**r) {
                *e = Expr::Num(eval_bin(*op, *a, *b));
                profiler.retire(2);
            }
        }
        Expr::Neg(inner) => {
            fold_expr(inner, profiler);
            if let Expr::Num(n) = &**inner {
                *e = Expr::Num(n.wrapping_neg());
            }
        }
        Expr::Not(inner) => {
            fold_expr(inner, profiler);
            if let Expr::Num(n) = &**inner {
                *e = Expr::Num((*n == 0) as i64);
            }
        }
        Expr::Call(_, args) => {
            for a in args {
                fold_expr(a, profiler);
            }
        }
        Expr::Index(_, idx) => fold_expr(idx, profiler),
        Expr::Num(_) | Expr::Var(_) => {}
    }
}

fn fold_stmt(s: &mut Stmt, profiler: &mut Profiler) {
    match s {
        Stmt::Decl(_, e) | Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::Expr(e) => {
            fold_expr(e, profiler)
        }
        Stmt::Store(_, i, v) => {
            fold_expr(i, profiler);
            fold_expr(v, profiler);
        }
        Stmt::If(c, t, e) => {
            fold_expr(c, profiler);
            for x in t.iter_mut().chain(e.iter_mut()) {
                fold_stmt(x, profiler);
            }
        }
        Stmt::While(c, b) => {
            fold_expr(c, profiler);
            for x in b {
                fold_stmt(x, profiler);
            }
        }
    }
}

fn dce_block(block: &mut Vec<Stmt>, profiler: &mut Profiler) {
    let mut out = Vec::with_capacity(block.len());
    for mut s in block.drain(..) {
        profiler.retire(1);
        match &mut s {
            Stmt::If(Expr::Num(n), t, e) => {
                let branch = if *n != 0 { t } else { e };
                let mut taken = std::mem::take(branch);
                dce_block(&mut taken, profiler);
                out.extend(taken);
                continue;
            }
            Stmt::If(_, t, e) => {
                dce_block(t, profiler);
                dce_block(e, profiler);
            }
            Stmt::While(Expr::Num(0), _) => continue,
            Stmt::While(_, b) => dce_block(b, profiler),
            // A pure expression statement (no calls) has no effect.
            Stmt::Expr(e) if !has_call(e) => continue,
            _ => {}
        }
        out.push(s);
    }
    // Drop everything after an unconditional return, including returns
    // exposed by constant-branch flattening above.
    if let Some(pos) = out.iter().position(|s| matches!(s, Stmt::Return(_))) {
        out.truncate(pos + 1);
    }
    *block = out;
}

fn has_call(e: &Expr) -> bool {
    match e {
        Expr::Call(_, _) => true,
        Expr::Bin(_, l, r) => has_call(l) || has_call(r),
        Expr::Neg(i) | Expr::Not(i) => has_call(i),
        Expr::Index(_, i) => has_call(i),
        Expr::Num(_) | Expr::Var(_) => false,
    }
}

/// A function is inlinable when its only `return` is the final statement
/// of its body and it does not call itself.
fn inlinable(f: &Function, budget: usize) -> bool {
    fn returns_in(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Return(_) => 1,
                Stmt::If(_, t, e) => returns_in(t) + returns_in(e),
                Stmt::While(_, b) => returns_in(b),
                _ => 0,
            })
            .sum()
    }
    fn calls_self(stmts: &[Stmt], name: &str) -> bool {
        fn in_expr(e: &Expr, name: &str) -> bool {
            match e {
                Expr::Call(n, args) => n == name || args.iter().any(|a| in_expr(a, name)),
                Expr::Bin(_, l, r) => in_expr(l, name) || in_expr(r, name),
                Expr::Neg(i) | Expr::Not(i) => in_expr(i, name),
                Expr::Index(_, i) => in_expr(i, name),
                _ => false,
            }
        }
        stmts.iter().any(|s| match s {
            Stmt::Decl(_, e) | Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::Expr(e) => {
                in_expr(e, name)
            }
            Stmt::Store(_, i, v) => in_expr(i, name) || in_expr(v, name),
            Stmt::If(c, t, e) => in_expr(c, name) || calls_self(t, name) || calls_self(e, name),
            Stmt::While(c, b) => in_expr(c, name) || calls_self(b, name),
        })
    }
    let size: usize = f.body.len();
    matches!(f.body.last(), Some(Stmt::Return(_)))
        && returns_in(&f.body) == 1
        && size <= budget
        && !calls_self(&f.body, &f.name)
}

struct Inliner {
    program_functions: Vec<Function>,
    budget: usize,
    force: Vec<String>,
    heuristic: bool,
    counter: usize,
}

impl Inliner {
    fn should_inline(&self, callee: &str) -> bool {
        let Some(f) = self.program_functions.iter().find(|f| f.name == callee) else {
            return false;
        };
        if self.force.iter().any(|n| n == callee) {
            return inlinable(f, usize::MAX);
        }
        self.heuristic && inlinable(f, self.budget)
    }

    fn fresh(&mut self, base: &str) -> String {
        self.counter += 1;
        format!("__inl{}_{base}", self.counter)
    }

    /// Rewrites an expression, hoisting inlinable calls into `pre`.
    fn rewrite_expr(&mut self, e: &mut Expr, pre: &mut Vec<Stmt>, profiler: &mut Profiler) {
        profiler.retire(1);
        match e {
            Expr::Bin(_, l, r) => {
                self.rewrite_expr(l, pre, profiler);
                self.rewrite_expr(r, pre, profiler);
            }
            Expr::Neg(i) | Expr::Not(i) => self.rewrite_expr(i, pre, profiler),
            Expr::Index(_, i) => self.rewrite_expr(i, pre, profiler),
            Expr::Call(name, args) => {
                for a in args.iter_mut() {
                    self.rewrite_expr(a, pre, profiler);
                }
                if self.should_inline(name) {
                    let callee = self
                        .program_functions
                        .iter()
                        .find(|f| f.name == *name)
                        .expect("checked by should_inline")
                        .clone();
                    let result = self.splice(&callee, std::mem::take(args), pre, profiler);
                    *e = Expr::Var(result);
                }
            }
            Expr::Num(_) | Expr::Var(_) => {}
        }
    }

    /// Splices a callee body into `pre`; returns the result temp name.
    fn splice(
        &mut self,
        callee: &Function,
        args: Vec<Expr>,
        pre: &mut Vec<Stmt>,
        profiler: &mut Profiler,
    ) -> String {
        // Bind parameters to temps (evaluated once, in order).
        let mut rename: Vec<(String, String)> = Vec::new();
        for (param, arg) in callee.params.iter().zip(args) {
            let t = self.fresh(param);
            pre.push(Stmt::Decl(t.clone(), arg));
            rename.push((param.clone(), t));
        }
        // Rename the callee's locals.
        let mut body = callee.body.clone();
        let locals = collect_decls(&body);
        for l in locals {
            let t = self.fresh(&l);
            rename.push((l, t));
        }
        rename_block(&mut body, &rename);
        // The final statement is the unique return.
        let Some(Stmt::Return(ret)) = body.pop() else {
            unreachable!("inlinable guarantees a trailing return");
        };
        profiler.retire(body.len() as u64 + 2);
        pre.extend(body);
        let result = self.fresh("ret");
        pre.push(Stmt::Decl(result.clone(), ret));
        result
    }

    fn rewrite_block(&mut self, block: &mut Vec<Stmt>, profiler: &mut Profiler) {
        let mut out = Vec::with_capacity(block.len());
        for mut s in block.drain(..) {
            let mut pre = Vec::new();
            match &mut s {
                Stmt::Decl(_, e) | Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::Expr(e) => {
                    self.rewrite_expr(e, &mut pre, profiler)
                }
                Stmt::Store(_, i, v) => {
                    self.rewrite_expr(i, &mut pre, profiler);
                    self.rewrite_expr(v, &mut pre, profiler);
                }
                Stmt::If(c, t, els) => {
                    self.rewrite_expr(c, &mut pre, profiler);
                    self.rewrite_block(t, profiler);
                    self.rewrite_block(els, profiler);
                }
                // While conditions re-evaluate per iteration: hoisting a
                // call out of one would change semantics, so loop
                // conditions are never rewritten.
                Stmt::While(_, b) => {
                    self.rewrite_block(b, profiler);
                }
            }
            out.extend(pre);
            out.push(s);
        }
        *block = out;
    }
}

fn collect_decls(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::Decl(n, _) => out.push(n.clone()),
            Stmt::If(_, t, e) => {
                out.extend(collect_decls(t));
                out.extend(collect_decls(e));
            }
            Stmt::While(_, b) => out.extend(collect_decls(b)),
            _ => {}
        }
    }
    out
}

fn rename_block(stmts: &mut [Stmt], rename: &[(String, String)]) {
    let map = |n: &mut String| {
        if let Some((_, t)) = rename.iter().find(|(from, _)| from == n) {
            *n = t.clone();
        }
    };
    fn rename_expr(e: &mut Expr, rename: &[(String, String)]) {
        match e {
            Expr::Var(n) => {
                if let Some((_, t)) = rename.iter().find(|(from, _)| from == n) {
                    *n = t.clone();
                }
            }
            Expr::Bin(_, l, r) => {
                rename_expr(l, rename);
                rename_expr(r, rename);
            }
            Expr::Neg(i) | Expr::Not(i) => rename_expr(i, rename),
            Expr::Index(_, i) => rename_expr(i, rename),
            Expr::Call(_, args) => {
                for a in args {
                    rename_expr(a, rename);
                }
            }
            Expr::Num(_) => {}
        }
    }
    for s in stmts {
        match s {
            Stmt::Decl(n, e) | Stmt::Assign(n, e) => {
                map(n);
                rename_expr(e, rename);
            }
            Stmt::Store(_, i, v) => {
                rename_expr(i, rename);
                rename_expr(v, rename);
            }
            Stmt::Return(e) | Stmt::Expr(e) => rename_expr(e, rename),
            Stmt::If(c, t, els) => {
                rename_expr(c, rename);
                rename_block(t, rename);
                rename_block(els, rename);
            }
            Stmt::While(c, b) => {
                rename_expr(c, rename);
                rename_block(b, rename);
            }
        }
    }
}

fn inline_pass(mut program: Program, options: &OptOptions, profiler: &mut Profiler) -> Program {
    let snapshot = program.functions.clone();
    let mut inliner = Inliner {
        program_functions: snapshot,
        budget: options.inline_budget,
        force: options.force_inline.clone(),
        heuristic: options.inline_calls,
        counter: 0,
    };
    for f in &mut program.functions {
        inliner.rewrite_block(&mut f.body, profiler);
    }
    program
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::super::parser::parse;
    use super::*;

    fn opt(src: &str, options: &OptOptions) -> Program {
        let mut p = Profiler::default();
        let program = parse(&lex(src).unwrap()).unwrap();
        let out = optimize(program, options, &mut p);
        let _ = p.finish();
        out
    }

    #[test]
    fn folds_constant_expressions() {
        let program = opt(
            "int main() { return 2 + 3 * 4; }",
            &OptOptions {
                fold_constants: true,
                ..OptOptions::none()
            },
        );
        assert_eq!(program.functions[0].body, vec![Stmt::Return(Expr::Num(14))]);
    }

    #[test]
    fn folding_respects_div_zero_semantics() {
        let program = opt(
            "int main() { return 7 / 0 + 7 % 0; }",
            &OptOptions {
                fold_constants: true,
                ..OptOptions::none()
            },
        );
        assert_eq!(program.functions[0].body, vec![Stmt::Return(Expr::Num(0))]);
    }

    #[test]
    fn dce_removes_constant_branches_and_dead_tails() {
        let program = opt(
            "int main() { if (1) { return 5; } else { return 6; } return 7; }",
            &OptOptions {
                fold_constants: true,
                dead_code_elimination: true,
                ..OptOptions::none()
            },
        );
        assert_eq!(program.functions[0].body, vec![Stmt::Return(Expr::Num(5))]);
    }

    #[test]
    fn dce_drops_while_zero_and_pure_statements() {
        let program = opt(
            "int main() { int x = 1; while (0) { x = 2; } x + 3; return x; }",
            &OptOptions {
                fold_constants: true,
                dead_code_elimination: true,
                ..OptOptions::none()
            },
        );
        assert_eq!(
            program.functions[0].body.len(),
            2,
            "{:?}",
            program.functions[0].body
        );
    }

    #[test]
    fn inlines_trailing_return_functions() {
        let program = opt(
            "int add(int a, int b) { return a + b; }\nint main() { return add(2, 3); }",
            &OptOptions {
                inline_calls: true,
                inline_budget: 8,
                ..OptOptions::none()
            },
        );
        let main = program.function("main").unwrap();
        // The call is gone from main's body.
        fn any_call(stmts: &[Stmt]) -> bool {
            fn in_expr(e: &Expr) -> bool {
                match e {
                    Expr::Call(_, _) => true,
                    Expr::Bin(_, l, r) => in_expr(l) || in_expr(r),
                    Expr::Neg(i) | Expr::Not(i) => in_expr(i),
                    Expr::Index(_, i) => in_expr(i),
                    _ => false,
                }
            }
            stmts.iter().any(|s| match s {
                Stmt::Decl(_, e) | Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::Expr(e) => {
                    in_expr(e)
                }
                Stmt::Store(_, i, v) => in_expr(i) || in_expr(v),
                Stmt::If(c, t, e2) => in_expr(c) || any_call(t) || any_call(e2),
                Stmt::While(c, b) => in_expr(c) || any_call(b),
            })
        }
        assert!(!any_call(&main.body), "{:?}", main.body);
    }

    #[test]
    fn recursive_functions_are_never_inlined() {
        let program = opt(
            "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\n\
             int main() { return fib(5); }",
            &OptOptions {
                inline_calls: true,
                inline_budget: 100,
                ..OptOptions::none()
            },
        );
        // fib has two returns and self-calls; main must keep its call.
        let main = program.function("main").unwrap();
        let Stmt::Return(e) = &main.body[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Call(_, _)));
    }

    #[test]
    fn function_order_reorders_emission() {
        let program = opt(
            "int a() { return 1; }\nint b() { return 2; }\nint main() { return a() + b(); }",
            &OptOptions {
                function_order: Some(vec!["main".into(), "b".into()]),
                ..OptOptions::none()
            },
        );
        let names: Vec<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["main", "b", "a"]);
    }

    #[test]
    fn eval_bin_covers_all_ops() {
        assert_eq!(eval_bin(BinOp::And, 2, 3), 1);
        assert_eq!(eval_bin(BinOp::And, 0, 3), 0);
        assert_eq!(eval_bin(BinOp::Or, 0, 0), 0);
        assert_eq!(eval_bin(BinOp::Ge, 3, 3), 1);
        assert_eq!(eval_bin(BinOp::Sub, i64::MIN, 1), i64::MAX, "wrapping");
    }
}
