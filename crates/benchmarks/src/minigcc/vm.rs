//! Stack-machine interpreter for compiled mini-C modules.
//!
//! Executes bytecode while reporting events to the profiler (every op
//! retires, branches feed the predictor model, global/array accesses feed
//! the cache model, calls feed the I-cache model) and collecting an
//! [`EdgeProfile`] — the feedback data FDO consumes.

use super::compile::{Module, Op};
use super::opt::eval_bin;
use alberta_profile::{FnId, Profiler};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

const GLOBALS_REGION: u64 = 0x2_0000_0000;
const ARRAYS_REGION: u64 = 0x2_1000_0000;
const STACK_REGION: u64 = 0x2_2000_0000;

/// Runtime failure of a mini-C program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// Executed-op budget exhausted (runaway loop).
    StepLimit {
        /// The configured budget.
        limit: u64,
    },
    /// Call depth exceeded the stack bound.
    StackOverflow {
        /// The configured bound.
        depth: usize,
    },
    /// Internal consistency failure (malformed bytecode).
    Corrupt {
        /// Description.
        detail: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::StepLimit { limit } => write!(f, "step limit of {limit} ops exceeded"),
            VmError::StackOverflow { depth } => write!(f, "call depth exceeded {depth}"),
            VmError::Corrupt { detail } => write!(f, "corrupt bytecode: {detail}"),
        }
    }
}

impl Error for VmError {}

/// Execution feedback: the raw material of FDO.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeProfile {
    /// Per-branch-site (function index, op index) → (taken, total).
    pub branches: BTreeMap<(u16, u32), (u64, u64)>,
    /// Per-call-edge (caller index, callee index) → count.
    pub calls: BTreeMap<(u16, u16), u64>,
    /// Ops executed per function, indexed like `Module::funcs`.
    pub fn_ops: Vec<u64>,
    /// Function names parallel to `fn_ops`.
    pub fn_names: Vec<String>,
}

impl EdgeProfile {
    /// Total executed ops across all functions.
    pub fn executed_ops(&self) -> u64 {
        self.fn_ops.iter().sum()
    }

    /// Total dynamic conditional branches.
    pub fn total_branches(&self) -> u64 {
        self.branches.values().map(|(_, total)| total).sum()
    }

    /// Function names sorted hottest-first — the FDO layout order.
    pub fn hot_function_order(&self) -> Vec<String> {
        let mut idx: Vec<usize> = (0..self.fn_names.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.fn_ops[i]));
        idx.into_iter().map(|i| self.fn_names[i].clone()).collect()
    }

    /// Callees whose incoming call count is at least `min_calls`,
    /// hottest first — the FDO inlining candidates.
    pub fn hot_callees(&self, min_calls: u64) -> Vec<String> {
        let mut per_callee: BTreeMap<u16, u64> = BTreeMap::new();
        for (&(_, callee), &count) in &self.calls {
            *per_callee.entry(callee).or_default() += count;
        }
        let mut hot: Vec<(u64, u16)> = per_callee
            .into_iter()
            .filter(|&(_, count)| count >= min_calls)
            .map(|(callee, count)| (count, callee))
            .collect();
        hot.sort_by_key(|&(count, _)| std::cmp::Reverse(count));
        hot.into_iter()
            .map(|(_, callee)| self.fn_names[callee as usize].clone())
            .collect()
    }

    /// Merges another profile into this one (the paper's "combined
    /// profiling" across multiple training workloads).
    pub fn merge(&mut self, other: &EdgeProfile) {
        for (site, &(taken, total)) in &other.branches {
            let e = self.branches.entry(*site).or_insert((0, 0));
            e.0 += taken;
            e.1 += total;
        }
        for (edge, &count) in &other.calls {
            *self.calls.entry(*edge).or_default() += count;
        }
        if self.fn_ops.is_empty() {
            self.fn_ops = other.fn_ops.clone();
            self.fn_names = other.fn_names.clone();
        } else if self.fn_names == other.fn_names {
            for (a, b) in self.fn_ops.iter_mut().zip(&other.fn_ops) {
                *a += b;
            }
        }
    }
}

/// Default executed-op budget.
pub const DEFAULT_STEP_LIMIT: u64 = 200_000_000;

/// Maximum call depth.
pub const MAX_CALL_DEPTH: usize = 512;

/// Runs `main` with no arguments; returns its value and the edge profile.
///
/// # Errors
///
/// Returns [`VmError`] on step-limit exhaustion, stack overflow, or
/// malformed bytecode.
pub fn run(module: &Module, profiler: &mut Profiler) -> Result<(i64, EdgeProfile), VmError> {
    run_with_limit(module, profiler, DEFAULT_STEP_LIMIT)
}

/// [`run`] with an explicit step budget.
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_with_limit(
    module: &Module,
    profiler: &mut Profiler,
    step_limit: u64,
) -> Result<(i64, EdgeProfile), VmError> {
    run_with_inputs(module, profiler, step_limit, &[])
}

/// [`run_with_limit`] plus pre-seeded global state: each `(name, values)`
/// entry fills the named global array (truncated/zero-padded to its
/// declared length) or, for a single value, the named global scalar. This
/// is how workload data reaches mini-C programs — the FDO laboratory's
/// equivalent of command-line input files.
///
/// # Errors
///
/// Same conditions as [`run`]; unknown names are ignored (the program may
/// have been compiled without the optional input buffer).
pub fn run_with_inputs(
    module: &Module,
    profiler: &mut Profiler,
    step_limit: u64,
    inputs: &[(String, Vec<i64>)],
) -> Result<(i64, EdgeProfile), VmError> {
    // Register every function in module (layout) order: the Top-Down
    // model lays code out in registration order, so profile-guided
    // function reordering changes I-cache behaviour — the mechanism the
    // FDO experiments measure.
    let fn_ids: Vec<FnId> = module
        .funcs
        .iter()
        .map(|f| profiler.register_function(&format!("cc::{}", f.name), f.code.len() as u32 * 6))
        .collect();

    let mut globals = module.global_init.clone();
    let mut arrays: Vec<Vec<i64>> = module.array_lens.iter().map(|&n| vec![0; n]).collect();
    for (name, values) in inputs {
        if let Some(a) = module.array_names.iter().position(|n| n == name) {
            for (slot, v) in arrays[a]
                .iter_mut()
                .zip(values.iter().chain(std::iter::repeat(&0)))
            {
                *slot = *v;
            }
        } else if let Some(g) = module.global_names.iter().position(|n| n == name) {
            if let Some(&v) = values.first() {
                globals[g] = v;
            }
        }
    }
    let mut edges = EdgeProfile {
        branches: BTreeMap::new(),
        calls: BTreeMap::new(),
        fn_ops: vec![0; module.funcs.len()],
        fn_names: module.funcs.iter().map(|f| f.name.clone()).collect(),
    };

    struct Frame {
        func: u16,
        pc: u32,
        locals: Vec<i64>,
        stack_base: usize,
    }

    let main_idx = module.main as u16;
    let mut frames = vec![Frame {
        func: main_idx,
        pc: 0,
        locals: vec![0; module.funcs[module.main].locals as usize],
        stack_base: 0,
    }];
    profiler.enter(fn_ids[module.main]);
    let mut stack: Vec<i64> = Vec::with_capacity(256);
    let mut steps = 0u64;

    macro_rules! pop {
        () => {
            stack.pop().ok_or_else(|| VmError::Corrupt {
                detail: "operand stack underflow".to_owned(),
            })?
        };
    }

    loop {
        let frame = frames.last_mut().ok_or_else(|| VmError::Corrupt {
            detail: "no active frame".to_owned(),
        })?;
        let func = &module.funcs[frame.func as usize];
        let op = *func
            .code
            .get(frame.pc as usize)
            .ok_or_else(|| VmError::Corrupt {
                detail: format!("pc {} out of range in {}", frame.pc, func.name),
            })?;
        steps += 1;
        if steps > step_limit {
            // Unwind profiler scopes so callers can still finish it.
            for _ in 0..frames.len() {
                profiler.exit();
            }
            return Err(VmError::StepLimit { limit: step_limit });
        }
        edges.fn_ops[frame.func as usize] += 1;
        profiler.retire(1);
        let cur_func = frame.func;
        let cur_pc = frame.pc;
        let site = ((cur_func as u32) << 20) | cur_pc;
        frame.pc += 1;
        match op {
            Op::Const(n) => stack.push(n),
            Op::LoadLocal(s) => {
                profiler.load(STACK_REGION + frames.len() as u64 * 256 + s as u64 * 8);
                stack.push(frames.last().expect("frame").locals[s as usize]);
            }
            Op::StoreLocal(s) => {
                let v = pop!();
                profiler.store(STACK_REGION + frames.len() as u64 * 256 + s as u64 * 8);
                frames.last_mut().expect("frame").locals[s as usize] = v;
            }
            Op::LoadGlobal(g) => {
                profiler.load(GLOBALS_REGION + g as u64 * 8);
                stack.push(globals[g as usize]);
            }
            Op::StoreGlobal(g) => {
                let v = pop!();
                profiler.store(GLOBALS_REGION + g as u64 * 8);
                globals[g as usize] = v;
            }
            Op::LoadArr(a) => {
                let idx = pop!();
                let arr = &arrays[a as usize];
                let i = (idx.rem_euclid(arr.len() as i64)) as usize;
                profiler.load(ARRAYS_REGION + a as u64 * (1 << 16) + i as u64 * 8);
                stack.push(arr[i]);
            }
            Op::StoreArr(a) => {
                let v = pop!();
                let idx = pop!();
                let arr = &mut arrays[a as usize];
                let i = (idx.rem_euclid(arr.len() as i64)) as usize;
                profiler.store(ARRAYS_REGION + a as u64 * (1 << 16) + i as u64 * 8);
                arr[i] = v;
            }
            Op::Bin(op) => {
                let r = pop!();
                let l = pop!();
                stack.push(eval_bin(op, l, r));
            }
            Op::Neg => {
                let v = pop!();
                stack.push(v.wrapping_neg());
            }
            Op::Not => {
                let v = pop!();
                stack.push((v == 0) as i64);
            }
            Op::Jump(t) => {
                frames.last_mut().expect("frame").pc = t;
            }
            Op::JumpIfZero(t) => {
                let v = pop!();
                let taken = v == 0;
                profiler.branch(site, taken);
                let e = edges.branches.entry((cur_func, cur_pc)).or_insert((0, 0));
                e.0 += taken as u64;
                e.1 += 1;
                if taken {
                    frames.last_mut().expect("frame").pc = t;
                }
            }
            Op::Call(callee) => {
                if frames.len() >= MAX_CALL_DEPTH {
                    for _ in 0..frames.len() {
                        profiler.exit();
                    }
                    return Err(VmError::StackOverflow {
                        depth: MAX_CALL_DEPTH,
                    });
                }
                let callee_code = &module.funcs[callee as usize];
                let argc = callee_code.params as usize;
                if stack.len() < argc {
                    return Err(VmError::Corrupt {
                        detail: format!("call to {} lacks arguments", callee_code.name),
                    });
                }
                let mut locals = vec![0i64; callee_code.locals as usize];
                for i in (0..argc).rev() {
                    locals[i] = pop!();
                }
                let caller = frames.last().expect("frame").func;
                *edges.calls.entry((caller, callee)).or_default() += 1;
                // Call overhead beyond the bytecode op itself: frame
                // setup, register save/restore — the micro-ops a real
                // call burns and inlining eliminates.
                profiler.retire(6);
                profiler.enter(fn_ids[callee as usize]);
                frames.push(Frame {
                    func: callee,
                    pc: 0,
                    locals,
                    stack_base: stack.len(),
                });
            }
            Op::Ret => {
                let v = pop!();
                let frame = frames.pop().expect("frame");
                stack.truncate(frame.stack_base);
                profiler.retire(2); // frame teardown overhead
                profiler.exit();
                if frames.is_empty() {
                    return Ok((v, edges));
                }
                stack.push(v);
            }
            Op::Pop => {
                let _ = pop!();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::compile::{compile, OptOptions};
    use super::super::lexer::lex;
    use super::super::parser::parse;
    use super::*;

    fn run_src(src: &str) -> Result<(i64, EdgeProfile), VmError> {
        let module = compile(
            &parse(&lex(src).unwrap()).unwrap(),
            &OptOptions::none(),
            &mut Profiler::default(),
        )
        .unwrap();
        let mut p = Profiler::default();
        let out = run(&module, &mut p);
        if out.is_ok() {
            let _ = p.finish();
        }
        out
    }

    #[test]
    fn step_limit_stops_runaway_loops() {
        let module = compile(
            &parse(&lex("int main() { int x = 1; while (x) { x = 1; } return 0; }").unwrap())
                .unwrap(),
            &OptOptions::none(),
            &mut Profiler::default(),
        )
        .unwrap();
        let mut p = Profiler::default();
        let err = run_with_limit(&module, &mut p, 10_000).unwrap_err();
        assert!(matches!(err, VmError::StepLimit { .. }));
        let _ = p.finish(); // scopes were unwound on error
    }

    #[test]
    fn stack_overflow_detected() {
        let err =
            run_src("int f(int n) { return f(n + 1); }\nint main() { return f(0); }").unwrap_err();
        assert!(matches!(err, VmError::StackOverflow { .. }));
    }

    #[test]
    fn edge_profile_counts_branches_and_calls() {
        let (_, edges) = run_src(
            "int inc(int a) { return a + 1; }\n\
             int main() { int i = 0; while (i < 10) { i = inc(i); } return i; }",
        )
        .unwrap();
        assert_eq!(edges.calls.values().sum::<u64>(), 10);
        // The while condition: 11 evaluations, 1 taken (exit).
        let (taken, total) = edges.branches.values().copied().next().unwrap();
        assert_eq!(total, 11);
        assert_eq!(taken, 1);
        assert!(edges.executed_ops() > 0);
        assert_eq!(edges.total_branches(), 11);
    }

    #[test]
    fn hot_function_order_puts_busy_functions_first() {
        let (_, edges) = run_src(
            "int busy(int a) { int i = 0; while (i < 50) { i = i + 1; } return a; }\n\
             int idle(int a) { return a; }\n\
             int main() { idle(1); return busy(1); }",
        )
        .unwrap();
        let order = edges.hot_function_order();
        assert_eq!(order[0], "busy");
    }

    #[test]
    fn hot_callees_filters_by_count() {
        let (_, edges) = run_src(
            "int f(int a) { return a; }\n\
             int main() { int i = 0; while (i < 20) { i = f(i) + 1; } return i; }",
        )
        .unwrap();
        assert_eq!(edges.hot_callees(10), vec!["f".to_owned()]);
        assert!(edges.hot_callees(100).is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let (_, a) =
            run_src("int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }").unwrap();
        let mut merged = a.clone();
        merged.merge(&a);
        assert_eq!(merged.total_branches(), 2 * a.total_branches());
        assert_eq!(merged.executed_ops(), 2 * a.executed_ops());
    }

    #[test]
    fn error_messages_render() {
        assert!(VmError::StepLimit { limit: 5 }.to_string().contains('5'));
        assert!(VmError::StackOverflow { depth: 9 }
            .to_string()
            .contains('9'));
    }
}
