//! `541.leela_r` stand-in: a Go engine playing incomplete games to
//! completion with Monte-Carlo tree search.
//!
//! Implements a Go board with group/liberty tracking via flood fill,
//! capture and suicide rules, area scoring, and an engine that picks each
//! move by UCB1 bandit selection over the legal root moves with uniform
//! random playouts — the root layer of leela's MCTS. Superko is not
//! tracked; playouts are bounded in length instead, which is how fast
//! playout engines avoid cycles in practice.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::go::{self, GameSpec, GoWorkload};
use alberta_workloads::{Named, Scale};

const BOARD_REGION: u64 = 0xD000_0000;
const TREE_REGION: u64 = 0xE000_0000;

/// Stone colors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// Black stone.
    Black,
    /// White stone.
    White,
}

impl Color {
    /// The opposing color.
    pub fn other(self) -> Color {
        match self {
            Color::Black => Color::White,
            Color::White => Color::Black,
        }
    }

    fn cell(self) -> u8 {
        match self {
            Color::Black => 1,
            Color::White => 2,
        }
    }
}

/// A Go board.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoBoard {
    size: usize,
    cells: Vec<u8>, // 0 empty, 1 black, 2 white
    captures: [u32; 2],
}

impl GoBoard {
    /// Creates an empty board.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not between 5 and 25.
    pub fn new(size: usize) -> Self {
        assert!((5..=25).contains(&size), "unsupported board size");
        GoBoard {
            size,
            cells: vec![0; size * size],
            captures: [0, 0],
        }
    }

    /// Board side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Cell state: `None` = empty.
    pub fn at(&self, x: usize, y: usize) -> Option<Color> {
        match self.cells[y * self.size + x] {
            1 => Some(Color::Black),
            2 => Some(Color::White),
            _ => None,
        }
    }

    /// Stones captured from the given color's opponent so far.
    pub fn captures(&self, color: Color) -> u32 {
        self.captures[match color {
            Color::Black => 0,
            Color::White => 1,
        }]
    }

    /// The up-to-four orthogonal neighbours, without allocation.
    fn neighbors4(&self, idx: usize) -> ([usize; 4], usize) {
        let size = self.size;
        let x = idx % size;
        let y = idx / size;
        let mut out = [0usize; 4];
        let mut n = 0;
        if x > 0 {
            out[n] = idx - 1;
            n += 1;
        }
        if x + 1 < size {
            out[n] = idx + 1;
            n += 1;
        }
        if y > 0 {
            out[n] = idx - size;
            n += 1;
        }
        if y + 1 < size {
            out[n] = idx + size;
            n += 1;
        }
        (out, n)
    }

    fn neighbors(&self, idx: usize) -> impl Iterator<Item = usize> + '_ {
        let (arr, n) = self.neighbors4(idx);
        arr.into_iter().take(n)
    }

    /// Flood-fills the group containing `idx`; returns (group, liberties).
    /// Visited sets are stack bitsets (boards are at most 25×25), so the
    /// hot playout path allocates only the group vector.
    pub fn group_and_liberties(&self, idx: usize) -> (Vec<usize>, usize) {
        let color = self.cells[idx];
        debug_assert!(color != 0);
        let mut group = Vec::with_capacity(8);
        group.push(idx);
        let mut seen = [0u64; 10];
        let mut lib_seen = [0u64; 10];
        let mark = |set: &mut [u64; 10], i: usize| {
            let (w, b) = (i / 64, i % 64);
            let hit = set[w] >> b & 1 == 1;
            set[w] |= 1 << b;
            !hit
        };
        mark(&mut seen, idx);
        let mut cursor = 0;
        let mut liberties = 0;
        while cursor < group.len() {
            let s = group[cursor];
            cursor += 1;
            let (neigh, count) = self.neighbors4(s);
            for &n in neigh.iter().take(count) {
                if self.cells[n] == 0 {
                    if mark(&mut lib_seen, n) {
                        liberties += 1;
                    }
                } else if self.cells[n] == color && mark(&mut seen, n) {
                    group.push(n);
                }
            }
        }
        (group, liberties)
    }

    /// Fast capture probe: flood-fills the group at `idx` but returns
    /// `None` as soon as any liberty is found. Only a captured group —
    /// the rare case — pays for the full group vector.
    fn group_if_captured(&self, idx: usize) -> Option<Vec<usize>> {
        let color = self.cells[idx];
        let mut group = Vec::with_capacity(8);
        group.push(idx);
        let mut seen = [0u64; 10];
        seen[idx / 64] |= 1 << (idx % 64);
        let mut cursor = 0;
        while cursor < group.len() {
            let s = group[cursor];
            cursor += 1;
            let (neigh, count) = self.neighbors4(s);
            for &n in neigh.iter().take(count) {
                if self.cells[n] == 0 {
                    return None; // liberty: not captured
                }
                if self.cells[n] == color && seen[n / 64] >> (n % 64) & 1 == 0 {
                    seen[n / 64] |= 1 << (n % 64);
                    group.push(n);
                }
            }
        }
        Some(group)
    }

    /// Early-exit liberty probe for the suicide check.
    fn liberties_only(&self, idx: usize) -> usize {
        if self.group_if_captured(idx).is_some() {
            0
        } else {
            1
        }
    }

    /// Attempts to play at `(x, y)`. Returns captured stone count, or
    /// `None` if the move is illegal (occupied or suicide).
    pub fn play(&mut self, x: usize, y: usize, color: Color) -> Option<u32> {
        let idx = y * self.size + x;
        if self.cells[idx] != 0 {
            return None;
        }
        self.cells[idx] = color.cell();
        // Capture adjacent opponent groups with no liberties.
        let mut captured = 0u32;
        let opp = color.other().cell();
        let (neigh, count) = self.neighbors4(idx);
        for &n in neigh.iter().take(count) {
            if self.cells[n] == opp {
                if let Some(group) = self.group_if_captured(n) {
                    captured += group.len() as u32;
                    for g in group {
                        self.cells[g] = 0;
                    }
                }
            }
        }
        // Suicide check.
        if captured == 0 && self.liberties_only(idx) == 0 {
            self.cells[idx] = 0;
            return None;
        }
        self.captures[match color {
            Color::Black => 0,
            Color::White => 1,
        }] += captured;
        Some(captured)
    }

    /// Legal moves for `color` (not suicide, not occupied), excluding
    /// single-point true eyes of the mover (standard playout heuristic).
    pub fn legal_moves(&self, color: Color) -> Vec<usize> {
        let mut out = Vec::new();
        for idx in 0..self.cells.len() {
            if self.cells[idx] != 0 {
                continue;
            }
            if self.is_true_eye(idx, color) {
                continue;
            }
            let mut probe = self.clone();
            if probe
                .play(idx % self.size, idx / self.size, color)
                .is_some()
            {
                out.push(idx);
            }
        }
        out
    }

    /// A single-point eye: all neighbours are the mover's stones.
    fn is_true_eye(&self, idx: usize, color: Color) -> bool {
        self.neighbors(idx).all(|n| self.cells[n] == color.cell())
    }

    /// Area score from black's perspective: stones plus territory whose
    /// flood-filled empty region touches only one color.
    pub fn area_score(&self) -> i32 {
        let mut score = 0i32;
        let mut seen = vec![false; self.cells.len()];
        for idx in 0..self.cells.len() {
            match self.cells[idx] {
                1 => score += 1,
                2 => score -= 1,
                _ => {
                    if seen[idx] {
                        continue;
                    }
                    // Flood the empty region.
                    let mut stack = vec![idx];
                    seen[idx] = true;
                    let mut region = 1i32;
                    let mut touches_black = false;
                    let mut touches_white = false;
                    while let Some(s) = stack.pop() {
                        let (neigh, count) = self.neighbors4(s);
                        for &n in neigh.iter().take(count) {
                            match self.cells[n] {
                                1 => touches_black = true,
                                2 => touches_white = true,
                                _ => {
                                    if !seen[n] {
                                        seen[n] = true;
                                        region += 1;
                                        stack.push(n);
                                    }
                                }
                            }
                        }
                    }
                    if touches_black && !touches_white {
                        score += region;
                    } else if touches_white && !touches_black {
                        score -= region;
                    }
                }
            }
        }
        score
    }
}

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E3779B97F4A7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

pub(crate) struct Fns {
    playout: FnId,
    select: FnId,
    legal: FnId,
    score: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        playout: profiler.register_function("leela::playout", 2200),
        select: profiler.register_function("leela::uct_select", 900),
        legal: profiler.register_function("leela::gen_legal", 1600),
        score: profiler.register_function("leela::score", 1100),
    }
}

/// Plays one uniform random playout; returns black's area score.
///
/// Playouts pick moves by probing random empty points rather than
/// generating the full legal-move list each turn — the standard fast
/// playout policy of Monte-Carlo Go engines.
fn playout(
    board: &GoBoard,
    mut to_move: Color,
    rng: &mut u64,
    profiler: &mut Profiler,
    fns: &Fns,
) -> i32 {
    profiler.enter(fns.playout);
    let mut b = board.clone();
    let points = b.size() * b.size();
    let cap = points + points / 2;
    let mut passes = 0;
    for _ in 0..cap {
        // Probe random empty points; pass after a bounded number of
        // failed probes.
        let mut played = false;
        let start = (splitmix(rng) % points as u64) as usize;
        let mut probes = 0;
        for k in 0..points {
            let m = (start + k) % points;
            if b.cells[m] != 0 {
                continue;
            }
            probes += 1;
            if probes > 24 {
                break;
            }
            profiler.load(BOARD_REGION + m as u64 % (1 << 20));
            if b.is_true_eye(m, to_move) {
                profiler.branch(1, true);
                continue;
            }
            profiler.branch(1, false);
            if b.play(m % b.size(), m / b.size(), to_move).is_some() {
                profiler.store(BOARD_REGION + m as u64 % (1 << 20));
                profiler.retire(6);
                played = true;
                break;
            }
        }
        let pass = !played;
        profiler.branch(0, pass);
        profiler.retire(4);
        if pass {
            passes += 1;
            if passes == 2 {
                break;
            }
        } else {
            passes = 0;
        }
        to_move = to_move.other();
    }
    profiler.enter(fns.score);
    let s = b.area_score();
    profiler.retire(b.size() as u64 * b.size() as u64 / 8);
    profiler.exit();
    profiler.exit();
    s
}

/// Picks a move for `color` by UCB1 over the root moves.
///
/// Returns `None` when the position has no legal moves (pass).
pub(crate) fn engine_move(
    board: &GoBoard,
    color: Color,
    playouts: u32,
    rng: &mut u64,
    profiler: &mut Profiler,
    fns: &Fns,
) -> Option<usize> {
    profiler.enter(fns.legal);
    let moves = board.legal_moves(color);
    profiler.retire(moves.len() as u64);
    profiler.exit();
    if moves.is_empty() {
        return None;
    }
    let mut wins = vec![0.0f64; moves.len()];
    let mut visits = vec![0u32; moves.len()];
    for t in 0..playouts.max(1) {
        profiler.enter(fns.select);
        // UCB1 selection (untried arms first).
        let mut pick = 0;
        let mut best = f64::NEG_INFINITY;
        for (i, &v) in visits.iter().enumerate() {
            profiler.load(TREE_REGION + i as u64 * 16);
            let u = if v == 0 {
                f64::INFINITY
            } else {
                wins[i] / v as f64 + (2.0 * ((t + 1) as f64).ln() / v as f64).sqrt()
            };
            let better = u > best;
            profiler.branch(1, better);
            if better {
                best = u;
                pick = i;
            }
        }
        profiler.exit();
        let m = moves[pick];
        let mut b = board.clone();
        b.play(m % b.size(), m / b.size(), color);
        let score = playout(&b, color.other(), rng, profiler, fns);
        let won = match color {
            Color::Black => score > 0,
            Color::White => score < 0,
        };
        wins[pick] += won as u32 as f64;
        visits[pick] += 1;
        profiler.store(TREE_REGION + pick as u64 * 16);
    }
    // Most-visited move wins, the standard MCTS final selection.
    let best = (0..moves.len())
        .max_by_key(|&i| visits[i])
        .expect("non-empty");
    Some(moves[best])
}

/// Plays one game spec: seeded prefix then engine moves to completion.
pub(crate) fn play_game(spec: &GameSpec, profiler: &mut Profiler, fns: &Fns) -> (i32, u64) {
    let mut board = GoBoard::new(spec.board_size as usize);
    let mut rng = spec.seed;
    let mut to_move = Color::Black;
    // Prefix: the "incomplete game from the archive".
    for _ in 0..spec.prefix_moves {
        let moves = board.legal_moves(to_move);
        if moves.is_empty() {
            break;
        }
        let m = moves[(splitmix(&mut rng) % moves.len() as u64) as usize];
        board.play(m % board.size(), m / board.size(), to_move);
        to_move = to_move.other();
    }
    // Engine finishes the game.
    let mut engine_moves = 0u64;
    for _ in 0..spec.moves_to_play {
        match engine_move(&board, to_move, spec.playouts, &mut rng, profiler, fns) {
            Some(m) => {
                board.play(m % board.size(), m / board.size(), to_move);
                engine_moves += 1;
            }
            None => break,
        }
        to_move = to_move.other();
    }
    (board.area_score(), engine_moves)
}

/// The leela mini-benchmark.
#[derive(Debug)]
pub struct MiniLeela {
    workloads: Vec<Named<GoWorkload>>,
}

impl MiniLeela {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniLeela {
            workloads: standard_set(scale, go::train, go::refrate, go::alberta_set),
        }
    }
}

impl Benchmark for MiniLeela {
    fn name(&self) -> &'static str {
        "541.leela_r"
    }

    fn short_name(&self) -> &'static str {
        "leela"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let w = find_workload(&self.workloads, self.name(), workload)?;
        let fns = register(profiler);
        let mut scores = Vec::new();
        let mut total_moves = 0;
        for game in &w.games {
            let (score, moves) = play_game(game, profiler, &fns);
            scores.push(score as i64 as u64);
            total_moves += moves;
        }
        Ok(RunOutput {
            checksum: fnv1a(scores),
            work: total_moves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stone_capture() {
        let mut b = GoBoard::new(5);
        // Surround a white stone at (1,1).
        b.play(1, 1, Color::White).unwrap();
        b.play(0, 1, Color::Black).unwrap();
        b.play(2, 1, Color::Black).unwrap();
        b.play(1, 0, Color::Black).unwrap();
        let captured = b.play(1, 2, Color::Black).unwrap();
        assert_eq!(captured, 1);
        assert_eq!(b.at(1, 1), None);
        assert_eq!(b.captures(Color::Black), 1);
    }

    #[test]
    fn group_capture() {
        let mut b = GoBoard::new(5);
        // Two connected white stones in the corner.
        b.play(0, 0, Color::White).unwrap();
        b.play(1, 0, Color::White).unwrap();
        b.play(0, 1, Color::Black).unwrap();
        b.play(1, 1, Color::Black).unwrap();
        let captured = b.play(2, 0, Color::Black).unwrap();
        assert_eq!(captured, 2);
        assert_eq!(b.at(0, 0), None);
        assert_eq!(b.at(1, 0), None);
    }

    #[test]
    fn suicide_is_illegal() {
        let mut b = GoBoard::new(5);
        b.play(0, 1, Color::Black).unwrap();
        b.play(1, 0, Color::Black).unwrap();
        b.play(1, 1, Color::Black).unwrap();
        assert_eq!(b.play(0, 0, Color::White), None, "corner suicide");
        assert_eq!(b.at(0, 0), None);
    }

    #[test]
    fn capturing_move_into_no_liberty_point_is_legal() {
        let mut b = GoBoard::new(5);
        // White stone at (0,0) with one liberty at (1,0); black plays
        // there: looks like self-atari but captures first.
        b.play(0, 0, Color::White).unwrap();
        b.play(0, 1, Color::Black).unwrap();
        let captured = b.play(1, 0, Color::Black);
        assert_eq!(captured, Some(1));
    }

    #[test]
    fn liberties_counted_correctly() {
        let mut b = GoBoard::new(7);
        b.play(3, 3, Color::Black).unwrap();
        let (group, libs) = b.group_and_liberties(3 * 7 + 3);
        assert_eq!(group.len(), 1);
        assert_eq!(libs, 4);
        b.play(3, 4, Color::Black).unwrap();
        let (group, libs) = b.group_and_liberties(3 * 7 + 3);
        assert_eq!(group.len(), 2);
        assert_eq!(libs, 6);
    }

    #[test]
    fn area_score_on_settled_board() {
        let mut b = GoBoard::new(5);
        // Black wall down column 2: left side black territory.
        for y in 0..5 {
            b.play(2, y, Color::Black).unwrap();
        }
        // score = 5 stones + 10 left+right empty? Both sides touch only
        // black, so the whole remainder is black: 5 + 20 = 25.
        assert_eq!(b.area_score(), 25);
        // Add a white stone on the right: right region becomes neutral.
        b.play(4, 2, Color::White).unwrap();
        let s = b.area_score();
        assert!(s < 25 && s > 0, "score {s}");
    }

    #[test]
    fn eye_moves_are_excluded_from_playout_moves() {
        let mut b = GoBoard::new(5);
        b.play(0, 1, Color::Black).unwrap();
        b.play(1, 0, Color::Black).unwrap();
        b.play(1, 1, Color::Black).unwrap();
        let moves = b.legal_moves(Color::Black);
        assert!(!moves.contains(&0), "corner eye must not be filled");
    }

    #[test]
    fn capturing_line_scores_better_in_playouts() {
        // A white group in atari at (3,1). Compare mean playout score for
        // black after capturing versus after a wasted corner move: the
        // capture removes two stones and must score strictly better.
        let mut b = GoBoard::new(5);
        b.play(1, 1, Color::White).unwrap();
        b.play(2, 1, Color::White).unwrap();
        b.play(1, 0, Color::Black).unwrap();
        b.play(2, 0, Color::Black).unwrap();
        b.play(0, 1, Color::Black).unwrap();
        b.play(1, 2, Color::Black).unwrap();
        b.play(2, 2, Color::Black).unwrap();
        let mut p = Profiler::default();
        let fns = register(&mut p);
        let mean_score = |board: &GoBoard, p: &mut Profiler, fns: &Fns| -> f64 {
            let mut rng = 42u64;
            let n = 30;
            (0..n)
                .map(|_| playout(board, Color::White, &mut rng, p, fns) as f64)
                .sum::<f64>()
                / n as f64
        };
        let mut captured = b.clone();
        assert_eq!(captured.play(3, 1, Color::Black), Some(2));
        let mut wasted = b.clone();
        assert_eq!(wasted.play(4, 4, Color::Black), Some(0));
        let capture_score = mean_score(&captured, &mut p, &fns);
        let wasted_score = mean_score(&wasted, &mut p, &fns);
        let _ = p.finish();
        assert!(
            capture_score > wasted_score,
            "capture {capture_score} vs wasted {wasted_score}"
        );
    }

    #[test]
    fn engine_move_is_legal_and_deterministic() {
        let mut b = GoBoard::new(9);
        b.play(4, 4, Color::Black).unwrap();
        let mut p = Profiler::default();
        let fns = register(&mut p);
        let mut rng1 = 7u64;
        let mut rng2 = 7u64;
        let m1 = engine_move(&b, Color::White, 20, &mut rng1, &mut p, &fns).unwrap();
        let m2 = engine_move(&b, Color::White, 20, &mut rng2, &mut p, &fns).unwrap();
        let _ = p.finish();
        assert_eq!(m1, m2);
        assert_eq!(b.at(m1 % 9, m1 / 9), None, "move targets an empty point");
    }

    #[test]
    fn playouts_terminate_and_benchmark_runs() {
        let b = MiniLeela::new(Scale::Test);
        let mut p = Profiler::default();
        let out = b.run("train", &mut p).unwrap();
        assert!(out.work > 0);
        let cov = p.finish().coverage_percent();
        assert!(cov["leela::playout"] > 20.0, "{cov:?}");
    }

    #[test]
    fn determinism() {
        let b = MiniLeela::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        assert_eq!(
            b.run("alberta.0", &mut p1).unwrap(),
            b.run("alberta.0", &mut p2).unwrap()
        );
    }
}
