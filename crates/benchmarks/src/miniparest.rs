//! `510.parest_r` stand-in: finite-element parameter estimation.
//!
//! parest recovers spatially varying PDE coefficients from observations
//! (optical tomography with deal.II). This mini solves the same inverse
//! problem on a 5-point finite-difference discretization of
//! `-∇·(a(x) ∇u) = f`: the forward problem is solved with conjugate
//! gradients, synthetic observations are produced from the workload's
//! hidden coefficient field (plus noise), and a Gauss–Newton outer loop
//! with finite-difference Jacobians and Tikhonov regularization recovers
//! the block coefficients. CG inner iterations dominate, as in the
//! original.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::fem::{self, FemWorkload};
use alberta_workloads::{Named, Scale};

const MATRIX_REGION: u64 = 0x1_D000_0000;
const VECTOR_REGION: u64 = 0x1_E000_0000;

pub(crate) struct Fns {
    apply: FnId,
    cg: FnId,
    assemble: FnId,
    gauss_newton: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        apply: profiler.register_function("parest::apply_operator", 2000),
        cg: profiler.register_function("parest::cg_solve", 2600),
        assemble: profiler.register_function("parest::assemble", 1200),
        gauss_newton: profiler.register_function("parest::gauss_newton", 1500),
    }
}

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E3779B97F4A7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The discretized forward problem on an `n × n` interior grid.
pub struct ForwardProblem {
    n: usize,
    /// Per-cell coefficient, expanded from block values.
    coeff: Vec<f64>,
    /// Right-hand side (source term).
    rhs: Vec<f64>,
}

impl ForwardProblem {
    /// Builds the problem for the given block coefficients.
    pub(crate) fn new(
        w: &FemWorkload,
        block_coeffs: &[f64],
        profiler: &mut Profiler,
        fns: &Fns,
    ) -> Self {
        profiler.enter(fns.assemble);
        let n = w.mesh;
        let mut coeff = vec![0.0; n * n];
        for y in 0..n {
            for x in 0..n {
                let bx = (x * w.blocks / n).min(w.blocks - 1);
                let by = (y * w.blocks / n).min(w.blocks - 1);
                coeff[y * n + x] = block_coeffs[by * w.blocks + bx];
                profiler.store(MATRIX_REGION + (y * n + x) as u64 * 8);
                profiler.retire(3);
            }
        }
        // A smooth source centred in the domain.
        let mut rhs = vec![0.0; n * n];
        for y in 0..n {
            for x in 0..n {
                let fx = (x as f64 + 0.5) / n as f64 - 0.5;
                let fy = (y as f64 + 0.5) / n as f64 - 0.5;
                rhs[y * n + x] = (-8.0 * (fx * fx + fy * fy)).exp();
            }
        }
        profiler.exit();
        ForwardProblem { n, coeff, rhs }
    }

    /// Applies the operator `v ↦ -∇·(a ∇v)` with zero Dirichlet walls.
    pub(crate) fn apply(&self, v: &[f64], out: &mut [f64], profiler: &mut Profiler, fns: &Fns) {
        profiler.enter(fns.apply);
        let n = self.n;
        let get = |v: &[f64], x: i64, y: i64| -> f64 {
            if x < 0 || y < 0 || x >= n as i64 || y >= n as i64 {
                0.0
            } else {
                v[(y as usize) * n + x as usize]
            }
        };
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                let a = self.coeff[i];
                // Harmonic-ish mean with neighbours keeps symmetry.
                let an = |dx: i64, dy: i64| -> f64 {
                    let xx = x as i64 + dx;
                    let yy = y as i64 + dy;
                    if xx < 0 || yy < 0 || xx >= n as i64 || yy >= n as i64 {
                        a
                    } else {
                        0.5 * (a + self.coeff[(yy as usize) * n + xx as usize])
                    }
                };
                let c = get(v, x as i64, y as i64);
                out[i] = an(1, 0) * (c - get(v, x as i64 + 1, y as i64))
                    + an(-1, 0) * (c - get(v, x as i64 - 1, y as i64))
                    + an(0, 1) * (c - get(v, x as i64, y as i64 + 1))
                    + an(0, -1) * (c - get(v, x as i64, y as i64 - 1));
                profiler.load(MATRIX_REGION + i as u64 * 8);
                profiler.retire(20);
            }
        }
        profiler.exit();
    }

    /// Solves `A u = rhs` by conjugate gradients; returns (u, iterations).
    pub(crate) fn solve(&self, profiler: &mut Profiler, fns: &Fns) -> (Vec<f64>, u32) {
        profiler.enter(fns.cg);
        let n2 = self.n * self.n;
        let mut u = vec![0.0; n2];
        let mut r = self.rhs.clone();
        let mut p = r.clone();
        let mut ap = vec![0.0; n2];
        let mut rr: f64 = r.iter().map(|x| x * x).sum();
        let tol = 1e-10 * rr.max(1e-30);
        let mut iterations = 0;
        let max_iter = 4 * n2 as u32;
        while rr > tol && iterations < max_iter {
            self.apply(&p, &mut ap, profiler, fns);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap.abs() < 1e-30 {
                break;
            }
            let alpha = rr / pap;
            for i in 0..n2 {
                u[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
                profiler.load(VECTOR_REGION + i as u64 * 8);
            }
            let rr_new: f64 = r.iter().map(|x| x * x).sum();
            let beta = rr_new / rr;
            for i in 0..n2 {
                p[i] = r[i] + beta * p[i];
            }
            profiler.retire(n2 as u64 * 6);
            rr = rr_new;
            iterations += 1;
            let converged = rr <= tol;
            profiler.branch(0, converged);
        }
        profiler.exit();
        (u, iterations)
    }
}

/// Result of the inverse solve.
#[derive(Debug, Clone, PartialEq)]
pub struct InverseResult {
    /// Recovered block coefficients.
    pub coefficients: Vec<f64>,
    /// Final data misfit (sum of squared residuals at observations).
    pub misfit: f64,
    /// Initial misfit with the flat starting guess.
    pub initial_misfit: f64,
    /// Total CG iterations across all forward solves.
    pub cg_iterations: u64,
}

fn misfit(observed: &[f64], simulated: &[f64]) -> f64 {
    observed
        .iter()
        .zip(simulated)
        .map(|(o, s)| (o - s) * (o - s))
        .sum()
}

/// Runs the full inverse problem for a workload.
pub fn estimate(w: &FemWorkload, profiler: &mut Profiler) -> InverseResult {
    let fns = register(profiler);
    let k = w.blocks * w.blocks;
    let mut cg_total = 0u64;

    // Synthetic observations from the hidden coefficients (plus noise).
    let truth = ForwardProblem::new(w, &w.true_coefficients, profiler, &fns);
    let (mut observed, it) = truth.solve(profiler, &fns);
    cg_total += it as u64;
    let mut noise_seed = w.noise_seed;
    for o in observed.iter_mut() {
        let r = (splitmix(&mut noise_seed) % 2000) as f64 / 1000.0 - 1.0;
        *o *= 1.0 + w.noise * r;
    }

    // Gauss–Newton from a flat initial guess.
    let mut coeffs = vec![1.0; k];
    let forward = |coeffs: &[f64], profiler: &mut Profiler, cg: &mut u64| -> Vec<f64> {
        let p = ForwardProblem::new(w, coeffs, profiler, &fns);
        let (u, it) = p.solve(profiler, &fns);
        *cg += it as u64;
        u
    };
    let mut current = forward(&coeffs, profiler, &mut cg_total);
    let initial_misfit = misfit(&observed, &current);
    for _ in 0..w.outer_iterations {
        profiler.enter(fns.gauss_newton);
        // Finite-difference Jacobian: k forward solves.
        let h = 1e-4;
        let n2 = current.len();
        let mut jacobian = vec![vec![0.0; n2]; k];
        profiler.exit();
        for j in 0..k {
            let mut bumped = coeffs.clone();
            bumped[j] += h;
            let u = forward(&bumped, profiler, &mut cg_total);
            for i in 0..n2 {
                jacobian[j][i] = (u[i] - current[i]) / h;
            }
        }
        profiler.enter(fns.gauss_newton);
        // Normal equations (J^T J + λI) δ = J^T r, solved directly (k ≤ 16).
        let mut jtj = vec![vec![0.0; k]; k];
        let mut jtr = vec![0.0; k];
        let residual: Vec<f64> = observed.iter().zip(&current).map(|(o, s)| o - s).collect();
        for a in 0..k {
            for b in 0..k {
                jtj[a][b] = jacobian[a]
                    .iter()
                    .zip(&jacobian[b])
                    .map(|(x, y)| x * y)
                    .sum();
                profiler.retire(n2 as u64 / 8 + 1);
            }
            jtj[a][a] += w.regularization;
            jtr[a] = jacobian[a].iter().zip(&residual).map(|(x, y)| x * y).sum();
        }
        let delta = solve_dense(&mut jtj, &mut jtr);
        for (c, d) in coeffs.iter_mut().zip(&delta) {
            *c = (*c + d).max(0.05); // coefficients stay positive
        }
        profiler.exit();
        current = forward(&coeffs, profiler, &mut cg_total);
    }
    InverseResult {
        coefficients: coeffs,
        misfit: misfit(&observed, &current),
        initial_misfit,
        cg_iterations: cg_total,
    }
}

/// In-place Gaussian elimination with partial pivoting (k ≤ 16).
#[allow(clippy::needless_range_loop)] // `c` walks two rows of the same matrix
fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let k = b.len();
    for col in 0..k {
        let pivot = (col..k)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let d = a[col][col];
        if d.abs() < 1e-12 {
            continue;
        }
        for row in col + 1..k {
            let f = a[row][col] / d;
            for c in col..k {
                a[row][c] -= f * a[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; k];
    for row in (0..k).rev() {
        let mut s = b[row];
        for c in row + 1..k {
            s -= a[row][c] * x[c];
        }
        x[row] = if a[row][row].abs() < 1e-12 {
            0.0
        } else {
            s / a[row][row]
        };
    }
    x
}

/// The parest mini-benchmark.
#[derive(Debug)]
pub struct MiniParest {
    workloads: Vec<Named<FemWorkload>>,
}

impl MiniParest {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniParest {
            workloads: standard_set(scale, fem::train, fem::refrate, fem::alberta_set),
        }
    }
}

impl Benchmark for MiniParest {
    fn name(&self) -> &'static str {
        "510.parest_r"
    }

    fn short_name(&self) -> &'static str {
        "parest"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let w = find_workload(&self.workloads, self.name(), workload)?;
        let result = estimate(w, profiler);
        if !result.misfit.is_finite() {
            return Err(BenchError::InvalidInput {
                benchmark: "510.parest_r",
                reason: "inverse solve diverged".to_owned(),
            });
        }
        Ok(RunOutput {
            checksum: fnv1a(
                result
                    .coefficients
                    .iter()
                    .map(|c| c.to_bits())
                    .chain([result.misfit.to_bits()]),
            ),
            work: result.cg_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_workloads::fem::FemGen;

    fn workload(mesh: usize, blocks: usize, noise: f64) -> FemWorkload {
        let gen = FemGen {
            mesh,
            blocks,
            noise,
            outer_iterations: 3,
        };
        gen.generate(5)
    }

    #[test]
    fn cg_solves_the_forward_problem() {
        let w = workload(10, 2, 0.0);
        let mut p = Profiler::default();
        let fns = register(&mut p);
        let problem = ForwardProblem::new(&w, &w.true_coefficients, &mut p, &fns);
        let (u, iterations) = problem.solve(&mut p, &fns);
        // Residual check: ||A u - rhs|| must be tiny.
        let mut au = vec![0.0; u.len()];
        problem.apply(&u, &mut au, &mut p, &fns);
        let _ = p.finish();
        let res: f64 = au
            .iter()
            .zip(&problem.rhs)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(res < 1e-8, "CG residual {res}");
        assert!(iterations > 0);
    }

    #[test]
    fn operator_is_symmetric() {
        let w = workload(8, 2, 0.0);
        let mut p = Profiler::default();
        let fns = register(&mut p);
        let problem = ForwardProblem::new(&w, &w.true_coefficients, &mut p, &fns);
        let n2 = w.mesh * w.mesh;
        // <Av, w> == <v, Aw> for a couple of deterministic test vectors.
        let v: Vec<f64> = (0..n2).map(|i| ((i * 7919) % 13) as f64 - 6.0).collect();
        let wv: Vec<f64> = (0..n2).map(|i| ((i * 104729) % 17) as f64 - 8.0).collect();
        let mut av = vec![0.0; n2];
        let mut aw = vec![0.0; n2];
        problem.apply(&v, &mut av, &mut p, &fns);
        problem.apply(&wv, &mut aw, &mut p, &fns);
        let _ = p.finish();
        let left: f64 = av.iter().zip(&wv).map(|(a, b)| a * b).sum();
        let right: f64 = v.iter().zip(&aw).map(|(a, b)| a * b).sum();
        assert!((left - right).abs() < 1e-6 * left.abs().max(1.0));
    }

    #[test]
    fn gauss_newton_reduces_misfit() {
        let w = workload(10, 2, 0.0);
        let mut p = Profiler::default();
        let r = estimate(&w, &mut p);
        let _ = p.finish();
        assert!(
            r.misfit < r.initial_misfit * 0.5,
            "misfit {} vs initial {}",
            r.misfit,
            r.initial_misfit
        );
    }

    #[test]
    fn noiseless_recovery_approaches_truth() {
        let w = workload(12, 2, 0.0);
        let mut p = Profiler::default();
        let r = estimate(&w, &mut p);
        let _ = p.finish();
        let err: f64 = r
            .coefficients
            .iter()
            .zip(&w.true_coefficients)
            .map(|(a, b)| (a - b).abs() / b)
            .sum::<f64>()
            / r.coefficients.len() as f64;
        assert!(err < 0.4, "mean relative coefficient error {err}");
    }

    #[test]
    fn dense_solver_matches_hand_computed_system() {
        // [2 1; 1 3] x = [5; 10] → x = [1, 3].
        let mut a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut b = vec![5.0, 10.0];
        let x = solve_dense(&mut a, &mut b);
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn benchmark_runs_and_is_deterministic() {
        let b = MiniParest::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let o1 = b.run("alberta.0", &mut p1).unwrap();
        let o2 = b.run("alberta.0", &mut p2).unwrap();
        assert_eq!(o1, o2);
        let cov = p1.finish().coverage_percent();
        assert!(
            cov["parest::apply_operator"] + cov["parest::cg_solve"] > 40.0,
            "{cov:?}"
        );
    }
}
