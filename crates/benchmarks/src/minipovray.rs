//! `511.povray_r` stand-in: a recursive ray tracer.
//!
//! Renders the generated scenes (collection / lumpy / primitive, the
//! paper's three categories) with sphere/plane/box intersection, Lambert +
//! specular shading, hard shadows, mirror reflection, and Snell
//! refraction. Floating-point-heavy straight-line math with recursion —
//! the behaviour profile of the original.

use crate::{find_workload, fnv1a, standard_set, BenchError, Benchmark, RunOutput};
use alberta_profile::{FnId, Profiler};
use alberta_workloads::raytrace::{self, Material, RayScene, Shape};
use alberta_workloads::{Named, Scale};

const SCENE_REGION: u64 = 0x1_2000_0000;
const IMAGE_REGION: u64 = 0x1_3000_0000;

/// A 3-vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Constructs a vector.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    fn from_tuple(t: (f64, f64, f64)) -> Self {
        Vec3::new(t.0, t.1, t.2)
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when called on a near-zero vector.
    pub fn unit(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 1e-12, "normalizing zero vector");
        self * (1.0 / n)
    }

    /// Componentwise scale.
    pub fn scale(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, k: f64) -> Vec3 {
        self.scale(k)
    }
}

/// Ray/shape intersection: returns (distance, normal) of the nearest hit.
fn intersect(shape: &Shape, origin: Vec3, dir: Vec3) -> Option<(f64, Vec3)> {
    const EPS: f64 = 1e-9;
    match *shape {
        Shape::Sphere { center, radius } => {
            let c = Vec3::from_tuple(center);
            let oc = origin - c;
            let b = oc.dot(dir);
            let disc = b * b - (oc.dot(oc) - radius * radius);
            if disc < 0.0 {
                return None;
            }
            let sq = disc.sqrt();
            let t = if -b - sq > EPS { -b - sq } else { -b + sq };
            if t <= EPS {
                return None;
            }
            let hit = origin + dir * t;
            Some((t, (hit - c).unit()))
        }
        Shape::Plane { y } => {
            if dir.y.abs() < EPS {
                return None;
            }
            let t = (y - origin.y) / dir.y;
            if t <= EPS {
                return None;
            }
            Some((t, Vec3::new(0.0, if dir.y < 0.0 { 1.0 } else { -1.0 }, 0.0)))
        }
        Shape::Box { min, max } => {
            let mn = Vec3::from_tuple(min);
            let mx = Vec3::from_tuple(max);
            let mut tmin = f64::NEG_INFINITY;
            let mut tmax = f64::INFINITY;
            let mut axis = 0;
            for (i, (o, d, lo, hi)) in [
                (origin.x, dir.x, mn.x, mx.x),
                (origin.y, dir.y, mn.y, mx.y),
                (origin.z, dir.z, mn.z, mx.z),
            ]
            .iter()
            .enumerate()
            {
                if d.abs() < EPS {
                    if o < lo || o > hi {
                        return None;
                    }
                    continue;
                }
                let (mut t0, mut t1) = ((lo - o) / d, (hi - o) / d);
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                if t0 > tmin {
                    tmin = t0;
                    axis = i;
                }
                tmax = tmax.min(t1);
                if tmin > tmax {
                    return None;
                }
            }
            if tmin <= EPS {
                return None;
            }
            let mut normal = Vec3::new(0.0, 0.0, 0.0);
            let sign = match axis {
                0 => -dir.x.signum(),
                1 => -dir.y.signum(),
                _ => -dir.z.signum(),
            };
            match axis {
                0 => normal.x = sign,
                1 => normal.y = sign,
                _ => normal.z = sign,
            }
            Some((tmin, normal))
        }
    }
}

struct Fns {
    trace: FnId,
    intersect: FnId,
    shade: FnId,
}

fn register(profiler: &mut Profiler) -> Fns {
    Fns {
        trace: profiler.register_function("povray::trace_ray", 2400),
        intersect: profiler.register_function("povray::intersect", 2000),
        shade: profiler.register_function("povray::shade", 1600),
    }
}

fn surface_color(mat: &Material, hit: Vec3) -> Vec3 {
    if mat.checker {
        let c = ((hit.x.floor() + hit.z.floor()) as i64).rem_euclid(2);
        if c == 0 {
            Vec3::new(0.9, 0.9, 0.9)
        } else {
            Vec3::new(0.15, 0.15, 0.15)
        }
    } else {
        Vec3::from_tuple(mat.color)
    }
}

#[allow(clippy::too_many_arguments)]
fn trace(
    scene: &RayScene,
    origin: Vec3,
    dir: Vec3,
    depth: u32,
    profiler: &mut Profiler,
    fns: &Fns,
) -> Vec3 {
    profiler.enter(fns.trace);
    // Nearest hit.
    profiler.enter(fns.intersect);
    let mut nearest: Option<(f64, Vec3, usize)> = None;
    for (i, obj) in scene.objects.iter().enumerate() {
        profiler.load(SCENE_REGION + i as u64 * 128);
        profiler.retire(8);
        if let Some((t, n)) = intersect(&obj.shape, origin, dir) {
            let closer = nearest.map(|(bt, _, _)| t < bt).unwrap_or(true);
            profiler.branch(0, closer);
            if closer {
                nearest = Some((t, n, i));
            }
        }
    }
    profiler.exit();
    let Some((t, normal, idx)) = nearest else {
        profiler.exit();
        // Sky gradient.
        let k = 0.5 * (dir.y + 1.0);
        return Vec3::new(0.5, 0.6, 0.8).scale(k) + Vec3::new(0.08, 0.08, 0.1);
    };
    let hit = origin + dir * t;
    let mat = scene.objects[idx].material;
    let base = surface_color(&mat, hit);

    profiler.enter(fns.shade);
    let mut color = base.scale(0.08); // ambient
    for light in &scene.lights {
        let lp = Vec3::from_tuple(light.position);
        let to_light = lp - hit;
        let dist = to_light.norm();
        let ldir = to_light.scale(1.0 / dist);
        // Shadow probe.
        let mut blocked = false;
        for obj in &scene.objects {
            profiler.retire(4);
            if let Some((ts, _)) = intersect(&obj.shape, hit + normal * 1e-6, ldir) {
                if ts < dist {
                    blocked = true;
                    break;
                }
            }
        }
        profiler.branch(1, blocked);
        if blocked {
            continue;
        }
        let diffuse = normal.dot(ldir).max(0.0);
        let half = (ldir - dir).unit();
        let spec = normal.dot(half).max(0.0).powi(32);
        color = color
            + base.scale(diffuse * light.intensity)
            + Vec3::new(1.0, 1.0, 1.0).scale(0.4 * spec * light.intensity);
        profiler.retire(20);
    }
    profiler.exit();

    if depth < scene.max_bounces {
        if mat.reflectivity > 0.0 {
            let r = dir - normal * (2.0 * dir.dot(normal));
            let reflected = trace(
                scene,
                hit + normal * 1e-6,
                r.unit(),
                depth + 1,
                profiler,
                fns,
            );
            color = color.scale(1.0 - mat.reflectivity) + reflected.scale(mat.reflectivity);
        }
        if mat.transparency > 0.0 {
            // Snell refraction, entering or leaving by normal orientation.
            let cosi = (-dir.dot(normal)).clamp(-1.0, 1.0);
            let (n1, n2, n) = if cosi > 0.0 {
                (1.0, mat.ior, normal)
            } else {
                (mat.ior, 1.0, normal.scale(-1.0))
            };
            let eta = n1 / n2;
            let cosi = cosi.abs();
            let k = 1.0 - eta * eta * (1.0 - cosi * cosi);
            let refr_dir = if k < 0.0 {
                // Total internal reflection.
                dir - n * (2.0 * dir.dot(n))
            } else {
                dir * eta + n * (eta * cosi - k.sqrt())
            };
            let refracted = trace(
                scene,
                hit - n * 1e-6,
                refr_dir.unit(),
                depth + 1,
                profiler,
                fns,
            );
            color = color.scale(1.0 - mat.transparency) + refracted.scale(mat.transparency);
        }
    }
    profiler.exit();
    color
}

/// Renders the scene, returning the luma image (one byte per pixel).
pub fn render(scene: &RayScene, profiler: &mut Profiler) -> Vec<u8> {
    let fns = register(profiler);
    let camera = Vec3::new(0.0, 2.0, -4.0);
    let mut image = Vec::with_capacity(scene.width * scene.height);
    for py in 0..scene.height {
        for px in 0..scene.width {
            let u = (px as f64 + 0.5) / scene.width as f64 * 2.0 - 1.0;
            let v = 1.0 - (py as f64 + 0.5) / scene.height as f64 * 2.0;
            let aspect = scene.width as f64 / scene.height as f64;
            let dir = Vec3::new(u * aspect, v, 1.6).unit();
            let c = trace(scene, camera, dir, 0, profiler, &fns);
            let luma = 0.299 * c.x + 0.587 * c.y + 0.114 * c.z;
            image.push((luma.clamp(0.0, 1.0) * 255.0) as u8);
            profiler.store(IMAGE_REGION + image.len() as u64);
        }
    }
    image
}

/// The povray mini-benchmark.
#[derive(Debug)]
pub struct MiniPovray {
    workloads: Vec<Named<RayScene>>,
}

impl MiniPovray {
    /// Builds the benchmark with its standard workload set.
    pub fn new(scale: Scale) -> Self {
        MiniPovray {
            workloads: standard_set(
                scale,
                raytrace::train,
                raytrace::refrate,
                raytrace::alberta_set,
            ),
        }
    }
}

impl Benchmark for MiniPovray {
    fn name(&self) -> &'static str {
        "511.povray_r"
    }

    fn short_name(&self) -> &'static str {
        "povray"
    }

    fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|n| n.name.clone()).collect()
    }

    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError> {
        let scene = find_workload(&self.workloads, self.name(), workload)?;
        let image = render(scene, profiler);
        Ok(RunOutput {
            checksum: fnv1a(image.iter().map(|&b| b as u64)),
            work: image.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alberta_workloads::raytrace::{Light, RayGen, SceneCategory, SceneObject};

    fn analytic_scene(objects: Vec<SceneObject>) -> RayScene {
        RayScene {
            objects,
            lights: vec![Light {
                position: (0.0, 10.0, 0.0),
                intensity: 1.0,
            }],
            width: 16,
            height: 16,
            max_bounces: 2,
            category: SceneCategory::Primitive,
        }
    }

    #[test]
    fn sphere_intersection_is_analytic() {
        let s = Shape::Sphere {
            center: (0.0, 0.0, 10.0),
            radius: 2.0,
        };
        let (t, n) = intersect(&s, Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0)).unwrap();
        assert!((t - 8.0).abs() < 1e-9);
        assert!((n.z + 1.0).abs() < 1e-9, "normal faces the camera");
        // Miss case.
        assert!(intersect(&s, Vec3::new(5.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0)).is_none());
    }

    #[test]
    fn plane_and_box_intersections() {
        let p = Shape::Plane { y: 0.0 };
        let (t, n) = intersect(&p, Vec3::new(0.0, 4.0, 0.0), Vec3::new(0.0, -1.0, 0.0)).unwrap();
        assert!((t - 4.0).abs() < 1e-9);
        assert!(n.y > 0.0);
        assert!(intersect(&p, Vec3::new(0.0, 4.0, 0.0), Vec3::new(0.0, 1.0, 0.0)).is_none());

        let b = Shape::Box {
            min: (-1.0, -1.0, 4.0),
            max: (1.0, 1.0, 6.0),
        };
        let (t, n) = intersect(&b, Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0)).unwrap();
        assert!((t - 4.0).abs() < 1e-9);
        assert!((n.z + 1.0).abs() < 1e-9);
    }

    #[test]
    fn rendered_sphere_is_brighter_than_background_shadow() {
        let scene = analytic_scene(vec![
            SceneObject {
                shape: Shape::Plane { y: -1.0 },
                material: Material::matte(),
            },
            SceneObject {
                shape: Shape::Sphere {
                    center: (0.0, 2.0, 6.0),
                    radius: 1.5,
                },
                material: Material {
                    color: (1.0, 1.0, 1.0),
                    ..Material::matte()
                },
            },
        ]);
        let mut p = Profiler::default();
        let img = render(&scene, &mut p);
        let _ = p.finish();
        assert_eq!(img.len(), 16 * 16);
        // The image is not constant: sphere, plane, shadow and sky differ.
        let min = img.iter().min().unwrap();
        let max = img.iter().max().unwrap();
        assert!(max - min > 40, "flat image: min {min} max {max}");
    }

    #[test]
    fn reflective_scene_differs_from_matte_scene() {
        let base = |reflectivity| {
            analytic_scene(vec![
                SceneObject {
                    shape: Shape::Plane { y: -1.0 },
                    material: Material {
                        checker: true,
                        ..Material::matte()
                    },
                },
                SceneObject {
                    shape: Shape::Sphere {
                        center: (0.0, 1.5, 6.0),
                        radius: 1.5,
                    },
                    material: Material {
                        reflectivity,
                        ..Material::matte()
                    },
                },
            ])
        };
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let matte = render(&base(0.0), &mut p1);
        let mirror = render(&base(0.9), &mut p2);
        assert_ne!(matte, mirror);
        // Reflection rays mean extra intersection work.
        let w1 = p1.finish().totals.retired_ops;
        let w2 = p2.finish().totals.retired_ops;
        assert!(w2 > w1, "mirror {w2} must out-work matte {w1}");
    }

    #[test]
    fn refraction_total_internal_reflection_does_not_panic() {
        let scene = analytic_scene(vec![SceneObject {
            shape: Shape::Sphere {
                center: (0.0, 2.0, 5.0),
                radius: 1.8,
            },
            material: Material {
                transparency: 0.9,
                ior: 2.4,
                ..Material::matte()
            },
        }]);
        let mut p = Profiler::default();
        let img = render(&scene, &mut p);
        let _ = p.finish();
        assert!(!img.is_empty());
    }

    #[test]
    fn all_generated_categories_render() {
        let gen = RayGen::standard(Scale::Test);
        for cat in [
            SceneCategory::Collection,
            SceneCategory::Lumpy,
            SceneCategory::Primitive,
        ] {
            let scene = gen.generate(cat, 7);
            let mut p = Profiler::default();
            let img = render(&scene, &mut p);
            let _ = p.finish();
            assert_eq!(img.len(), scene.width * scene.height);
        }
    }

    #[test]
    fn benchmark_runs_and_is_deterministic() {
        let b = MiniPovray::new(Scale::Test);
        let mut p1 = Profiler::default();
        let mut p2 = Profiler::default();
        let o1 = b.run("alberta.lumpy.0", &mut p1).unwrap();
        let o2 = b.run("alberta.lumpy.0", &mut p2).unwrap();
        assert_eq!(o1, o2);
        let cov = p1.finish().coverage_percent();
        assert!(cov["povray::intersect"] > 20.0, "{cov:?}");
    }
}
