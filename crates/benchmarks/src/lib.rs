//! Mini-benchmark programs standing in for the SPEC CPU 2017 suite.
//!
//! The paper characterizes fifteen SPEC benchmarks; this crate implements
//! one from-scratch Rust mini-program per benchmark, each reproducing the
//! *algorithm family* of the original (network simplex for mcf, α–β
//! search for deepsjeng, LZ77+range coding for xz, …). Every program is
//! instrumented: it reports function entry/exit, conditional branches,
//! loads/stores and retired work to an [`alberta_profile::Profiler`],
//! which is how the reproduction derives method coverage and Top-Down
//! ratios without hardware counters.
//!
//! The [`Benchmark`] trait is the seam between the individual programs and
//! the characterization harness in `alberta-core`; [`suite`] returns the
//! full Table II line-up.
//!
//! # Examples
//!
//! ```
//! use alberta_benchmarks::{suite, Benchmark};
//! use alberta_profile::Profiler;
//! use alberta_workloads::Scale;
//!
//! # fn main() -> Result<(), alberta_benchmarks::BenchError> {
//! let benchmarks = suite(Scale::Test);
//! assert_eq!(benchmarks.len(), 15);
//! let mcf = &benchmarks[1];
//! let mut profiler = Profiler::default();
//! let output = mcf.run("train", &mut profiler)?;
//! assert!(output.work > 0);
//! # Ok(())
//! # }
//! ```

pub mod miniblender;
pub mod minicactu;
pub mod minideepsjeng;
pub mod miniexchange;
pub mod minigcc;
pub mod minilbm;
pub mod minileela;
pub mod minimcf;
pub mod mininab;
pub mod miniomnetpp;
pub mod miniparest;
pub mod minipovray;
pub mod miniwrf;
pub mod minixalan;
pub mod minixz;

use alberta_profile::{InvariantViolation, Profiler};
use alberta_workloads::Scale;
use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Error returned when a benchmark run cannot proceed.
///
/// The taxonomy covers every way a run is known to go wrong, so the
/// harness never has to crash: name-resolution failures
/// ([`UnknownWorkload`](BenchError::UnknownWorkload)), rejected inputs
/// ([`InvalidInput`](BenchError::InvalidInput)), panics captured at the
/// trait boundary ([`Panicked`](BenchError::Panicked)), deterministic
/// watchdog aborts ([`BudgetExceeded`](BenchError::BudgetExceeded)), and
/// post-run profile-consistency failures
/// ([`InvalidProfile`](BenchError::InvalidProfile)).
///
/// The type is `Clone` so resilient harnesses can carry it inside
/// per-run status reports.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BenchError {
    /// The requested workload name is not in this benchmark's set.
    UnknownWorkload {
        /// The benchmark that was asked.
        benchmark: &'static str,
        /// The name that failed to resolve.
        workload: String,
    },
    /// The workload was rejected by the program (malformed input).
    InvalidInput {
        /// The benchmark that rejected it.
        benchmark: &'static str,
        /// Why.
        reason: String,
    },
    /// The benchmark panicked mid-run; [`run_guarded`] caught the unwind
    /// at the trait boundary.
    Panicked {
        /// The benchmark that panicked.
        benchmark: &'static str,
        /// The workload it was running.
        workload: String,
        /// The panic payload, rendered to text.
        message: String,
    },
    /// The run retired more ops than its configured work budget
    /// (`alberta_profile::SampleConfig::work_budget`).
    BudgetExceeded {
        /// The benchmark that overran.
        benchmark: &'static str,
        /// The workload it was running.
        workload: String,
        /// The configured budget.
        budget: u64,
        /// Retired ops at the abort — deterministic per (run, budget).
        retired_ops: u64,
    },
    /// The run completed but its profile violates an internal-consistency
    /// invariant, so its numbers cannot enter any summary.
    InvalidProfile {
        /// The benchmark whose profile failed validation.
        benchmark: &'static str,
        /// The workload it was running.
        workload: String,
        /// The violated invariant (also reachable via
        /// [`Error::source`]).
        violation: InvariantViolation,
    },
    /// An error that happened in a worker subprocess and crossed the
    /// pipe protocol as rendered text, or was synthesized by the
    /// supervisor itself (worker crash, hang, garbled result). The
    /// message is the complete rendered error — [`fmt::Display`] prints
    /// it verbatim so a report built from a remote status matches the
    /// in-process rendering byte for byte.
    Remote {
        /// The benchmark the task belonged to.
        benchmark: &'static str,
        /// Whether the originating error was retryable
        /// ([`BenchError::is_retryable`] on the worker side), or — for
        /// supervisor-synthesized errors — whether redispatching the
        /// task may clear it.
        retryable: bool,
        /// The fully rendered error text.
        message: String,
    },
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::UnknownWorkload {
                benchmark,
                workload,
            } => write!(f, "benchmark {benchmark} has no workload named {workload:?}"),
            BenchError::InvalidInput { benchmark, reason } => {
                write!(f, "benchmark {benchmark} rejected its input: {reason}")
            }
            BenchError::Panicked {
                benchmark,
                workload,
                message,
            } => write!(
                f,
                "benchmark {benchmark} panicked while running {workload:?}: {message}"
            ),
            BenchError::BudgetExceeded {
                benchmark,
                workload,
                budget,
                retired_ops,
            } => write!(
                f,
                "benchmark {benchmark} exceeded its work budget on {workload:?}: \
                 {retired_ops} retired ops > budget {budget}"
            ),
            BenchError::InvalidProfile {
                benchmark,
                workload,
                violation,
            } => write!(
                f,
                "benchmark {benchmark} produced an inconsistent profile on {workload:?}: {violation}"
            ),
            BenchError::Remote { message, .. } => f.write_str(message),
        }
    }
}

impl Error for BenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BenchError::InvalidProfile { violation, .. } => Some(violation),
            BenchError::UnknownWorkload { .. }
            | BenchError::InvalidInput { .. }
            | BenchError::Panicked { .. }
            | BenchError::BudgetExceeded { .. }
            | BenchError::Remote { .. } => None,
        }
    }
}

impl BenchError {
    /// The benchmark the error belongs to.
    pub fn benchmark(&self) -> &'static str {
        match self {
            BenchError::UnknownWorkload { benchmark, .. }
            | BenchError::InvalidInput { benchmark, .. }
            | BenchError::Panicked { benchmark, .. }
            | BenchError::BudgetExceeded { benchmark, .. }
            | BenchError::InvalidProfile { benchmark, .. }
            | BenchError::Remote { benchmark, .. } => benchmark,
        }
    }

    /// True for errors a retry at reduced scale may clear (resource
    /// overruns), false for errors deterministic in the input itself.
    /// Remote errors carry the verdict their originating error had on
    /// the worker side.
    pub fn is_retryable(&self) -> bool {
        match self {
            BenchError::BudgetExceeded { .. } | BenchError::Panicked { .. } => true,
            BenchError::Remote { retryable, .. } => *retryable,
            _ => false,
        }
    }
}

/// Renders a panic payload the way `std` would: `&str` and `String`
/// payloads verbatim, anything else by type-erased placeholder. Public
/// so harnesses with their own panic boundaries (e.g. parallel workers)
/// report payloads the same way [`run_guarded`] does.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

thread_local! {
    /// True while this thread is inside [`run_guarded`]'s boundary.
    static IN_GUARDED_RUN: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// panics unwinding toward [`run_guarded`]'s boundary — they are typed
/// control flow there, not crashes — and delegates every other panic to
/// the previously installed hook. The flag is thread-local, so panics on
/// unrelated threads keep their normal reporting.
fn install_guarded_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_GUARDED_RUN.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Clears the in-guarded-run flag on drop, so an unwind cannot leave it
/// stuck and silence a later genuine panic.
struct GuardFlag;

impl GuardFlag {
    fn set() -> Self {
        IN_GUARDED_RUN.with(|g| g.set(true));
        GuardFlag
    }
}

impl Drop for GuardFlag {
    fn drop(&mut self) {
        IN_GUARDED_RUN.with(|g| g.set(false));
    }
}

/// Runs a workload with the panic boundary installed: any unwind out of
/// [`Benchmark::run`] is converted into a typed [`BenchError`] instead of
/// propagating into (and killing) the harness.
///
/// A [`alberta_profile::BudgetExceeded`] payload becomes
/// [`BenchError::BudgetExceeded`]; every other payload becomes
/// [`BenchError::Panicked`]. The profiler is left in whatever state the
/// run reached — callers must discard it after an error.
///
/// # Errors
///
/// Everything [`Benchmark::run`] returns, plus the converted unwinds.
pub fn run_guarded(
    benchmark: &dyn Benchmark,
    workload: &str,
    profiler: &mut Profiler,
) -> Result<RunOutput, BenchError> {
    install_guarded_panic_hook();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _flag = GuardFlag::set();
        benchmark.run(workload, profiler)
    }));
    match result {
        Ok(result) => result,
        Err(payload) => {
            if let Some(b) = payload.downcast_ref::<alberta_profile::BudgetExceeded>() {
                Err(BenchError::BudgetExceeded {
                    benchmark: benchmark.name(),
                    workload: workload.to_owned(),
                    budget: b.budget,
                    retired_ops: b.retired_ops,
                })
            } else {
                Err(BenchError::Panicked {
                    benchmark: benchmark.name(),
                    workload: workload.to_owned(),
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }
}

/// The result of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutput {
    /// A checksum over the program's semantic output (solution cost,
    /// rendered image hash, compressed size, …). Deterministic per
    /// (benchmark, workload); tests use it to catch silent corruption.
    pub checksum: u64,
    /// Total abstract work units performed (equals retired ops recorded
    /// in the profiler for the run).
    pub work: u64,
}

/// One SPEC-style benchmark program with its workload set attached.
///
/// Object safe: the harness holds `Box<dyn Benchmark>`. The `Send +
/// Sync` supertraits let the characterization harness share one suite
/// across worker threads — runs take `&self` and write all measurement
/// state into the per-run [`Profiler`], so a benchmark is immutable
/// while it executes (the only mutation, [`Benchmark::inject_malformed`],
/// happens before any run starts).
pub trait Benchmark: Send + Sync {
    /// SPEC-style identifier, e.g. `"505.mcf_r"`.
    fn name(&self) -> &'static str;

    /// Short name, e.g. `"mcf"`.
    fn short_name(&self) -> &'static str;

    /// Names of every available workload (train, refrate, alberta.*).
    fn workload_names(&self) -> Vec<String>;

    /// Runs the named workload under the given profiler.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::UnknownWorkload`] if `workload` is not one of
    /// [`Benchmark::workload_names`], or [`BenchError::InvalidInput`] if
    /// the workload data is rejected.
    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError>;

    /// Fault-injection hook: deterministically corrupts the named stored
    /// workload (seeded by `seed`) so a later [`Benchmark::run`] rejects
    /// it with [`BenchError::InvalidInput`] instead of succeeding.
    ///
    /// Returns `true` when the corruption was applied; the default
    /// implementation supports no corruption and returns `false`.
    /// Benchmarks with naturally malformable inputs (mcf's flow networks,
    /// deepsjeng's position specs, xalancbmk's XML documents) override it.
    fn inject_malformed(&mut self, workload: &str, seed: u64) -> bool {
        let _ = (workload, seed);
        false
    }
}

/// Builds the full fifteen-benchmark Table II suite at the given scale.
///
/// Order matches Table II: gcc, mcf, cactuBSSN, parest, povray, lbm,
/// omnetpp, wrf, xalancbmk, blender, deepsjeng, leela, nab, exchange2, xz.
pub fn suite(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(minigcc::MiniGcc::new(scale)),
        Box::new(minimcf::MiniMcf::new(scale)),
        Box::new(minicactu::MiniCactu::new(scale)),
        Box::new(miniparest::MiniParest::new(scale)),
        Box::new(minipovray::MiniPovray::new(scale)),
        Box::new(minilbm::MiniLbm::new(scale)),
        Box::new(miniomnetpp::MiniOmnetpp::new(scale)),
        Box::new(miniwrf::MiniWrf::new(scale)),
        Box::new(minixalan::MiniXalan::new(scale)),
        Box::new(miniblender::MiniBlender::new(scale)),
        Box::new(minideepsjeng::MiniDeepsjeng::new(scale)),
        Box::new(minileela::MiniLeela::new(scale)),
        Box::new(mininab::MiniNab::new(scale)),
        Box::new(miniexchange::MiniExchange::new(scale)),
        Box::new(minixz::MiniXz::new(scale)),
    ]
}

/// FNV-1a hash used for run checksums throughout the crate.
pub(crate) fn fnv1a(data: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for v in data {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
    }
    h
}

/// Resolves `workload` in a named set, with the standard error.
pub(crate) fn find_workload<'a, W>(
    set: &'a [alberta_workloads::Named<W>],
    benchmark: &'static str,
    workload: &str,
) -> Result<&'a W, BenchError> {
    set.iter()
        .find(|n| n.name == workload)
        .map(|n| &n.workload)
        .ok_or_else(|| BenchError::UnknownWorkload {
            benchmark,
            workload: workload.to_owned(),
        })
}

/// Collects the standard workload list (train, refrate, alberta set) for
/// a benchmark from the generator module's three constructors.
pub(crate) fn standard_set<W>(
    scale: Scale,
    train: fn(Scale) -> alberta_workloads::Named<W>,
    refrate: fn(Scale) -> alberta_workloads::Named<W>,
    alberta: fn(Scale) -> Vec<alberta_workloads::Named<W>>,
) -> Vec<alberta_workloads::Named<W>> {
    let mut set = vec![train(scale), refrate(scale)];
    set.extend(alberta(scale));
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table_ii_lineup() {
        let s = suite(Scale::Test);
        let names: Vec<&str> = s.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "502.gcc_r",
                "505.mcf_r",
                "507.cactuBSSN_r",
                "510.parest_r",
                "511.povray_r",
                "519.lbm_r",
                "520.omnetpp_r",
                "521.wrf_r",
                "523.xalancbmk_r",
                "526.blender_r",
                "531.deepsjeng_r",
                "541.leela_r",
                "544.nab_r",
                "548.exchange2_r",
                "557.xz_r",
            ]
        );
    }

    #[test]
    fn every_benchmark_has_train_refrate_and_alberta_workloads() {
        for b in suite(Scale::Test) {
            let names = b.workload_names();
            assert!(
                names.iter().any(|n| n == "train"),
                "{} lacks train",
                b.name()
            );
            assert!(
                names.iter().any(|n| n == "refrate"),
                "{} lacks refrate",
                b.name()
            );
            assert!(
                names.iter().any(|n| n.starts_with("alberta.")),
                "{} lacks alberta workloads",
                b.name()
            );
        }
    }

    #[test]
    fn unknown_workload_errors() {
        let s = suite(Scale::Test);
        let mut p = Profiler::default();
        let err = s[0].run("no-such-workload", &mut p).unwrap_err();
        assert!(matches!(err, BenchError::UnknownWorkload { .. }));
        let msg = err.to_string();
        assert!(msg.contains("no-such-workload"));
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a([1, 2, 3]), fnv1a([1, 2, 3]));
        assert_ne!(fnv1a([1, 2, 3]), fnv1a([1, 2, 4]));
        assert_ne!(fnv1a([0]), fnv1a([]));
    }

    #[test]
    fn run_guarded_converts_forced_panic_to_typed_error() {
        use alberta_profile::{ProfilerFault, SampleConfig};
        let s = suite(Scale::Test);
        let mut p =
            Profiler::new(SampleConfig::default().with_fault(ProfilerFault::PanicAtEvent(100)));
        let err = run_guarded(s[1].as_ref(), "train", &mut p).unwrap_err();
        match err {
            BenchError::Panicked {
                benchmark,
                workload,
                message,
            } => {
                assert_eq!(benchmark, "505.mcf_r");
                assert_eq!(workload, "train");
                assert!(message.contains("injected fault"), "message: {message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn run_guarded_converts_budget_overrun_to_typed_error() {
        use alberta_profile::SampleConfig;
        let s = suite(Scale::Test);
        let mut p = Profiler::new(SampleConfig::default().with_work_budget(500));
        let err = run_guarded(s[1].as_ref(), "train", &mut p).unwrap_err();
        match &err {
            BenchError::BudgetExceeded {
                benchmark,
                budget,
                retired_ops,
                ..
            } => {
                assert_eq!(*benchmark, "505.mcf_r");
                assert_eq!(*budget, 500);
                assert!(*retired_ops > 500);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert!(err.is_retryable());
        // Determinism: same benchmark, workload and budget abort at the
        // same retired-op count every time.
        let mut p2 = Profiler::new(SampleConfig::default().with_work_budget(500));
        let err2 = run_guarded(s[1].as_ref(), "train", &mut p2).unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    fn run_guarded_passes_ordinary_results_through() {
        let s = suite(Scale::Test);
        let mut p = Profiler::default();
        let direct = s[1].run("train", &mut Profiler::default()).unwrap();
        let guarded = run_guarded(s[1].as_ref(), "train", &mut p).unwrap();
        assert_eq!(direct, guarded);
    }

    #[test]
    fn injected_malformed_workloads_are_rejected_not_searched() {
        // The three benchmarks with corruption hooks: mcf (disconnected
        // flow network), deepsjeng (zero-depth position), xalancbmk
        // (truncated document). Each must reject the corrupted workload
        // with InvalidInput rather than succeed or panic.
        for idx in [1usize, 8, 10] {
            let mut s = suite(Scale::Test);
            let name = s[idx].name();
            assert!(
                s[idx].inject_malformed("train", 7),
                "{name} should support malformed injection"
            );
            let mut p = Profiler::default();
            let err = run_guarded(s[idx].as_ref(), "train", &mut p).unwrap_err();
            assert!(
                matches!(err, BenchError::InvalidInput { .. }),
                "{name}: expected InvalidInput, got {err:?}"
            );
        }
    }

    #[test]
    fn inject_malformed_defaults_to_unsupported() {
        let mut s = suite(Scale::Test);
        // gcc has no corruption hook: the default implementation refuses.
        assert!(!s[0].inject_malformed("train", 7));
        // Unknown workload names are refused by the overriding impls too.
        assert!(!s[1].inject_malformed("no-such-workload", 7));
    }

    #[test]
    fn error_source_chains_only_for_invalid_profile() {
        use std::error::Error as _;
        let e = BenchError::InvalidInput {
            benchmark: "505.mcf_r",
            reason: "x".into(),
        };
        assert!(e.source().is_none());
        let mut p = Profiler::default();
        let s = suite(Scale::Test);
        s[1].run("train", &mut p).unwrap();
        let violation = {
            use alberta_profile::{ProfilerFault, SampleConfig};
            let mut corrupted = Profiler::new(
                SampleConfig::default().with_fault(ProfilerFault::CorruptEvents { at: 10 }),
            );
            s[1].run("train", &mut corrupted).unwrap();
            corrupted.finish().validate().unwrap_err()
        };
        let e = BenchError::InvalidProfile {
            benchmark: "505.mcf_r",
            workload: "train".into(),
            violation,
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("inconsistent profile"));
    }
}
