//! Mini-benchmark programs standing in for the SPEC CPU 2017 suite.
//!
//! The paper characterizes fifteen SPEC benchmarks; this crate implements
//! one from-scratch Rust mini-program per benchmark, each reproducing the
//! *algorithm family* of the original (network simplex for mcf, α–β
//! search for deepsjeng, LZ77+range coding for xz, …). Every program is
//! instrumented: it reports function entry/exit, conditional branches,
//! loads/stores and retired work to an [`alberta_profile::Profiler`],
//! which is how the reproduction derives method coverage and Top-Down
//! ratios without hardware counters.
//!
//! The [`Benchmark`] trait is the seam between the individual programs and
//! the characterization harness in `alberta-core`; [`suite`] returns the
//! full Table II line-up.
//!
//! # Examples
//!
//! ```
//! use alberta_benchmarks::{suite, Benchmark};
//! use alberta_profile::Profiler;
//! use alberta_workloads::Scale;
//!
//! # fn main() -> Result<(), alberta_benchmarks::BenchError> {
//! let benchmarks = suite(Scale::Test);
//! assert_eq!(benchmarks.len(), 15);
//! let mcf = &benchmarks[1];
//! let mut profiler = Profiler::default();
//! let output = mcf.run("train", &mut profiler)?;
//! assert!(output.work > 0);
//! # Ok(())
//! # }
//! ```

pub mod minicactu;
pub mod minideepsjeng;
pub mod miniexchange;
pub mod minigcc;
pub mod minilbm;
pub mod minileela;
pub mod miniblender;
pub mod minimcf;
pub mod mininab;
pub mod miniomnetpp;
pub mod miniparest;
pub mod minipovray;
pub mod miniwrf;
pub mod minixalan;
pub mod minixz;

use alberta_profile::Profiler;
use alberta_workloads::Scale;
use std::error::Error;
use std::fmt;

/// Error returned when a benchmark run cannot proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BenchError {
    /// The requested workload name is not in this benchmark's set.
    UnknownWorkload {
        /// The benchmark that was asked.
        benchmark: &'static str,
        /// The name that failed to resolve.
        workload: String,
    },
    /// The workload was rejected by the program (malformed input).
    InvalidInput {
        /// The benchmark that rejected it.
        benchmark: &'static str,
        /// Why.
        reason: String,
    },
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::UnknownWorkload {
                benchmark,
                workload,
            } => write!(f, "benchmark {benchmark} has no workload named {workload:?}"),
            BenchError::InvalidInput { benchmark, reason } => {
                write!(f, "benchmark {benchmark} rejected its input: {reason}")
            }
        }
    }
}

impl Error for BenchError {}

/// The result of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutput {
    /// A checksum over the program's semantic output (solution cost,
    /// rendered image hash, compressed size, …). Deterministic per
    /// (benchmark, workload); tests use it to catch silent corruption.
    pub checksum: u64,
    /// Total abstract work units performed (equals retired ops recorded
    /// in the profiler for the run).
    pub work: u64,
}

/// One SPEC-style benchmark program with its workload set attached.
///
/// Object safe: the harness holds `Box<dyn Benchmark>`.
pub trait Benchmark {
    /// SPEC-style identifier, e.g. `"505.mcf_r"`.
    fn name(&self) -> &'static str;

    /// Short name, e.g. `"mcf"`.
    fn short_name(&self) -> &'static str;

    /// Names of every available workload (train, refrate, alberta.*).
    fn workload_names(&self) -> Vec<String>;

    /// Runs the named workload under the given profiler.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::UnknownWorkload`] if `workload` is not one of
    /// [`Benchmark::workload_names`], or [`BenchError::InvalidInput`] if
    /// the workload data is rejected.
    fn run(&self, workload: &str, profiler: &mut Profiler) -> Result<RunOutput, BenchError>;
}

/// Builds the full fifteen-benchmark Table II suite at the given scale.
///
/// Order matches Table II: gcc, mcf, cactuBSSN, parest, povray, lbm,
/// omnetpp, wrf, xalancbmk, blender, deepsjeng, leela, nab, exchange2, xz.
pub fn suite(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(minigcc::MiniGcc::new(scale)),
        Box::new(minimcf::MiniMcf::new(scale)),
        Box::new(minicactu::MiniCactu::new(scale)),
        Box::new(miniparest::MiniParest::new(scale)),
        Box::new(minipovray::MiniPovray::new(scale)),
        Box::new(minilbm::MiniLbm::new(scale)),
        Box::new(miniomnetpp::MiniOmnetpp::new(scale)),
        Box::new(miniwrf::MiniWrf::new(scale)),
        Box::new(minixalan::MiniXalan::new(scale)),
        Box::new(miniblender::MiniBlender::new(scale)),
        Box::new(minideepsjeng::MiniDeepsjeng::new(scale)),
        Box::new(minileela::MiniLeela::new(scale)),
        Box::new(mininab::MiniNab::new(scale)),
        Box::new(miniexchange::MiniExchange::new(scale)),
        Box::new(minixz::MiniXz::new(scale)),
    ]
}

/// FNV-1a hash used for run checksums throughout the crate.
pub(crate) fn fnv1a(data: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for v in data {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
    }
    h
}

/// Resolves `workload` in a named set, with the standard error.
pub(crate) fn find_workload<'a, W>(
    set: &'a [alberta_workloads::Named<W>],
    benchmark: &'static str,
    workload: &str,
) -> Result<&'a W, BenchError> {
    set.iter()
        .find(|n| n.name == workload)
        .map(|n| &n.workload)
        .ok_or_else(|| BenchError::UnknownWorkload {
            benchmark,
            workload: workload.to_owned(),
        })
}

/// Collects the standard workload list (train, refrate, alberta set) for
/// a benchmark from the generator module's three constructors.
pub(crate) fn standard_set<W>(
    scale: Scale,
    train: fn(Scale) -> alberta_workloads::Named<W>,
    refrate: fn(Scale) -> alberta_workloads::Named<W>,
    alberta: fn(Scale) -> Vec<alberta_workloads::Named<W>>,
) -> Vec<alberta_workloads::Named<W>> {
    let mut set = vec![train(scale), refrate(scale)];
    set.extend(alberta(scale));
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table_ii_lineup() {
        let s = suite(Scale::Test);
        let names: Vec<&str> = s.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "502.gcc_r",
                "505.mcf_r",
                "507.cactuBSSN_r",
                "510.parest_r",
                "511.povray_r",
                "519.lbm_r",
                "520.omnetpp_r",
                "521.wrf_r",
                "523.xalancbmk_r",
                "526.blender_r",
                "531.deepsjeng_r",
                "541.leela_r",
                "544.nab_r",
                "548.exchange2_r",
                "557.xz_r",
            ]
        );
    }

    #[test]
    fn every_benchmark_has_train_refrate_and_alberta_workloads() {
        for b in suite(Scale::Test) {
            let names = b.workload_names();
            assert!(names.iter().any(|n| n == "train"), "{} lacks train", b.name());
            assert!(
                names.iter().any(|n| n == "refrate"),
                "{} lacks refrate",
                b.name()
            );
            assert!(
                names.iter().any(|n| n.starts_with("alberta.")),
                "{} lacks alberta workloads",
                b.name()
            );
        }
    }

    #[test]
    fn unknown_workload_errors() {
        let s = suite(Scale::Test);
        let mut p = Profiler::default();
        let err = s[0].run("no-such-workload", &mut p).unwrap_err();
        assert!(matches!(err, BenchError::UnknownWorkload { .. }));
        let msg = err.to_string();
        assert!(msg.contains("no-such-workload"));
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a([1, 2, 3]), fnv1a([1, 2, 3]));
        assert_ne!(fnv1a([1, 2, 3]), fnv1a([1, 2, 4]));
        assert_ne!(fnv1a([0]), fnv1a([]));
    }
}
