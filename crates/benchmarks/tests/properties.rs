//! Property-based tests on the mini-benchmark substrates: the invariants
//! that must hold for *any* input, not just the generated workloads.

use alberta_benchmarks::minigcc::{MiniGcc, OptOptions};
use alberta_benchmarks::minileela::{Color, GoBoard};
use alberta_benchmarks::minimcf::solve_min_cost_flow;
use alberta_benchmarks::{miniexchange, minixz, suite, BenchError};
use alberta_profile::Profiler;
use alberta_workloads::csrc::CSourceGen;
use alberta_workloads::flow::FlowGen;
use alberta_workloads::sudoku;
use alberta_workloads::Scale;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LZ77 + range coder round-trips arbitrary bytes at any dictionary
    /// size.
    #[test]
    fn xz_roundtrip_arbitrary_bytes(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        dict_shift in 6u32..14,
    ) {
        let dict = 1usize << dict_shift;
        let mut p = Profiler::default();
        let packed = minixz::compress(&data, dict, &mut p);
        let unpacked = minixz::decompress(&packed, &mut p).expect("stream we produced decodes");
        let _ = p.finish();
        prop_assert_eq!(unpacked, data);
    }

    /// Every generated Sudoku seed puzzle is consistent and solvable, and
    /// its solution extends the clues.
    #[test]
    fn sudoku_generated_puzzles_solve(seed in any::<u64>(), clues in 20usize..60) {
        let puzzle = sudoku::generate_puzzle(seed, clues);
        prop_assert!(puzzle.is_consistent());
        prop_assert_eq!(puzzle.clue_count(), clues);
        let solved = miniexchange::solve_for_tests(&puzzle).expect("solvable by construction");
        prop_assert!(solved.is_solved());
        for i in 0..81 {
            if puzzle.0[i] != 0 {
                prop_assert_eq!(puzzle.0[i], solved.0[i]);
            }
        }
    }

    /// The optimizer never changes program semantics on generated mini-C.
    #[test]
    fn minigcc_optimizer_preserves_semantics(seed in any::<u64>()) {
        let gen = CSourceGen::standard(Scale::Test);
        let src = gen.generate(seed).source;
        let mut p0 = Profiler::default();
        let mut p2 = Profiler::default();
        let (r0, _) = MiniGcc::compile_and_run(&src, &OptOptions::none(), &mut p0)
            .expect("generated programs compile");
        let (r2, _) = MiniGcc::compile_and_run(&src, &OptOptions::default(), &mut p2)
            .expect("generated programs compile");
        prop_assert_eq!(r0, r2);
    }

    /// Min-cost-flow solutions on generated scheduling instances are
    /// always feasible (flow conservation) and capacity-respecting.
    #[test]
    fn mcf_solutions_are_feasible(seed in any::<u64>()) {
        let mut gen = FlowGen::standard(Scale::Test);
        gen.trips = 25;
        let instance = gen.generate(seed);
        let mut p = Profiler::default();
        let solution = solve_min_cost_flow(&instance, &mut p).expect("feasible by construction");
        let _ = p.finish();
        let mut balance = vec![0i64; instance.node_count as usize];
        for (k, arc) in instance.arcs.iter().enumerate() {
            prop_assert!(solution.flows[k] >= 0);
            prop_assert!(solution.flows[k] <= arc.capacity);
            balance[arc.from as usize] -= solution.flows[k];
            balance[arc.to as usize] += solution.flows[k];
        }
        for (b, s) in balance.iter().zip(&instance.supplies) {
            prop_assert_eq!(*b, -*s);
        }
    }

    /// Every benchmark answers a bogus workload name with a typed
    /// [`BenchError::UnknownWorkload`] — never a panic, never a run.
    #[test]
    fn bogus_workload_names_yield_unknown_workload(
        chars in prop::collection::vec(any::<char>(), 0..24),
    ) {
        // The prefix guarantees the name collides with no real workload
        // (all real names are train/refrate/alberta.*).
        let name: String = format!("bogus-{}", chars.into_iter().collect::<String>());
        for b in suite(Scale::Test) {
            let mut p = Profiler::default();
            match b.run(&name, &mut p) {
                Err(BenchError::UnknownWorkload { benchmark, workload }) => {
                    prop_assert_eq!(benchmark, b.name());
                    prop_assert_eq!(workload, name.clone());
                }
                other => prop_assert!(false, "{}: expected UnknownWorkload, got {:?}", b.name(), other),
            }
        }
    }

    /// Run output (checksum and work) is bit-identical across repeated
    /// runs of the same workload — for every benchmark and any workload
    /// in its set.
    #[test]
    fn checksums_are_reproducible(pick in any::<u64>()) {
        let benchmarks = suite(Scale::Test);
        let b = &benchmarks[(pick % benchmarks.len() as u64) as usize];
        let names = b.workload_names();
        let workload = &names[((pick >> 8) % names.len() as u64) as usize];
        let first = b.run(workload, &mut Profiler::default()).expect("workload runs");
        let second = b.run(workload, &mut Profiler::default()).expect("workload runs");
        prop_assert_eq!(first.checksum, second.checksum, "{}/{}", b.name(), workload);
        prop_assert_eq!(first.work, second.work);
    }

    /// Go: playing any sequence of random proposals never corrupts the
    /// board — stone counts change only by legal amounts and captured
    /// points are empty.
    #[test]
    fn go_board_stays_consistent(seed in any::<u64>(), size in 5usize..10) {
        let mut board = GoBoard::new(size);
        let mut state = seed;
        let mut to_move = Color::Black;
        for _ in 0..3 * size * size {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (state >> 16) as usize % (size * size);
            let before: usize = count_stones(&board, size);
            match board.play(idx % size, idx / size, to_move) {
                Some(captured) => {
                    let after = count_stones(&board, size);
                    // +1 stone placed, −captured removed.
                    prop_assert_eq!(after as i64, before as i64 + 1 - captured as i64);
                    to_move = to_move.other();
                }
                None => {
                    prop_assert_eq!(count_stones(&board, size), before, "illegal move mutated board");
                }
            }
        }
    }
}

fn count_stones(board: &GoBoard, size: usize) -> usize {
    let mut n = 0;
    for y in 0..size {
        for x in 0..size {
            if board.at(x, y).is_some() {
                n += 1;
            }
        }
    }
    n
}
